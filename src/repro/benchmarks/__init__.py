"""Benchmark harness: fixed workloads, several worker counts, JSON trail.

``repro bench`` (see :mod:`repro.benchmarks.harness`) runs the workloads in
:mod:`repro.benchmarks.workloads` through a :class:`~repro.session.Session`
at each requested worker count and emits ``BENCH_parallel.json`` — the
machine-readable throughput record CI uploads on every run.
"""

from repro.benchmarks.cachewarm import (CacheBenchConfig,
                                        run_cache_benchmark)
from repro.benchmarks.harness import BenchConfig, main, run_benchmark
from repro.benchmarks.workloads import (WORKLOADS, workload,
                                        workload_datasets)

__all__ = [
    "BenchConfig",
    "CacheBenchConfig",
    "WORKLOADS",
    "main",
    "run_benchmark",
    "run_cache_benchmark",
    "workload",
    "workload_datasets",
]

"""Fixed benchmark workloads, one per dataset.

Each workload mixes the three result kinds (value / table / plot) and both
cache axes: repeated queries exercise the plan cache, and modality-heavy
queries (VQA over every painting, TextQA over every report) exercise the
answer cache.  The lists are fixed on purpose — benchmark numbers are only
comparable across commits if the workload never drifts; deliberate
extensions bump :data:`WORKLOAD_VERSION` (recorded in every benchmark
JSON) so trend lines across versions are never naively compared.

Version history:

- **v1** — single-table queries only.
- **v2** — adds the widened grammar: cross-column joins
  (players ⋈ teams on ``team = name``), multi-measure aggregates, and
  typed date-range filters, so the benchmark tracks join-heavy
  throughput.
"""

from __future__ import annotations

#: Bumped whenever a fixed workload deliberately changes; lands in the
#: benchmark record so cross-commit comparisons stay honest.
WORKLOAD_VERSION = 2

#: Unique queries per dataset; the harness repeats the whole list
#: ``--repeats`` times to form one run's workload.
WORKLOADS: dict[str, tuple[str, ...]] = {
    "artwork": (
        "How many paintings are depicting a sword?",
        "How many paintings are depicting a dog?",
        "List the titles of paintings depicting a crown.",
        "How many paintings belong to the 'Impressionism' movement?",
        "For each movement, how many paintings are there?",
        "What is the earliest inception date of all paintings?",
        "Plot the number of paintings for each century.",
        # v2: multi-measure aggregates and typed date ranges.
        "What are the min, max and average year of impressionist "
        "paintings?",
        "For each movement, what are the earliest and latest inception "
        "dates?",
        "How many paintings were created between 1880 and 1895?",
    ),
    "rotowire": (
        "How many players are taller than 200?",
        "How many games did the Heat win?",
        "List the names of players taller than 200.",
        "Who is the tallest player?",
        "Plot the average height of players per position.",
        "Plot the total number of points scored by each team.",
        # v2: cross-column joins (players.team = teams.name),
        # join+multi-measure combos, and date-range filters.
        "What is the average height of players in the Eastern conference?",
        "How many players play for teams in the Atlantic division?",
        "Plot the number of players for each division.",
        "What is the average number of points scored by players on teams "
        "founded before 1970?",
        "What are the minimum and maximum height of players in the "
        "Western conference?",
        "How many games took place in November 2018?",
    ),
}


def workload_datasets() -> tuple[str, ...]:
    """Datasets that have a fixed benchmark workload, sorted.

    The cross-backend parity suite iterates this: every backend must
    produce identical results for every full workload listed here.
    """
    return tuple(sorted(WORKLOADS))


def workload(dataset: str, repeats: int = 1) -> list[str]:
    """The fixed workload of *dataset*, repeated *repeats* times."""
    if dataset not in WORKLOADS:
        raise KeyError(f"no benchmark workload for dataset {dataset!r}; "
                       f"available: {', '.join(sorted(WORKLOADS))}")
    if repeats <= 0:
        raise ValueError(f"repeats must be positive, got {repeats}")
    return list(WORKLOADS[dataset]) * repeats

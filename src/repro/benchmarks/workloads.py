"""Fixed benchmark workloads, one per dataset.

Each workload mixes the three result kinds (value / table / plot) and both
cache axes: repeated queries exercise the plan cache, and modality-heavy
queries (VQA over every painting, TextQA over every report) exercise the
answer cache.  The lists are fixed on purpose — benchmark numbers are only
comparable across commits if the workload never drifts.
"""

from __future__ import annotations

#: Unique queries per dataset; the harness repeats the whole list
#: ``--repeats`` times to form one run's workload.
WORKLOADS: dict[str, tuple[str, ...]] = {
    "artwork": (
        "How many paintings are depicting a sword?",
        "How many paintings are depicting a dog?",
        "List the titles of paintings depicting a crown.",
        "How many paintings belong to the 'Impressionism' movement?",
        "For each movement, how many paintings are there?",
        "What is the earliest inception date of all paintings?",
        "Plot the number of paintings for each century.",
    ),
    "rotowire": (
        "How many players are taller than 200?",
        "How many games did the Heat win?",
        "List the names of players taller than 200.",
        "Who is the tallest player?",
        "Plot the average height of players per position.",
        "Plot the total number of points scored by each team.",
    ),
}


def workload_datasets() -> tuple[str, ...]:
    """Datasets that have a fixed benchmark workload, sorted.

    The cross-backend parity suite iterates this: every backend must
    produce identical results for every full workload listed here.
    """
    return tuple(sorted(WORKLOADS))


def workload(dataset: str, repeats: int = 1) -> list[str]:
    """The fixed workload of *dataset*, repeated *repeats* times."""
    if dataset not in WORKLOADS:
        raise KeyError(f"no benchmark workload for dataset {dataset!r}; "
                       f"available: {', '.join(sorted(WORKLOADS))}")
    if repeats <= 0:
        raise ValueError(f"repeats must be positive, got {repeats}")
    return list(WORKLOADS[dataset]) * repeats

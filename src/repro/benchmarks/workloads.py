"""Fixed benchmark workloads, one per dataset.

Each workload mixes the three result kinds (value / table / plot) and both
cache axes: repeated queries exercise the plan cache, and modality-heavy
queries (VQA over every painting, TextQA over every report) exercise the
answer cache.  The lists are fixed on purpose — benchmark numbers are only
comparable across commits if the workload never drifts; deliberate
extensions bump :data:`WORKLOAD_VERSION` (recorded in every benchmark
JSON) so trend lines across versions are never naively compared.

Version history:

- **v1** — single-table queries only.
- **v2** — adds the widened grammar: cross-column joins
  (players ⋈ teams on ``team = name``), multi-measure aggregates, and
  typed date-range filters, so the benchmark tracks join-heavy
  throughput.
- **v3** — adds the ``relational`` workload family: pure
  filter/join/aggregate queries with no modality operators, the
  storage-bound profile the columnar-vs-row ``repro bench`` comparison
  is measured on (a VQA query at scale 500 would rasterize 60,000
  images and measure the renderer, not the store).
"""

from __future__ import annotations

#: Bumped whenever a fixed workload deliberately changes; lands in the
#: benchmark record so cross-commit comparisons stay honest.
WORKLOAD_VERSION = 3

#: Unique queries per dataset; the harness repeats the whole list
#: ``--repeats`` times to form one run's workload.
WORKLOADS: dict[str, tuple[str, ...]] = {
    "artwork": (
        "How many paintings are depicting a sword?",
        "How many paintings are depicting a dog?",
        "List the titles of paintings depicting a crown.",
        "How many paintings belong to the 'Impressionism' movement?",
        "For each movement, how many paintings are there?",
        "What is the earliest inception date of all paintings?",
        "Plot the number of paintings for each century.",
        # v2: multi-measure aggregates and typed date ranges.
        "What are the min, max and average year of impressionist "
        "paintings?",
        "For each movement, what are the earliest and latest inception "
        "dates?",
        "How many paintings were created between 1880 and 1895?",
    ),
    "rotowire": (
        "How many players are taller than 200?",
        "How many games did the Heat win?",
        "List the names of players taller than 200.",
        "Who is the tallest player?",
        "Plot the average height of players per position.",
        "Plot the total number of points scored by each team.",
        # v2: cross-column joins (players.team = teams.name),
        # join+multi-measure combos, and date-range filters.
        "What is the average height of players in the Eastern conference?",
        "How many players play for teams in the Atlantic division?",
        "Plot the number of players for each division.",
        "What is the average number of points scored by players on teams "
        "founded before 1970?",
        "What are the minimum and maximum height of players in the "
        "Western conference?",
        "How many games took place in November 2018?",
    ),
}


#: v3: the storage-bound workload — filters, joins, GROUP BY, date
#: ranges and multi-measure aggregates over relational columns only.
#: No VQA / TextQA / plot queries, so per-query cost scales with lake
#: rows and the columnar-vs-row store comparison measures the store.
RELATIONAL_WORKLOADS: dict[str, tuple[str, ...]] = {
    "artwork": (
        "How many paintings belong to the 'Impressionism' movement?",
        "For each movement, how many paintings are there?",
        "What is the earliest inception date of all paintings?",
        "What are the earliest and latest inception dates of "
        "impressionist paintings?",
        "For each movement, what are the earliest and latest inception "
        "dates?",
        "How many paintings were created between 1880 and 1895?",
    ),
    "rotowire": (
        "How many players are taller than 200?",
        "List the names of players taller than 200.",
        "Who is the tallest player?",
        "What is the average height of players in the Eastern conference?",
        "How many players play for teams in the Atlantic division?",
        "What is the average number of points scored by players on teams "
        "founded before 1970?",
        "What are the minimum and maximum height of players in the "
        "Western conference?",
        "How many games took place in November 2018?",
    ),
}

#: The selectable workload families for ``repro bench --workload``.
WORKLOAD_FAMILIES: dict[str, dict[str, tuple[str, ...]]] = {
    "standard": WORKLOADS,
    "relational": RELATIONAL_WORKLOADS,
}


def workload_names() -> tuple[str, ...]:
    """The workload family names, sorted."""
    return tuple(sorted(WORKLOAD_FAMILIES))


def workload_datasets() -> tuple[str, ...]:
    """Datasets that have a fixed benchmark workload, sorted.

    The cross-backend parity suite iterates this: every backend must
    produce identical results for every full workload listed here.
    """
    return tuple(sorted(WORKLOADS))


def workload(dataset: str, repeats: int = 1,
             name: str = "standard") -> list[str]:
    """The fixed *name* workload of *dataset*, repeated *repeats* times."""
    if name not in WORKLOAD_FAMILIES:
        raise KeyError(f"no workload family {name!r}; "
                       f"available: {', '.join(workload_names())}")
    family = WORKLOAD_FAMILIES[name]
    if dataset not in family:
        raise KeyError(f"no {name} workload for dataset {dataset!r}; "
                       f"available: {', '.join(sorted(family))}")
    if repeats <= 0:
        raise ValueError(f"repeats must be positive, got {repeats}")
    return list(family[dataset]) * repeats

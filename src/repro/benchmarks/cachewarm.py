"""The ``repro cache-bench`` harness: cold-replica warm-up strategies.

The question this benchmark answers: a **fresh replica** — new process,
new machine, empty local caches — must serve the fixed workload; how
long until it has?  Three legs, each on a brand-new
:class:`~repro.session.Session`:

- ``file_only`` — the replica has nothing: no cache files, no tier.  It
  pays the full cold cost (every plan is a simulated-latency LLM round
  trip, every modality answer is real inference), then saves its caches
  to files — which is exactly what a fresh machine joining a file-based
  fleet must do before restarts get cheap.
- ``file_restart`` — the same-machine restart: a fresh session
  rehydrates the files the first leg saved, then runs.  Recorded as the
  ungated reference — files solve restarts on *one* machine, and this
  leg shows how well.
- ``shared_tier`` — the fresh replica connects to a cache tier
  (:mod:`repro.cachenet`) another session already warmed, and pulls
  exactly the plans and answers its queries touch over the socket.
  Warmth crosses the process/machine boundary without any file shipping.

The committed gate (CI's ``cache-tier`` job) is
``speedup_shared_vs_file_only >= 2``: joining an already-warm fleet must
beat re-deriving the warm set from scratch by at least 2x.  Results land
in ``BENCH_cache.json`` (``--output``).
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.benchmarks.workloads import WORKLOAD_VERSION, workload
from repro.cachenet import CacheTierServer
from repro.cliargs import positive_float, positive_int
from repro.datasets import DATASET_NAMES, load_lake
from repro.llm.brain import SimulatedBrain
from repro.session import Session

#: Format marker written into the benchmark record.
CACHE_BENCH_FORMAT = "repro-cache-bench/v1"

DEFAULT_SCALE = 5.0
DEFAULT_LLM_LATENCY_MS = 10.0
DEFAULT_OUTPUT = "BENCH_cache.json"

#: The CI gate: a cold replica warming from the shared tier must be at
#: least this much faster than one re-deriving the warm set cold.
GATE_MIN_SPEEDUP = 2.0

_LEG_DESCRIPTIONS = {
    "file_only": (
        "fresh replica, no warm state anywhere: full cold run (LLM "
        "planning latency + real modality inference), then saves cache "
        "files — what a new machine joining a file-based fleet pays"),
    "file_restart": (
        "same-machine restart: fresh session rehydrates the cache files "
        "the cold leg saved, then runs (ungated reference — files only "
        "help where they already are)"),
    "shared_tier": (
        "fresh replica joins an already-warm cache tier over the socket "
        "and pulls exactly what its queries touch — the gated leg"),
}


@dataclass
class CacheBenchConfig:
    """One cache-warm-up benchmark invocation."""

    dataset: str = "artwork"
    scale: float = DEFAULT_SCALE
    seed: int | None = None
    repeats: int = 1
    #: simulated LLM latency per planner/mapper call: cold planning cost
    #: is what the warm strategies amortize, so it must be realistic.
    llm_latency_ms: float = DEFAULT_LLM_LATENCY_MS
    #: an external tier to benchmark against; ``None`` starts a private
    #: in-process :class:`~repro.cachenet.CacheTierServer`.
    cache_url: str | None = None
    output: str | None = DEFAULT_OUTPUT
    quiet: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")
        if self.repeats <= 0:
            raise ValueError(f"repeats must be positive, got {self.repeats}")
        if self.llm_latency_ms < 0:
            raise ValueError("llm latency must be non-negative")


def _say(config: CacheBenchConfig, message: str) -> None:
    if not config.quiet:
        print(f"[cache-bench] {message}", flush=True)


def run_cache_benchmark(config: CacheBenchConfig) -> dict:
    """Run the three warm-up legs and return the JSON record."""
    lake = load_lake(config.dataset, seed=config.seed, scale=config.scale)
    queries = workload(config.dataset, config.repeats)
    latency = config.llm_latency_ms / 1000.0

    def fresh_session(cache_url: str | None = None) -> Session:
        return Session(lake, brain=SimulatedBrain(latency_seconds=latency),
                       cache_url=cache_url)

    server: CacheTierServer | None = None
    if config.cache_url is None:
        server = CacheTierServer(bind="tcp://127.0.0.1:0").start()
        cache_url = server.url
    else:
        cache_url = config.cache_url

    legs: dict[str, dict] = {}
    try:
        with tempfile.TemporaryDirectory(prefix="repro-cache-bench-") \
                as tmpdir:
            plan_file = str(Path(tmpdir) / "plans.json")
            answer_file = str(Path(tmpdir) / "answers.json")

            # Leg 1: nothing is warm anywhere.  Save files afterwards
            # (outside the clock — the restart leg pays for *loading*).
            _say(config, f"leg file_only: {len(queries)} queries, cold")
            session = fresh_session()
            started = time.perf_counter()
            report = session.batch(queries)
            elapsed = time.perf_counter() - started
            legs["file_only"] = _leg_record(report, elapsed)
            session.save_plan_cache(plan_file)
            session.save_answer_cache(answer_file)
            session.close()

            # Leg 2: same-machine restart over the files just saved;
            # rehydration is part of the measured warm-up.
            _say(config, "leg file_restart: rehydrate files + run")
            session = fresh_session()
            started = time.perf_counter()
            session.load_plan_cache(plan_file)
            session.load_answer_cache(answer_file)
            report = session.batch(queries)
            elapsed = time.perf_counter() - started
            legs["file_restart"] = _leg_record(report, elapsed)
            session.close()

        # Warm the tier (a prior fleet member's traffic; not timed).
        _say(config, f"warming tier at {cache_url}")
        producer = fresh_session(cache_url=cache_url)
        producer.batch(queries)
        producer.close()

        # Leg 3: the fresh replica joins the warm tier cold.
        _say(config, "leg shared_tier: cold replica pulls from the tier")
        session = fresh_session(cache_url=cache_url)
        started = time.perf_counter()
        report = session.batch(queries)
        elapsed = time.perf_counter() - started
        cachenet = {name: value for name, value
                    in session.metrics().get("counters", {}).items()
                    if name.startswith("cachenet_")}
        legs["shared_tier"] = _leg_record(report, elapsed,
                                          cachenet=cachenet)
        session.close()
    finally:
        if server is not None:
            server.stop()

    for name, leg in legs.items():
        leg["description"] = _LEG_DESCRIPTIONS[name]
    shared = legs["shared_tier"]["elapsed_seconds"]
    record = {
        "format": CACHE_BENCH_FORMAT,
        "workload_version": WORKLOAD_VERSION,
        "dataset": config.dataset,
        "scale": config.scale,
        "seed": config.seed,
        "repeats": config.repeats,
        "queries": len(queries),
        "llm_latency_ms": config.llm_latency_ms,
        "legs": legs,
        "speedup_shared_vs_file_only": _speedup(
            legs["file_only"]["elapsed_seconds"], shared),
        "speedup_file_restart_vs_file_only": _speedup(
            legs["file_only"]["elapsed_seconds"],
            legs["file_restart"]["elapsed_seconds"]),
        "gate": {
            "metric": "speedup_shared_vs_file_only",
            "min_speedup": GATE_MIN_SPEEDUP,
        },
    }
    record["gate"]["passed"] = (
        record["speedup_shared_vs_file_only"] >= GATE_MIN_SPEEDUP)
    _say(config,
         f"shared tier {record['speedup_shared_vs_file_only']:.1f}x vs "
         f"cold, file restart "
         f"{record['speedup_file_restart_vs_file_only']:.1f}x vs cold "
         f"(gate: >= {GATE_MIN_SPEEDUP:g}x "
         f"{'passed' if record['gate']['passed'] else 'FAILED'})")
    if config.output:
        Path(config.output).write_text(
            json.dumps(record, indent=2) + "\n", encoding="utf-8")
        _say(config, f"wrote {config.output}")
    return record


def _leg_record(report, elapsed: float, cachenet: dict | None = None) -> dict:
    leg = {
        "elapsed_seconds": round(elapsed, 6),
        "queries": report.num_queries,
        "errors": report.num_errors,
        "queries_per_second": (round(report.num_queries / elapsed, 3)
                               if elapsed > 0 else 0.0),
        "plan_cache": {"hits": report.cache_hits,
                       "misses": report.cache_misses},
        "answer_cache": {"hits": report.answer_hits,
                         "misses": report.answer_misses},
    }
    if cachenet is not None:
        leg["cachenet"] = cachenet
    return leg


def _speedup(baseline: float, measured: float) -> float:
    return round(baseline / measured, 3) if measured > 0 else 0.0


# ----------------------------------------------------------------------
# CLI (``repro cache-bench``)
# ----------------------------------------------------------------------

def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro cache-bench",
        description="Benchmark cold-replica warm-up: shared cache tier "
                    "vs cache files vs nothing (see BENCH_cache.json).")
    parser.add_argument("--dataset", default="artwork",
                        choices=DATASET_NAMES,
                        help="which synthetic dataset to load "
                             "(default: artwork)")
    parser.add_argument("--scale", type=positive_float,
                        default=DEFAULT_SCALE,
                        help=f"lake scale factor (default: "
                             f"{DEFAULT_SCALE:g})")
    parser.add_argument("--seed", type=int, default=None,
                        help="dataset generation seed")
    parser.add_argument("--repeats", type=positive_int, default=1,
                        help="workload repetitions per leg (default: 1)")
    parser.add_argument("--llm-latency-ms", type=positive_float,
                        default=DEFAULT_LLM_LATENCY_MS,
                        help=f"simulated LLM latency per planner call "
                             f"(default: {DEFAULT_LLM_LATENCY_MS:g})")
    parser.add_argument("--cache-url", metavar="URL", default=None,
                        help="benchmark against this running cache tier "
                             "(default: a private in-process server)")
    parser.add_argument("--output", metavar="PATH", default=DEFAULT_OUTPUT,
                        help=f"where to write the JSON record (default: "
                             f"{DEFAULT_OUTPUT})")
    parser.add_argument("--gate", action="store_true",
                        help=f"exit non-zero unless the shared tier is "
                             f">= {GATE_MIN_SPEEDUP:g}x faster than the "
                             f"cold leg (the CI gate)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress progress output")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_arg_parser().parse_args(argv)
    config = CacheBenchConfig(
        dataset=args.dataset, scale=args.scale, seed=args.seed,
        repeats=args.repeats, llm_latency_ms=args.llm_latency_ms,
        cache_url=args.cache_url, output=args.output, quiet=args.quiet)
    record = run_cache_benchmark(config)
    if args.gate and not record["gate"]["passed"]:
        print(f"cache-bench gate FAILED: shared tier is only "
              f"{record['speedup_shared_vs_file_only']:.2f}x faster than "
              f"the cold leg (need >= {GATE_MIN_SPEEDUP:g}x)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""The ``repro bench`` harness.

Runs a dataset's fixed workload (:mod:`repro.benchmarks.workloads`) through
a :class:`~repro.session.Session` at several worker counts, for one or
more execution backends (``--backend thread,process`` measures the
thread pool against the GIL-free process lanes on the same workload).
Every ``(backend, workers)`` point gets a fresh session (fresh caches,
fresh worker pool) and two passes over the workload:

- a **cold** pass that populates the plan cache and the answer cache, and
- a **warm** pass on the now-hot caches — the steady-state a long-running
  service converges to, and the configuration the speedup claims are made
  on.

The planner model runs with a configurable simulated inference latency
(``--llm-latency-ms``, see :class:`~repro.llm.brain.SimulatedBrain`): in a
production deployment every planning/mapping step is a remote LLM round
trip, so worker scaling is measured against that latency-bound profile
rather than against a zero-latency simulator.  ``--llm-latency-ms 0``
measures the pure-CPU profile instead.

Results land in ``BENCH_parallel.json`` (``--output``), with warm
throughput speedups computed against the 1-worker run.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator

from repro.benchmarks.workloads import (WORKLOAD_VERSION, workload,
                                        workload_names)
from repro.cliargs import backend_list, positive_float, positive_int
from repro.core.batch import BatchReport
from repro.core.engine import EngineConfig
from repro.data.catalog import DataLake
from repro.data.columns import set_table_store, table_store
from repro.datasets import DATASET_NAMES, load_lake
from repro.exec import backend_names
from repro.llm.brain import SimulatedBrain
from repro.obs import TelemetryConfig, render_snapshot
from repro.session import Session

DEFAULT_WORKERS = (1, 2, 4)
DEFAULT_BACKENDS = ("thread",)
DEFAULT_SCALE = 10.0
DEFAULT_LLM_LATENCY_MS = 10.0
DEFAULT_OUTPUT = "BENCH_parallel.json"

_STORES = ("columnar", "row")
_ENGINES = ("columnar", "native", "sqlite")


@dataclass
class BenchConfig:
    """One benchmark invocation."""

    dataset: str = "artwork"
    scale: float = DEFAULT_SCALE
    seed: int | None = None
    workers: tuple[int, ...] = DEFAULT_WORKERS
    #: execution backends to measure; each gets its own scaling curve
    #: over ``workers`` (fresh session — and for "process", a fresh
    #: worker-lane pool — per point).
    backends: tuple[str, ...] = DEFAULT_BACKENDS
    repeats: int = 3
    #: ``None`` means "no latency override" — only meaningful together
    #: with a *session_factory* whose brain sets its own pace (see
    #: :meth:`repro.session.Session.bench`).
    llm_latency_ms: float | None = DEFAULT_LLM_LATENCY_MS
    plan_cache_size: int = 128
    output: str | None = DEFAULT_OUTPUT
    #: span collection + cost accounting in the benchmarked sessions;
    #: ``--no-telemetry`` turns it off (the CI overhead gate compares the
    #: two states on one leg).
    telemetry: bool = True
    #: optional path for the per-point session metrics snapshots (the
    #: JSON artifact CI uploads).
    metrics_output: str | None = None
    #: workload family (:func:`repro.benchmarks.workloads.workload_names`).
    #: ``relational`` is the storage-bound filter/join/aggregate profile
    #: the store comparison below is measured on.
    workload_name: str = "standard"
    #: table store for the measured grid (``columnar`` / ``row``);
    #: ``None`` inherits the process default (``REPRO_TABLE_STORE``).
    store: str | None = None
    #: relational engine for the measured grid; ``None`` inherits
    #: (``REPRO_RELATIONAL_ENGINE``, default ``columnar``).
    engine: str | None = None
    #: when set (``row``), the whole grid is re-run under that table
    #: store with the sqlite bridge engine — the pre-columnar
    #: configuration — and per-point warm speedups vs that baseline are
    #: recorded (``warm_speedup_vs_baseline``, gated in CI).
    baseline_store: str | None = None
    quiet: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if self.workload_name not in workload_names():
            raise ValueError(
                f"unknown workload {self.workload_name!r}; available: "
                f"{', '.join(workload_names())}")
        for label, value, allowed in (
                ("store", self.store, _STORES),
                ("engine", self.engine, _ENGINES),
                ("baseline_store", self.baseline_store, _STORES)):
            if value is not None and value not in allowed:
                raise ValueError(f"unknown {label} {value!r}; available: "
                                 f"{', '.join(allowed)}")
        if not self.workers:
            raise ValueError("at least one worker count is required")
        if any(w <= 0 for w in self.workers):
            raise ValueError(f"worker counts must be positive: "
                             f"{self.workers}")
        if not self.backends:
            raise ValueError("at least one backend is required")
        unknown = [b for b in self.backends if b not in backend_names()]
        if unknown:
            raise ValueError(
                f"unknown backends {unknown}; available: "
                f"{', '.join(backend_names())}")
        if self.repeats <= 0:
            raise ValueError(f"repeats must be positive, got {self.repeats}")
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")
        if self.llm_latency_ms is not None and self.llm_latency_ms < 0:
            raise ValueError("llm latency must be non-negative")


def _say(config: BenchConfig, message: str) -> None:
    if not config.quiet:
        print(f"[bench] {message}", flush=True)


@contextmanager
def _storage_mode(store: str | None, engine: str | None) -> Iterator[None]:
    """Pin the table store and relational engine, process-wide.

    Both knobs go through the environment as well as the in-process
    setters, so process-backend worker lanes inherit them.
    """
    previous_store: str | None = None
    saved_env: dict[str, str | None] = {}
    try:
        if store is not None:
            previous_store = set_table_store(store)
            saved_env["REPRO_TABLE_STORE"] = os.environ.get(
                "REPRO_TABLE_STORE")
            os.environ["REPRO_TABLE_STORE"] = store
        if engine is not None:
            saved_env["REPRO_RELATIONAL_ENGINE"] = os.environ.get(
                "REPRO_RELATIONAL_ENGINE")
            os.environ["REPRO_RELATIONAL_ENGINE"] = engine
        yield
    finally:
        if previous_store is not None:
            set_table_store(previous_store)
        for key, value in saved_env.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def _run_grid(config: BenchConfig, queries: list[str],
              session_factory: Callable[[], Session],
              ) -> tuple[list[dict], dict[tuple[str, int], BatchReport]]:
    """One cold+warm pass per ``(backend, workers)`` point."""
    runs: list[dict] = []
    warm_reports: dict[tuple[str, int], BatchReport] = {}
    for backend in config.backends:
        for workers in config.workers:
            session = session_factory()
            try:
                cold = session.batch(queries, workers=workers,
                                     backend=backend)
                warm = session.batch(queries, workers=workers,
                                     backend=backend)
                metrics = session.metrics()
            finally:
                # Shut worker lanes down between points so one curve's
                # processes never sit on cores while the next measures.
                session.close()
            warm_reports[(backend, workers)] = warm
            runs.append({"backend": backend,
                         "workers": workers,
                         "cold": cold.to_dict(),
                         "warm": warm.to_dict(),
                         "metrics": metrics})
            economics = warm.telemetry.cost_summary()
            _say(config,
                 f"{backend:>7s} x{workers}: "
                 f"cold {cold.queries_per_second:6.1f} q/s, "
                 f"warm {warm.queries_per_second:6.1f} q/s "
                 f"(plan hit {warm.cache_hit_rate:.0%}, "
                 f"answer hit {warm.answer_hit_rate:.0%}, "
                 f"{economics['token_in'] + economics['token_out']} tok "
                 f"${economics['cost_usd']:.4f}, "
                 f"{warm.num_errors} errors)")
    return runs, warm_reports


def _warm_speedups(config: BenchConfig,
                   warm_reports: dict[tuple[str, int], BatchReport],
                   ) -> dict[str, dict[str, float]]:
    """Per-backend warm speedup curves vs the 1-worker point."""
    speedups: dict[str, dict[str, float]] = {}
    for backend in config.backends:
        baseline = warm_reports.get((backend, 1))
        if baseline is None or baseline.queries_per_second <= 0:
            _say(config, f"no 1-worker run for backend {backend}; "
                         "warm speedups vs 1 worker omitted")
            continue
        curve: dict[str, float] = {}
        for workers in sorted(config.workers):
            report = warm_reports[(backend, workers)]
            ratio = report.queries_per_second / baseline.queries_per_second
            curve[str(workers)] = round(ratio, 3)
            if workers != 1:
                _say(config, f"{backend} warm speedup at {workers} workers: "
                             f"{ratio:.2f}x vs 1 worker")
        speedups[backend] = curve
    return speedups


def run_benchmark(config: BenchConfig, lake: DataLake | None = None,
                  session_factory: Callable[[], Session] | None = None,
                  ) -> dict:
    """Run the benchmark described by *config* and return the JSON record.

    When ``config.output`` is set, the record is also written there.  When
    *lake* is given (:meth:`repro.session.Session.bench` does this), it is
    benchmarked as-is and ``config.scale``/``config.seed`` are recorded as
    ``None`` — they describe lake generation, which did not happen here.
    *session_factory* supplies the fresh session for each worker count
    (``Session.bench`` uses it to carry its brain, config, and role
    overrides into the benchmark); the default builds one over *lake*
    with a :class:`~repro.llm.brain.SimulatedBrain` at
    ``config.llm_latency_ms``.
    """
    queries = workload(config.dataset, repeats=config.repeats,
                       name=config.workload_name)
    provided_lake = lake is not None
    if config.baseline_store is not None and (provided_lake
                                              or session_factory is not None):
        raise ValueError("the store baseline regenerates the lake and "
                         "session; it cannot be combined with a provided "
                         "lake or session factory")

    with _storage_mode(config.store, config.engine):
        active_store = table_store()
        active_engine = EngineConfig().relational_engine
        if provided_lake:
            generation_seconds = 0.0
        else:
            _say(config, f"generating {config.dataset} lake at scale "
                         f"{config.scale:g} (store {active_store}, "
                         f"engine {active_engine}) ...")
            generated = time.perf_counter()
            lake = load_lake(config.dataset, seed=config.seed,
                             scale=config.scale)
            generation_seconds = time.perf_counter() - generated
        lake_rows = {name: lake.table(name).num_rows
                     for name in lake.source_names}
        _say(config, f"lake ready in {generation_seconds:.1f}s "
                     f"({', '.join(f'{n}={r}' for n, r in lake_rows.items())})"
             )
        latency_text = ("session brain" if config.llm_latency_ms is None
                        else f"{config.llm_latency_ms:g}ms")
        _say(config, f"workload: {config.workload_name}, "
                     f"{len(queries)} queries "
                     f"({len(set(queries))} unique), llm latency "
                     f"{latency_text}")

        if session_factory is None:
            latency_ms = config.llm_latency_ms or 0.0

            def session_factory() -> Session:
                return Session(
                    lake,
                    brain=SimulatedBrain(
                        latency_seconds=latency_ms / 1000.0),
                    plan_cache_size=config.plan_cache_size,
                    telemetry=TelemetryConfig(enabled=config.telemetry))

        runs, warm_reports = _run_grid(config, queries, session_factory)
        speedups = _warm_speedups(config, warm_reports)

    baseline_record = None
    baseline_speedups: dict[str, dict[str, float]] = {}
    if config.baseline_store is not None:
        # The pre-columnar configuration: row-stored tables executed
        # through the sqlite bridge.  Same workload, same grid, fresh
        # lake and sessions, so the comparison isolates the store.
        _say(config, f"baseline grid: table store "
                     f"{config.baseline_store!r}, relational engine "
                     f"'sqlite' (the pre-columnar path)")
        with _storage_mode(config.baseline_store, "sqlite"):
            generated = time.perf_counter()
            baseline_lake = load_lake(config.dataset, seed=config.seed,
                                      scale=config.scale)
            baseline_generation = time.perf_counter() - generated
            latency_ms = config.llm_latency_ms or 0.0

            def baseline_factory() -> Session:
                return Session(
                    baseline_lake,
                    brain=SimulatedBrain(
                        latency_seconds=latency_ms / 1000.0),
                    plan_cache_size=config.plan_cache_size,
                    telemetry=TelemetryConfig(enabled=config.telemetry))

            baseline_runs, baseline_warm = _run_grid(config, queries,
                                                     baseline_factory)
        baseline_record = {
            "table_store": config.baseline_store,
            "relational_engine": "sqlite",
            "lake_fingerprint": baseline_lake.fingerprint(),
            "lake_generation_seconds": round(baseline_generation, 3),
            "runs": baseline_runs,
            "warm_speedup_vs_1_worker": _warm_speedups(config,
                                                       baseline_warm),
        }
        for backend in config.backends:
            curve: dict[str, float] = {}
            for workers in sorted(config.workers):
                primary = warm_reports[(backend, workers)]
                baseline = baseline_warm[(backend, workers)]
                if baseline.queries_per_second <= 0:
                    continue
                ratio = (primary.queries_per_second
                         / baseline.queries_per_second)
                curve[str(workers)] = round(ratio, 3)
                _say(config, f"{backend} x{workers} warm: {ratio:.2f}x vs "
                             f"{config.baseline_store}-store baseline")
            baseline_speedups[backend] = curve

    record = {
        "benchmark": "parallel_batch",
        "workload_version": WORKLOAD_VERSION,
        "workload": config.workload_name,
        "created_unix": int(time.time()),
        "python": sys.version.split()[0],
        "cpu_count": os.cpu_count(),
        "dataset": config.dataset,
        "scale": None if provided_lake else config.scale,
        "seed": None if provided_lake else config.seed,
        "table_store": active_store,
        "relational_engine": active_engine,
        "lake_fingerprint": lake.fingerprint(),
        "lake_rows": lake_rows,
        "lake_generation_seconds": round(generation_seconds, 3),
        "queries_per_run": len(queries),
        "unique_queries": len(set(queries)),
        "repeats": config.repeats,
        "llm_latency_ms": config.llm_latency_ms,
        "telemetry": config.telemetry,
        "backends": list(config.backends),
        "runs": runs,
        "warm_speedup_vs_1_worker": speedups,
    }
    if baseline_record is not None:
        record["baseline"] = baseline_record
        record["warm_speedup_vs_baseline"] = baseline_speedups
    if config.output:
        path = Path(config.output)
        path.write_text(json.dumps(record, indent=2) + "\n",
                        encoding="utf-8")
        _say(config, f"wrote {path}")
    if config.metrics_output:
        points = [{"backend": run["backend"], "workers": run["workers"],
                   "metrics": run["metrics"]} for run in runs]
        path = Path(config.metrics_output)
        # render_snapshot keeps this artifact byte-compatible with the
        # service's GET /metrics and `repro batch --metrics-file`.
        path.write_text(
            render_snapshot({"benchmark": "parallel_batch_metrics",
                             "dataset": config.dataset, "points": points}),
            encoding="utf-8")
        _say(config, f"wrote {path}")
    return record


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Benchmark parallel batch execution and the caches "
                    "over a scaled data lake.")
    parser.add_argument("--dataset", choices=DATASET_NAMES,
                        default="artwork",
                        help="dataset to benchmark (default: artwork)")
    parser.add_argument("--scale", type=positive_float,
                        default=DEFAULT_SCALE,
                        help=f"lake scale factor (default: "
                             f"{DEFAULT_SCALE:g})")
    parser.add_argument("--seed", type=int, default=None,
                        help="dataset generation seed")
    parser.add_argument("--workers", default=",".join(
                            str(w) for w in DEFAULT_WORKERS),
                        help="comma-separated worker counts "
                             "(default: 1,2,4)")
    parser.add_argument("--backend", type=backend_list,
                        default=DEFAULT_BACKENDS, metavar="NAMES",
                        help="comma-separated execution backends to "
                             "measure, each with its own scaling curve "
                             f"({', '.join(backend_names())}; "
                             "default: thread)")
    parser.add_argument("--repeats", type=positive_int, default=3,
                        help="workload repetitions per run (default: 3)")
    parser.add_argument("--workload", choices=workload_names(),
                        default="standard", metavar="NAME",
                        help="workload family "
                             f"({', '.join(workload_names())}; default: "
                             "standard).  'relational' is the pure "
                             "filter/join/aggregate profile the store "
                             "comparison is measured on")
    parser.add_argument("--store", choices=_STORES, default=None,
                        help="table store for the measured grid "
                             "(default: inherit REPRO_TABLE_STORE, "
                             "i.e. columnar)")
    parser.add_argument("--engine", choices=_ENGINES, default=None,
                        help="relational engine for the measured grid "
                             "(default: inherit REPRO_RELATIONAL_ENGINE, "
                             "i.e. columnar)")
    parser.add_argument("--baseline-store", choices=_STORES, default=None,
                        metavar="STORE",
                        help="also run the whole grid under this table "
                             "store with the sqlite bridge engine (the "
                             "pre-columnar path) and record per-point "
                             "warm speedups vs that baseline")
    parser.add_argument("--gate-baseline", type=positive_float, default=None,
                        metavar="RATIO",
                        help="exit non-zero unless every backend's "
                             "1-worker warm throughput beats the "
                             "--baseline-store run by at least RATIO x")
    parser.add_argument("--llm-latency-ms", type=float,
                        default=DEFAULT_LLM_LATENCY_MS,
                        help="simulated planner-model latency per call in "
                             "milliseconds (default: "
                             f"{DEFAULT_LLM_LATENCY_MS:g}; 0 disables)")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help=f"JSON output path (default: {DEFAULT_OUTPUT})")
    parser.add_argument("--no-telemetry", action="store_true",
                        help="disable span collection and cost accounting "
                             "in the benchmarked sessions (measures the "
                             "tracing overhead when compared against a "
                             "default run)")
    parser.add_argument("--metrics-output", metavar="PATH", default=None,
                        help="also write the per-point session metrics "
                             "snapshots to this JSON file")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress progress lines")
    return parser


def _parse_workers(text: str) -> tuple[int, ...]:
    try:
        workers = tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError as exc:
        raise SystemExit(f"invalid --workers value {text!r}: {exc}")
    if not workers:
        raise SystemExit(f"invalid --workers value {text!r}")
    return workers


def main(argv: list[str] | None = None) -> int:
    args = build_arg_parser().parse_args(argv)
    if args.gate_baseline is not None and args.baseline_store is None:
        raise SystemExit("--gate-baseline requires --baseline-store")
    config = BenchConfig(
        dataset=args.dataset,
        scale=args.scale,
        seed=args.seed,
        workers=_parse_workers(args.workers),
        backends=tuple(args.backend),
        repeats=args.repeats,
        llm_latency_ms=args.llm_latency_ms,
        output=args.output,
        telemetry=not args.no_telemetry,
        metrics_output=args.metrics_output,
        workload_name=args.workload,
        store=args.store,
        engine=args.engine,
        baseline_store=args.baseline_store,
        quiet=args.quiet,
    )
    record = run_benchmark(config)
    errors = sum(run[pass_name]["errors"]
                 for run in record["runs"] for pass_name in ("cold", "warm"))
    if record.get("baseline") is not None:
        errors += sum(
            run[pass_name]["errors"]
            for run in record["baseline"]["runs"]
            for pass_name in ("cold", "warm"))
    if errors:
        return 1
    if args.gate_baseline is not None:
        speedups = record.get("warm_speedup_vs_baseline", {})
        for backend in config.backends:
            ratio = speedups.get(backend, {}).get("1")
            if ratio is None or ratio < args.gate_baseline:
                print(f"[bench] GATE FAILED: {backend} 1-worker warm "
                      f"throughput is {ratio}x the "
                      f"{config.baseline_store}-store baseline "
                      f"(required >= {args.gate_baseline:g}x)", flush=True)
                return 1
            print(f"[bench] gate ok: {backend} 1-worker warm {ratio}x >= "
                  f"{args.gate_baseline:g}x baseline", flush=True)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

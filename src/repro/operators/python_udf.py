"""Python UDF physical operator.

"The Python operator takes a description as input, which is translated to
code using GPT-4" (Figure 4).  The description is compiled to real Python
source by the recipe-based code generator and executed per-row inside the
AST-validated sandbox.
"""

from __future__ import annotations

from repro.data.datatypes import DataType, infer_column_type
from repro.errors import (CodeGenerationError, OperatorError,
                          SandboxViolationError)
from repro.operators.base import (ExecutionContext, OperatorCard,
                                  OperatorResult, PhysicalOperator,
                                  register_operator)
from repro.udf.codegen import generate_udf


class PythonOperator(PhysicalOperator):
    """Apply generated Python code to a column, producing a new column."""

    card = OperatorCard(
        name="Python",
        purpose=("It is useful when you need an arbitrary transformation of "
                 "a relational column that SQL cannot express, e.g. extract "
                 "the century from a date string. Describe the "
                 "transformation in natural language; Python code is "
                 "generated and executed over every value."),
        argument_format=("(table; input_column; new_column; natural-language "
                         "description of the transformation)"))

    def run(self, context: ExecutionContext, args: list[str]) -> OperatorResult:
        table_name, input_column, new_column, description = (
            self.require_args(args, 4))
        table = context.resolve(table_name)
        if input_column not in table:
            raise OperatorError(
                f"table {table_name!r} has no column {input_column!r}",
                operator=self.name)
        if table.dtype(input_column).is_modality:
            raise OperatorError(
                f"column {input_column!r} is {table.dtype(input_column).value}"
                f"; the Python operator works on relational columns only "
                "(use Visual Question Answering / Text Question Answering "
                "for modalities)", operator=self.name)
        try:
            udf = generate_udf(description)
            transform = udf.compile()
        except (CodeGenerationError, SandboxViolationError) as exc:
            raise OperatorError(str(exc), operator=self.name) from exc
        context.count("udf_calls")

        values = []
        for value in table.column(input_column):
            if value is None:
                values.append(None)
                continue
            try:
                values.append(transform(value))
            except Exception as exc:  # generated code may fail arbitrarily
                raise OperatorError(
                    f"generated code failed on value {value!r}: {exc}",
                    operator=self.name) from exc
        dtype = infer_column_type(values)
        result = table.with_column(new_column, dtype, values)
        samples = result.sample_values(new_column)
        observation = (
            f"New column {new_column!r} has been added via generated Python "
            f"code:\n{udf.source}Example values: {samples}")
        return OperatorResult(table=result, observation=observation)


register_operator(PythonOperator)

"""Text Question Answering physical operator (BART).

"The TextQA operator takes a question template as input, which is translated
to questions by inserting different team names from the values in the table"
(Figure 4).  Placeholders ``<column>`` in the template are instantiated from
each row before the extractive QA model answers from the row's text.
"""

from __future__ import annotations

from repro.core.answer_cache import MISS, text_fingerprint
from repro.data.datatypes import DataType
from repro.errors import OperatorError
from repro.operators.base import (ExecutionContext, OperatorCard,
                                  OperatorResult, PhysicalOperator,
                                  register_operator)
from repro.operators.visual_qa import answer_dtype, cast_answer
from repro.text.qa import instantiate_template


class TextQAOperator(PhysicalOperator):
    """Answer an instantiated question template against a TEXT column."""

    card = OperatorCard(
        name="Text Question Answering",
        purpose=("It is useful when you want to extract structured "
                 "information from text documents, e.g. the number of "
                 "points a team scored according to a game report. The "
                 "question is a template: placeholders like <name> are "
                 "replaced with the value of that column in each row. It "
                 "adds the answers as a new column."),
        argument_format=("(table; text_column; new_column; "
                         "question_template; answer_type one of "
                         "int/float/str)"))

    def run(self, context: ExecutionContext, args: list[str]) -> OperatorResult:
        table_name, text_column, new_column, template, answer_type = (
            self.require_args(args, 5))
        table = context.resolve(table_name)
        if text_column not in table:
            raise OperatorError(
                f"table {table_name!r} has no column {text_column!r}",
                operator=self.name)
        if table.dtype(text_column) is not DataType.TEXT:
            raise OperatorError(
                f"column {text_column!r} has type "
                f"{table.dtype(text_column).value}, but {self.name} needs a "
                "TEXT column", operator=self.name)
        cache = context.answer_cache
        cache_type = answer_type.strip().lower()
        answers = []
        for row in table.rows():
            document = row[text_column]
            if document is None:
                answers.append(None)
                continue
            question = instantiate_template(template, row)
            if cache is not None:
                key = (text_fingerprint(str(document)), question, cache_type)
                cached = cache.get(key)
                context.record_answer_lookup(cached is not MISS)
                if cached is not MISS:
                    answers.append(cached)
                    continue
            raw = context.text_model.answer(str(document), question)
            context.count("text_inferences")
            answer = cast_answer(raw, answer_type, self.name)
            if cache is not None:
                cache.put(key, answer)
            answers.append(answer)
        result = table.with_column(new_column, answer_dtype(answer_type),
                                   answers)
        samples = result.sample_values(new_column)
        observation = (
            f"New column {new_column!r} has been added to the table. "
            f"Example values: {samples}")
        return OperatorResult(table=result, observation=observation)


register_operator(TextQAOperator)

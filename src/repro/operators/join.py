"""The Join physical operator: equi-joins with cross-column keys.

The plain SQL operator covers same-name joins (``USING (col)``), but the
lake's foreign keys are not always name-aligned — ``players.team =
teams.name`` is the canonical example.  This operator binds the logical
"join A and B on the 'x' and 'y' columns" step to a real equi-join whose
key columns differ per side.

It registers through :func:`repro.operators.base.register_operator` like
every other operator — the engine loop is untouched; the card below is all
the mapping prompt needs (the paper's "provide all necessary information
about their behavior in the prompt").

Execution goes through the engine's fingerprint-memoized
:class:`~repro.relational.sqlexec.SQLBridge` when one is in the context
(the statement comes from :func:`~repro.relational.sqlexec.build_join_sql`,
so warmed-up lake tables are not re-copied into sqlite), and falls back to
the native hash join (:func:`repro.relational.ops.join`) otherwise.  Both
paths produce identically-shaped, identically-ordered tables.
"""

from __future__ import annotations

from repro.errors import OperatorError, ReproError
from repro.operators.base import (ExecutionContext, OperatorCard,
                                  OperatorResult, PhysicalOperator,
                                  register_operator)
from repro.relational import colexec
from repro.relational.ops import join
from repro.relational.sqlexec import build_join_sql


class JoinOperator(PhysicalOperator):
    """Equi-join two context tables on (possibly differently named) keys."""

    card = OperatorCard(
        name="Join",
        purpose=("It is useful when you want to combine two tables whose "
                 "join key columns have different names, e.g. joining "
                 "players with teams on players.team = teams.name. "
                 "Produces one row per matching key pair; right-side "
                 "columns whose names clash with the left side get a "
                 "'_right' suffix. IMAGE and TEXT columns survive the "
                 "join untouched. For keys that share one name, the SQL "
                 "operator's JOIN ... USING is equivalent."),
        argument_format="(left_table; right_table; left_column; "
                        "right_column)")

    def run(self, context: ExecutionContext, args: list[str]) -> OperatorResult:
        left_name, right_name, left_on, right_on = self.require_args(args, 4)
        left = context.resolve(left_name)
        right = context.resolve(right_name)
        for name, table, key in ((left_name, left, left_on),
                                 (right_name, right, right_on)):
            if key not in table:
                raise OperatorError(
                    f"join key {key!r} is missing from table {name!r} "
                    f"(available columns: {table.column_names})",
                    operator=self.name)
        result = None
        if context.relational_engine != "sqlite":
            # In-process join in the bridge's result representation;
            # shapes it cannot reproduce byte-identically fall through.
            try:
                result = colexec.join_tables(left, right, left_on, right_on)
            except colexec.UnsupportedSQL:
                result = None
        try:
            if result is not None:
                pass
            elif context.sql_bridge is not None:
                sql = build_join_sql(left_name, right_name, left_on,
                                     right_on, left.column_names,
                                     right.column_names)
                result = context.sql_bridge.execute(
                    sql, {left_name: left, right_name: right},
                    known=context.tables)
            else:
                result = join(left, right, left_on, right_on)
        except ReproError as exc:
            raise OperatorError(str(exc), operator=self.name) from exc
        context.count("joins_executed")
        observation = (
            f"Join produced a table with {result.num_rows} rows and "
            f"columns {result.column_names} "
            f"({left_name}.{left_on} = {right_name}.{right_on}).")
        return OperatorResult(table=result, observation=observation)


register_operator(JoinOperator)

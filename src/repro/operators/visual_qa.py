"""Visual Question Answering and Image Select physical operators (BLIP-2)."""

from __future__ import annotations

from repro.core.answer_cache import MISS
from repro.data.datatypes import DataType
from repro.errors import OperatorError
from repro.operators.base import (ExecutionContext, OperatorCard,
                                  OperatorResult, PhysicalOperator,
                                  register_operator)
from repro.vision.image import Image

_ANSWER_CASTS = {
    "int": int,
    "float": float,
    "str": str,
    "bool": bool,
}

_ANSWER_DTYPES = {
    "int": DataType.INTEGER,
    "float": DataType.FLOAT,
    "str": DataType.STRING,
    "bool": DataType.BOOLEAN,
}


def cast_answer(value: object, answer_type: str, operator: str) -> object:
    """Cast a QA answer to the declared type; None passes through."""
    if value is None:
        return None
    answer_type = answer_type.strip().lower()
    if answer_type not in _ANSWER_CASTS:
        raise OperatorError(
            f"unknown answer type {answer_type!r}; expected one of "
            f"{', '.join(_ANSWER_CASTS)}", operator=operator)
    try:
        return _ANSWER_CASTS[answer_type](value)
    except (TypeError, ValueError) as exc:
        raise OperatorError(
            f"cannot cast answer {value!r} to {answer_type}",
            operator=operator) from exc


def answer_dtype(answer_type: str) -> DataType:
    return _ANSWER_DTYPES.get(answer_type.strip().lower(), DataType.STRING)


class VisualQAOperator(PhysicalOperator):
    """Ask a question about every image in a column; store typed answers."""

    card = OperatorCard(
        name="Visual Question Answering",
        purpose=("It is useful when you want to extract structured "
                 "information from images, e.g. how many objects of some "
                 "kind are depicted, or whether something is depicted "
                 "(answered 'yes'/'no'). It adds the answers as a new "
                 "column."),
        argument_format=("(table; image_column; new_column; question; "
                         "answer_type one of int/float/str)"))

    def run(self, context: ExecutionContext, args: list[str]) -> OperatorResult:
        table_name, image_column, new_column, question, answer_type = (
            self.require_args(args, 5))
        table = context.resolve(table_name)
        if image_column not in table:
            raise OperatorError(
                f"table {table_name!r} has no column {image_column!r}",
                operator=self.name)
        if table.dtype(image_column) is not DataType.IMAGE:
            raise OperatorError(
                f"column {image_column!r} has type "
                f"{table.dtype(image_column).value}, but {self.name} needs "
                "an IMAGE column", operator=self.name)
        cache = context.answer_cache
        cache_type = answer_type.strip().lower()
        answers = []
        for value in table.column(image_column):
            if value is None:
                answers.append(None)
                continue
            if not isinstance(value, Image):
                raise OperatorError(
                    f"column {image_column!r} holds {type(value).__name__}, "
                    "not images", operator=self.name)
            if cache is not None:
                key = (value.fingerprint(), question, cache_type)
                cached = cache.get(key)
                context.record_answer_lookup(cached is not MISS)
                if cached is not MISS:
                    answers.append(cached)
                    continue
            raw = context.vision_model.answer(value, question)
            context.count("vision_inferences")
            answer = cast_answer(raw, answer_type, self.name)
            if cache is not None:
                cache.put(key, answer)
            answers.append(answer)
        result = table.with_column(new_column, answer_dtype(answer_type),
                                   answers)
        samples = result.sample_values(new_column)
        observation = (
            f"New column {new_column!r} has been added to the table. "
            f"Example values: {samples}")
        return OperatorResult(table=result, observation=observation)


class ImageSelectOperator(PhysicalOperator):
    """Keep only rows whose image matches a textual description."""

    card = OperatorCard(
        name="Image Select",
        purpose=("It is useful for when you want to select tuples based on "
                 "what is depicted in images, e.g. keep only the paintings "
                 "depicting a certain object."),
        argument_format="(table; image_column; description of what to keep)")

    def run(self, context: ExecutionContext, args: list[str]) -> OperatorResult:
        table_name, image_column, description = self.require_args(args, 3)
        table = context.resolve(table_name)
        if image_column not in table:
            raise OperatorError(
                f"table {table_name!r} has no column {image_column!r}",
                operator=self.name)
        if table.dtype(image_column) is not DataType.IMAGE:
            raise OperatorError(
                f"column {image_column!r} has type "
                f"{table.dtype(image_column).value}, but {self.name} needs "
                "an IMAGE column", operator=self.name)
        cache = context.answer_cache
        mask = []
        for value in table.column(image_column):
            if value is None:
                mask.append(False)
                continue
            if cache is not None:
                key = (value.fingerprint(), description, "select")
                cached = cache.get(key)
                context.record_answer_lookup(cached is not MISS)
                if cached is not MISS:
                    mask.append(cached)
                    continue
            keep = context.vision_model.matches_description(value, description)
            context.count("vision_inferences")
            if cache is not None:
                cache.put(key, keep)
            mask.append(keep)
        result = table.filter(mask)
        observation = (
            f"Image Select kept {result.num_rows} of {table.num_rows} rows "
            f"matching {description!r}.")
        return OperatorResult(table=result, observation=observation)


register_operator(VisualQAOperator)
register_operator(ImageSelectOperator)

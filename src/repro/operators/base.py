"""Physical operator framework.

Every physical operator consumes an :class:`ExecutionContext` (the named
tables produced so far plus the ML model instances) and the argument tuple
chosen by the mapping phase, and produces an :class:`OperatorResult`: an
output table (or plot) plus an *observation* string that is fed back into
the next mapping prompt — the interleaved-execution feedback loop of
Figure 2.

New operators register themselves via :func:`register_operator`; their
*card* (name, purpose, argument format) is injected into the mapping prompt,
which is how the paper plugs in new modalities "as long as we provide all
necessary information about their behavior in the prompt".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.answer_cache import AnswerCache
from repro.data.table import Table
from repro.errors import OperatorError, UnknownTableError
from repro.plotting.spec import PlotSpec
from repro.text.qa import BartQASim
from repro.vision.blip import Blip2Sim


@dataclass
class ExecutionContext:
    """Mutable state threaded through interleaved plan execution."""

    tables: dict[str, Table] = field(default_factory=dict)
    vision_model: Blip2Sim = field(default_factory=Blip2Sim)
    text_model: BartQASim = field(default_factory=BartQASim)
    #: optional shared :class:`~repro.core.answer_cache.AnswerCache`; when
    #: set, the VQA / TextQA / Image Select operators memoize model answers
    #: through it instead of re-running inference.
    answer_cache: AnswerCache | None = None

    def resolve(self, name: str) -> Table:
        if name not in self.tables:
            raise UnknownTableError(name, list(self.tables))
        return self.tables[name]

    def bind(self, name: str, table: Table) -> None:
        self.tables[name] = table


@dataclass
class OperatorResult:
    """Output of one physical operator execution."""

    table: Table | None = None
    plot: PlotSpec | None = None
    observation: str = ""


@dataclass(frozen=True)
class OperatorCard:
    """Prompt-facing description of an operator (Figure 3, right side)."""

    name: str
    purpose: str
    argument_format: str

    def prompt_repr(self) -> str:
        return (f"{self.name}: {self.purpose}\n"
                f"   Arguments: {self.argument_format}")


class PhysicalOperator:
    """Base class for physical operators."""

    card: OperatorCard

    def run(self, context: ExecutionContext, args: list[str]) -> OperatorResult:
        raise NotImplementedError

    @property
    def name(self) -> str:
        return self.card.name

    def require_args(self, args: list[str], count: int) -> list[str]:
        """Validate the argument count; error text mirrors what an LLM would
        see from a crashed tool call."""
        if len(args) != count:
            raise OperatorError(
                f"{self.name} expects {count} arguments "
                f"{self.card.argument_format}, got {len(args)}: "
                f"({'; '.join(args)})",
                operator=self.name)
        return [a.strip() for a in args]


_REGISTRY: dict[str, Callable[[], PhysicalOperator]] = {}


def register_operator(factory: Callable[[], PhysicalOperator]) -> None:
    operator = factory()
    _REGISTRY[operator.name.lower()] = factory


def operator_names() -> list[str]:
    return [factory().name for factory in _REGISTRY.values()]


def build_operator(name: str) -> PhysicalOperator:
    """Instantiate an operator by (case-insensitive) name."""
    key = name.strip().lower()
    if key not in _REGISTRY:
        # tolerate the model writing e.g. "SQL (Join)" for "SQL"
        for registered in _REGISTRY:
            if key.startswith(registered) or registered.startswith(key):
                key = registered
                break
        else:
            raise OperatorError(
                f"unknown operator {name!r}; available: "
                f"{', '.join(operator_names())}", operator=name)
    return _REGISTRY[key]()


def all_cards() -> list[OperatorCard]:
    return [factory().card for factory in _REGISTRY.values()]

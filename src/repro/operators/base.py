"""Physical operator framework.

Every physical operator consumes an :class:`ExecutionContext` (the named
tables produced so far plus the ML model instances) and the argument tuple
chosen by the mapping phase, and produces an :class:`OperatorResult`: an
output table (or plot) plus an *observation* string that is fed back into
the next mapping prompt — the interleaved-execution feedback loop of
Figure 2.

New operators register themselves via :func:`register_operator`; their
*card* (name, purpose, argument format) is injected into the mapping prompt,
which is how the paper plugs in new modalities "as long as we provide all
necessary information about their behavior in the prompt".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.answer_cache import AnswerCache
from repro.data.table import Table
from repro.errors import OperatorError, UnknownTableError
from repro.obs.trace import QueryTelemetry
from repro.plotting.spec import PlotSpec
from repro.relational.sqlexec import SQLBridge
from repro.text.qa import BartQASim
from repro.vision.blip import Blip2Sim


@dataclass
class ExecutionContext:
    """Mutable state threaded through interleaved plan execution."""

    tables: dict[str, Table] = field(default_factory=dict)
    vision_model: Blip2Sim = field(default_factory=Blip2Sim)
    text_model: BartQASim = field(default_factory=BartQASim)
    #: optional shared :class:`~repro.core.answer_cache.AnswerCache`; when
    #: set, the VQA / TextQA / Image Select operators memoize model answers
    #: through it instead of re-running inference.
    answer_cache: AnswerCache | None = None
    #: optional engine-lifetime :class:`~repro.relational.sqlexec.SQLBridge`;
    #: when set, the SQL operator runs over this persistent connection
    #: (tables are re-registered only when their content fingerprint
    #: changes) instead of rebuilding an in-memory database per call.
    sql_bridge: SQLBridge | None = None
    #: optional per-query :class:`~repro.obs.QueryTelemetry`; operators
    #: record cache locality and inference counts into it via
    #: :meth:`count` / :meth:`record_answer_lookup`.
    telemetry: QueryTelemetry | None = None
    #: which relational engine executes SQL / Join steps: ``"columnar"``
    #: and ``"native"`` run supported statements in-process
    #: (:mod:`repro.relational.colexec`) and fall back to the sqlite
    #: bridge; ``"sqlite"`` always uses the bridge.
    relational_engine: str = "columnar"

    def resolve(self, name: str) -> Table:
        if name not in self.tables:
            raise UnknownTableError(name, list(self.tables))
        return self.tables[name]

    def bind(self, name: str, table: Table) -> None:
        self.tables[name] = table

    def count(self, name: str, value: int = 1) -> None:
        """Bump a telemetry counter; no-op when telemetry is unset."""
        if self.telemetry is not None:
            self.telemetry.count(name, value)

    def record_answer_lookup(self, hit: bool) -> None:
        """Record one answer-cache lookup outcome."""
        self.count("answer_cache_hits" if hit else "answer_cache_misses")


@dataclass
class OperatorResult:
    """Output of one physical operator execution."""

    table: Table | None = None
    plot: PlotSpec | None = None
    observation: str = ""


@dataclass(frozen=True)
class OperatorCard:
    """Prompt-facing description of an operator (Figure 3, right side)."""

    name: str
    purpose: str
    argument_format: str

    def prompt_repr(self) -> str:
        return (f"{self.name}: {self.purpose}\n"
                f"   Arguments: {self.argument_format}")


class PhysicalOperator:
    """Base class for physical operators."""

    card: OperatorCard

    def run(self, context: ExecutionContext, args: list[str]) -> OperatorResult:
        raise NotImplementedError

    @property
    def name(self) -> str:
        return self.card.name

    def require_args(self, args: list[str], count: int) -> list[str]:
        """Validate the argument count; error text mirrors what an LLM would
        see from a crashed tool call."""
        if len(args) != count:
            raise OperatorError(
                f"{self.name} expects {count} arguments "
                f"{self.card.argument_format}, got {len(args)}: "
                f"({'; '.join(args)})",
                operator=self.name)
        return [a.strip() for a in args]


class OperatorRegistry:
    """Operator factories keyed by their prompt card.

    The registry is the only coupling between the engine loop and the
    operator set: the engine asks it for the :class:`OperatorCard` list to
    inject into mapping prompts and resolves the mapping phase's operator
    choice back to a factory.  New operators (joins, date-range filters,
    new modalities) therefore plug in by registering a card + factory —
    no engine internals involved.
    """

    def __init__(self) -> None:
        self._factories: dict[str, Callable[[], PhysicalOperator]] = {}
        self._cards: dict[str, OperatorCard] = {}

    def register(self, factory: Callable[[], PhysicalOperator],
                 card: OperatorCard | None = None) -> None:
        """Register *factory* under *card* (default: the operator's own)."""
        if card is None:
            card = factory().card
        key = card.name.strip().lower()
        self._factories[key] = factory
        self._cards[key] = card

    def __len__(self) -> int:
        return len(self._factories)

    def __contains__(self, name: str) -> bool:
        return name.strip().lower() in self._factories

    def names(self) -> list[str]:
        return [card.name for card in self._cards.values()]

    def cards(self) -> list[OperatorCard]:
        return list(self._cards.values())

    def build(self, name: str) -> PhysicalOperator:
        """Instantiate an operator by (case-insensitive) card name."""
        key = name.strip().lower()
        if key not in self._factories:
            # tolerate the model writing e.g. "SQL (Join)" for "SQL"
            for registered in self._factories:
                if key.startswith(registered) or registered.startswith(key):
                    key = registered
                    break
            else:
                raise OperatorError(
                    f"unknown operator {name!r}; available: "
                    f"{', '.join(self.names())}", operator=name)
        return self._factories[key]()

    def copy(self) -> "OperatorRegistry":
        """A shallow copy — seed a custom registry with the defaults."""
        clone = OperatorRegistry()
        clone._factories = dict(self._factories)
        clone._cards = dict(self._cards)
        return clone


#: Registry the built-in operators register themselves into at import time;
#: engines use it unless an explicit registry is composed in.
DEFAULT_REGISTRY = OperatorRegistry()


def register_operator(factory: Callable[[], PhysicalOperator]) -> None:
    DEFAULT_REGISTRY.register(factory)


def operator_names() -> list[str]:
    return DEFAULT_REGISTRY.names()


def build_operator(name: str) -> PhysicalOperator:
    """Instantiate an operator by (case-insensitive) name."""
    return DEFAULT_REGISTRY.build(name)


def all_cards() -> list[OperatorCard]:
    return DEFAULT_REGISTRY.cards()

"""The SQL physical operator (joins, selections, aggregations, sorting).

CAESURA "has access to all relational operators supported by SQLite"; the
mapping phase emits a single guarded SELECT statement which is executed over
the current execution context through the sqlite3 bridge.  Modality columns
survive via object tokens (:mod:`repro.relational.sqlexec`).
"""

from __future__ import annotations

import re

from repro.data.table import Table
from repro.errors import OperatorError, ReproError
from repro.operators.base import (ExecutionContext, OperatorCard,
                                  OperatorResult, PhysicalOperator,
                                  register_operator)
from repro.relational import colexec
from repro.relational.sqlexec import SQLExecutor


def referenced_tables(sql: str, tables: dict[str, Table]) -> dict[str, Table]:
    """The subset of *tables* whose names occur in *sql*.

    Registering a table into sqlite copies every row, which dominates the
    execution phase on large lakes, so only tables the statement can
    actually touch are registered.  Matching is a conservative word-level
    scan: a name mentioned anywhere in the statement (even in a string
    literal) is registered — a superset of the truly referenced tables.
    Falls back to all tables when nothing matches, so a malformed statement
    still fails with sqlite's own error message.
    """
    subset = {name: table for name, table in tables.items()
              if re.search(rf"\b{re.escape(name)}\b", sql, re.IGNORECASE)}
    return subset or dict(tables)


class SQLOperator(PhysicalOperator):
    """Execute one SELECT statement over the context tables."""

    card = OperatorCard(
        name="SQL",
        purpose=("It is useful when you want to join tables, select rows "
                 "based on a condition over relational columns, group and "
                 "aggregate values (COUNT, SUM, AVG, MIN, MAX), sort rows, "
                 "or limit the output. Works only on relational columns; "
                 "it cannot look inside IMAGE or TEXT columns."),
        argument_format="(one SELECT statement over the available tables)")

    def run(self, context: ExecutionContext, args: list[str]) -> OperatorResult:
        (sql,) = self.require_args(args, 1)
        context.count("sql_statements")
        tables = referenced_tables(sql, context.tables)
        result = None
        if context.relational_engine != "sqlite":
            # In-process execution over column storage; anything outside
            # the proven-identical envelope falls through to the bridge.
            try:
                result = colexec.execute(sql, tables,
                                         engine=context.relational_engine)
            except colexec.UnsupportedSQL:
                result = None
        if result is None:
            try:
                if context.sql_bridge is not None:
                    # Engine-lifetime connection: registration is memoized
                    # on content fingerprints, pruned against the current
                    # context.
                    result = context.sql_bridge.execute(sql, tables,
                                                        known=context.tables)
                else:
                    with SQLExecutor() as executor:
                        for name, table in tables.items():
                            executor.register(name, table)
                        result = executor.execute(sql)
            except ReproError as exc:
                raise OperatorError(str(exc), operator=self.name) from exc
        observation = (
            f"SQL returned a table with {result.num_rows} rows and columns "
            f"{result.column_names}.")
        if result.num_rows:
            samples = {name: result.sample_values(name)
                       for name in result.column_names[:4]}
            observation += f" Example values: {samples}"
        return OperatorResult(table=result, observation=observation)


register_operator(SQLOperator)

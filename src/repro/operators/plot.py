"""Plot physical operator (seaborn-equivalent)."""

from __future__ import annotations

from repro.errors import OperatorError
from repro.operators.base import (ExecutionContext, OperatorCard,
                                  OperatorResult, PhysicalOperator,
                                  register_operator)
from repro.plotting.spec import PLOT_KINDS, PlotSpec


class PlotOperator(PhysicalOperator):
    """Turn two columns of a table into a plot specification."""

    card = OperatorCard(
        name="Plot",
        purpose=("It is useful when the user asked for a plot / chart / "
                 "visualization of the result. It draws one column on the "
                 "X-axis against another on the Y-axis."),
        argument_format=(f"(table; plot kind one of "
                         f"{'/'.join(PLOT_KINDS)}; x_column; y_column)"))

    def run(self, context: ExecutionContext, args: list[str]) -> OperatorResult:
        table_name, kind, x_column, y_column = self.require_args(args, 4)
        table = context.resolve(table_name)
        for column in (x_column, y_column):
            if column not in table:
                raise OperatorError(
                    f"table {table_name!r} has no column {column!r}",
                    operator=self.name)
            if table.dtype(column).is_modality:
                raise OperatorError(
                    f"cannot plot modality column {column!r}",
                    operator=self.name)
        kind = kind.strip().lower()
        if kind not in PLOT_KINDS:
            raise OperatorError(
                f"unknown plot kind {kind!r}; expected one of "
                f"{', '.join(PLOT_KINDS)}", operator=self.name)
        spec = PlotSpec(kind=kind, x_label=x_column, y_label=y_column,
                        x_values=list(table.column(x_column)),
                        y_values=list(table.column(y_column)))
        context.count("plots_rendered")
        observation = (
            f"Created a {kind} plot of {y_column!r} over {x_column!r} with "
            f"{spec.num_points} points.")
        return OperatorResult(table=table, plot=spec, observation=observation)


register_operator(PlotOperator)

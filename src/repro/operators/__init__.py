"""Physical operators: SQL, VisualQA, ImageSelect, TextQA, Python, Plot."""

from repro.operators.base import (ExecutionContext, OperatorCard,
                                  OperatorResult, PhysicalOperator, all_cards,
                                  build_operator, operator_names,
                                  register_operator)
from repro.operators.plot import PlotOperator
from repro.operators.python_udf import PythonOperator
from repro.operators.sql_ops import SQLOperator
from repro.operators.text_qa import TextQAOperator
from repro.operators.visual_qa import ImageSelectOperator, VisualQAOperator

__all__ = [
    "ExecutionContext",
    "ImageSelectOperator",
    "OperatorCard",
    "OperatorResult",
    "PhysicalOperator",
    "PlotOperator",
    "PythonOperator",
    "SQLOperator",
    "TextQAOperator",
    "VisualQAOperator",
    "all_cards",
    "build_operator",
    "operator_names",
    "register_operator",
]

"""Physical operators: SQL, Join, VisualQA, ImageSelect, TextQA, Python, Plot.

Importing this package registers every built-in operator into
:data:`repro.operators.base.DEFAULT_REGISTRY` (each module calls
:func:`~repro.operators.base.register_operator` at import time); custom
operator sets start from ``DEFAULT_REGISTRY.copy()``.
"""

from repro.operators.base import (ExecutionContext, OperatorCard,
                                  OperatorResult, PhysicalOperator, all_cards,
                                  build_operator, operator_names,
                                  register_operator)
from repro.operators.join import JoinOperator
from repro.operators.plot import PlotOperator
from repro.operators.python_udf import PythonOperator
from repro.operators.sql_ops import SQLOperator
from repro.operators.text_qa import TextQAOperator
from repro.operators.visual_qa import ImageSelectOperator, VisualQAOperator

__all__ = [
    "ExecutionContext",
    "ImageSelectOperator",
    "JoinOperator",
    "OperatorCard",
    "OperatorResult",
    "PhysicalOperator",
    "PlotOperator",
    "PythonOperator",
    "SQLOperator",
    "TextQAOperator",
    "VisualQAOperator",
    "all_cards",
    "build_operator",
    "operator_names",
    "register_operator",
]

"""The public entry point: one :class:`Session` owns lake + configuration.

A :class:`Session` packages everything needed to answer natural-language
queries over one :class:`~repro.data.catalog.DataLake` — the planner brain,
the engine configuration, and the two caches — behind three methods:

- :meth:`Session.query` answers one query;
- :meth:`Session.batch` drains a workload, serially or over N worker
  threads, and returns a :class:`~repro.core.batch.BatchReport`;
- :meth:`Session.bench` runs the benchmark harness over this session's
  lake.

The CLI, the benchmark harness, and the test suite all drive the system
through this facade.  Both caches are shared by every query and batch of
the session, so repeated workloads run warm; plans survive across runs via
:meth:`save_plan_cache` / :meth:`load_plan_cache` (the serializable plan
IR makes the cache file portable).

Underneath, a session composes :class:`~repro.core.engine.Engine` instances
from pluggable :class:`~repro.core.interfaces.Planner` /
:class:`~repro.core.interfaces.Mapper` / :class:`~repro.core.interfaces.
Executor` parts; pass any of the three to swap a role (e.g. an executor
over a custom operator registry) while keeping the rest of the stack.

Example::

    from repro import Session

    session = Session("rotowire")
    result = session.query("How many players are taller than 200?")
    report = session.batch(["...", "..."], workers=4)
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Iterable, Sequence

from repro.core.answer_cache import AnswerCache
from repro.core.batch import (DEFAULT_ANSWER_CACHE_SIZE, BatchReport,
                              PlanCache, execute_batch)
from repro.core.engine import Engine, EngineConfig
from repro.core.interfaces import Executor, Mapper, Planner
from repro.core.plan import QueryResult
from repro.data.catalog import DataLake
from repro.llm.brain import SimulatedBrain
from repro.llm.interface import LanguageModel, Transcript


class Session:
    """One configured connection to a data lake.

    *lake* is a :class:`~repro.data.catalog.DataLake` or a dataset name
    (``"artwork"`` / ``"rotowire"``, loaded at default seed and scale via
    :func:`repro.datasets.load_lake`).

    *brain* is the :class:`~repro.llm.interface.LanguageModel` behind the
    default prompt-driven planner and mapper (default:
    :class:`~repro.llm.brain.SimulatedBrain`).  For multi-worker batches
    the single instance is shared by all workers and must be thread-safe
    (``SimulatedBrain`` is).  *planner*, *mapper*, and *executor* override
    the corresponding role outright; they too are shared across worker
    engines and must be stateless across calls.

    *plan_cache* / *answer_cache* default to fresh caches of
    *plan_cache_size* / *answer_cache_size*; pass existing instances to
    share warmth between sessions or to start from a cache rehydrated
    with :meth:`~repro.core.batch.PlanCache.load`.
    """

    def __init__(self, lake: DataLake | str,
                 brain: LanguageModel | None = None,
                 config: EngineConfig | None = None,
                 plan_cache: PlanCache | None = None,
                 answer_cache: AnswerCache | None = None,
                 planner: Planner | None = None,
                 mapper: Mapper | None = None,
                 executor: Executor | None = None,
                 plan_cache_size: int = 128,
                 answer_cache_size: int = DEFAULT_ANSWER_CACHE_SIZE):
        if isinstance(lake, str):
            from repro.datasets import load_lake
            lake = load_lake(lake)
        self.lake = lake
        self.config = config or EngineConfig()
        if brain is None and (planner is None or mapper is None):
            brain = SimulatedBrain()
        self.brain = brain
        self.planner = planner
        self.mapper = mapper
        self.executor = executor
        self.plan_cache = (plan_cache if plan_cache is not None
                           else PlanCache(plan_cache_size))
        self.answer_cache = (answer_cache if answer_cache is not None
                             else AnswerCache(answer_cache_size))
        self._engines: list[Engine] = []
        self._pool_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------

    def query(self, query: str) -> QueryResult:
        """Answer one natural-language query with a full trace."""
        return self._pool(1)[0].query(query)

    def batch(self, queries: Sequence[str] | Iterable[str],
              workers: int = 1) -> BatchReport:
        """Drain *queries* through *workers* worker engines.

        ``workers=1`` runs serially; more workers drain the workload
        through a thread pool, all sharing this session's plan and answer
        caches.  Consecutive calls share cache warmth, but each report
        accounts only its own run.
        """
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        return execute_batch(self._pool(workers), queries,
                             self.plan_cache, self.answer_cache)

    def bench(self, workers: Sequence[int] = (1, 2, 4), repeats: int = 3,
              llm_latency_ms: float | None = None,
              output: str | None = None, quiet: bool = True) -> dict:
        """Run the benchmark harness over this session's lake and stack.

        Each worker count gets a fresh child session — same lake, brain,
        config, and planner/mapper/executor overrides, but cold caches —
        and a cold + warm pass (see :mod:`repro.benchmarks.harness`); this
        session's own caches are not touched.  *llm_latency_ms* replaces
        the brain with a :class:`~repro.llm.brain.SimulatedBrain` at that
        simulated latency (``None`` benchmarks the session's own brain).
        Returns the benchmark record (and writes it to *output* when
        given).
        """
        from repro.benchmarks.harness import BenchConfig, run_benchmark
        if llm_latency_ms is None:
            brain = self.brain
        else:
            if self.planner is not None or self.mapper is not None:
                # A planner/mapper override takes precedence over any
                # brain, so the requested latency would never apply — and
                # the benchmark record would lie about it.
                raise ValueError(
                    "llm_latency_ms cannot override a custom planner/"
                    "mapper; pass llm_latency_ms=None to benchmark the "
                    "session's own stack")
            brain = SimulatedBrain(latency_seconds=llm_latency_ms / 1000.0)

        def child_session() -> "Session":
            return Session(self.lake, brain=brain, config=self.config,
                           planner=self.planner, mapper=self.mapper,
                           executor=self.executor)

        config = BenchConfig(dataset=self.lake.name, workers=tuple(workers),
                             repeats=repeats,
                             llm_latency_ms=llm_latency_ms,
                             output=output, quiet=quiet)
        return run_benchmark(config, lake=self.lake,
                             session_factory=child_session)

    # ------------------------------------------------------------------
    # Introspection & persistence
    # ------------------------------------------------------------------

    @property
    def last_transcript(self) -> Transcript:
        """Prompt/response transcript of the most recent :meth:`query`."""
        engines = self._pool(1)
        return engines[0].last_transcript

    def save_plan_cache(self, path: str | Path) -> int:
        """Persist the plan cache; returns the number of entries written."""
        return self.plan_cache.save(path)

    def load_plan_cache(self, path: str | Path,
                        capacity: int | None = None) -> int:
        """Replace the plan cache with one rehydrated from *path*.

        *capacity* overrides the capacity persisted in the file.  Returns
        the number of plans loaded.  Cached plans are only served for
        matching ``(query, lake fingerprint)`` keys, so loading a file
        saved against a different lake is safe — it just never hits.
        """
        cache = PlanCache.load(path, capacity=capacity)
        with self._pool_lock:
            self.plan_cache = cache
            for engine in self._engines:
                engine.plan_cache = cache
        return len(cache)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _pool(self, workers: int) -> list[Engine]:
        """The first *workers* engines, growing the pool as needed.

        Engines are created lazily and reused across calls (they carry
        per-query mutable state, so each in-flight query needs its own),
        all sharing the session's brain, caches, and role overrides.
        """
        with self._pool_lock:
            while len(self._engines) < workers:
                self._engines.append(Engine(
                    self.lake, model=self.brain, config=self.config,
                    planner=self.planner, mapper=self.mapper,
                    executor=self.executor, plan_cache=self.plan_cache,
                    answer_cache=self.answer_cache))
            return self._engines[:workers]

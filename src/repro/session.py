"""The public entry point: one :class:`Session` owns lake + configuration.

A :class:`Session` packages everything needed to answer natural-language
queries over one :class:`~repro.data.catalog.DataLake` — the planner brain,
the engine configuration, and the two caches — behind three methods:

- :meth:`Session.query` answers one query;
- :meth:`Session.batch` drains a workload through an execution backend
  (serial, thread pool, or GIL-free process lanes — :mod:`repro.exec`)
  and returns a :class:`~repro.core.batch.BatchReport`;
- :meth:`Session.bench` runs the benchmark harness over this session's
  lake.

The CLI, the benchmark harness, and the test suite all drive the system
through this facade.  Both caches are shared by every query and batch of
the session, so repeated workloads run warm; plans survive across runs via
:meth:`save_plan_cache` / :meth:`load_plan_cache` (the serializable plan
IR makes the cache file portable).

Underneath, a session composes :class:`~repro.core.engine.Engine` instances
from pluggable :class:`~repro.core.interfaces.Planner` /
:class:`~repro.core.interfaces.Mapper` / :class:`~repro.core.interfaces.
Executor` parts; pass any of the three to swap a role (e.g. an executor
over a custom operator registry) while keeping the rest of the stack.

Example::

    from repro import Session

    session = Session("rotowire")
    result = session.query("How many players are taller than 200?")
    report = session.batch(["...", "..."], workers=4)
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Iterable, Sequence

from repro.core.answer_cache import AnswerCache
from repro.core.batch import (DEFAULT_ANSWER_CACHE_SIZE, BatchReport,
                              PlanCache)
from repro.core.engine import Engine, EngineConfig
from repro.core.interfaces import Executor, Mapper, Planner
from repro.core.plan import QueryResult
from repro.data.catalog import DataLake
from repro.data.datatypes import encode_scalar
from repro.llm.brain import SimulatedBrain
from repro.llm.interface import LanguageModel, Transcript
from repro.obs import MetricsRegistry, TelemetryConfig


class Session:
    """One configured connection to a data lake.

    *lake* is a :class:`~repro.data.catalog.DataLake` or a dataset name
    (``"artwork"`` / ``"rotowire"``, loaded at default seed and scale via
    :func:`repro.datasets.load_lake`).

    *brain* is the :class:`~repro.llm.interface.LanguageModel` behind the
    default prompt-driven planner and mapper (default:
    :class:`~repro.llm.brain.SimulatedBrain`).  For multi-worker batches
    the single instance is shared by all workers and must be thread-safe
    (``SimulatedBrain`` is).  *planner*, *mapper*, and *executor* override
    the corresponding role outright; they too are shared across worker
    engines and must be stateless across calls.

    *plan_cache* / *answer_cache* default to fresh caches of
    *plan_cache_size* / *answer_cache_size*; pass existing instances to
    share warmth between sessions or to start from a cache rehydrated
    with :meth:`~repro.core.batch.PlanCache.load`.

    *telemetry* is a :class:`~repro.obs.TelemetryConfig` controlling span
    collection and cost accounting (default: enabled, cost model resolved
    from the brain).  Session-lifetime counters and latency histograms
    accumulate in :attr:`metrics_registry` regardless; :meth:`metrics`
    returns their deterministic snapshot.

    *cache_url* points the session at a shared cache tier
    (:mod:`repro.cachenet` — ``tcp://host:port`` or ``unix:///path``,
    served by ``repro cache-server``): the default caches become
    :class:`~repro.cachenet.RemotePlanCache` /
    :class:`~repro.cachenet.RemoteAnswerCache` — local LRU fronts over
    the tier — so this session warms from, and contributes to, the
    fleet-wide warm set.  A server that is down degrades the session to
    local-only operation (counted in ``cachenet_fallbacks``, never
    failing a query); a protocol-version mismatch raises
    :class:`~repro.cachenet.CacheProtocolError` here, at construction.
    Explicit *plan_cache* / *answer_cache* instances win over
    *cache_url*.
    """

    def __init__(self, lake: DataLake | str,
                 brain: LanguageModel | None = None,
                 config: EngineConfig | None = None,
                 plan_cache: PlanCache | None = None,
                 answer_cache: AnswerCache | None = None,
                 planner: Planner | None = None,
                 mapper: Mapper | None = None,
                 executor: Executor | None = None,
                 plan_cache_size: int = 128,
                 answer_cache_size: int = DEFAULT_ANSWER_CACHE_SIZE,
                 telemetry: TelemetryConfig | None = None,
                 cache_url: str | None = None):
        if isinstance(lake, str):
            from repro.datasets import load_lake
            lake = load_lake(lake)
        self.lake = lake
        self.config = config or EngineConfig()
        if brain is None and (planner is None or mapper is None):
            brain = SimulatedBrain()
        self.brain = brain
        self.planner = planner
        self.mapper = mapper
        self.executor = executor
        self.telemetry = telemetry or TelemetryConfig()
        #: session-lifetime :class:`~repro.obs.MetricsRegistry`; every
        #: engine (and, via shipped deltas, every process-backend worker
        #: lane) records into it.
        self.metrics_registry = MetricsRegistry()
        self.cache_url = cache_url
        self._cache_client = (self._connect_cache_tier(cache_url)
                              if cache_url is not None else None)
        if plan_cache is not None:
            self.plan_cache = plan_cache
        elif self._cache_client is not None:
            from repro.cachenet import RemotePlanCache
            self.plan_cache = RemotePlanCache(
                self._cache_client, plan_cache_size,
                metrics=self.metrics_registry)
        else:
            self.plan_cache = PlanCache(plan_cache_size)
        if answer_cache is not None:
            self.answer_cache = answer_cache
        elif self._cache_client is not None:
            from repro.cachenet import RemoteAnswerCache
            self.answer_cache = RemoteAnswerCache(
                self._cache_client, answer_cache_size,
                metrics=self.metrics_registry)
        else:
            self.answer_cache = AnswerCache(answer_cache_size)
        self._engines: list[Engine] = []
        self._pool_lock = threading.Lock()
        self._backends: dict[str, object] = {}

    def _connect_cache_tier(self, cache_url: str):
        """Build the tier client and probe it once.

        A down server is counted and tolerated (the client keeps trying
        with a cooldown, so a tier that comes up later still gets used);
        a protocol mismatch raises immediately — that is a deployment
        error, not a transient.
        """
        from repro.cachenet import CacheClient, CacheUnavailable
        client = CacheClient(cache_url, metrics=self.metrics_registry)
        try:
            client.ensure_connected()
        except CacheUnavailable:
            self.metrics_registry.increment("cachenet_fallbacks")
        return client

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------

    def query(self, query: str,
              trace_context=None) -> QueryResult:
        """Answer one natural-language query with a full trace.

        *trace_context* is an optional :class:`~repro.obs.TraceContext`
        the query should run under (distributed tracing: a caller that
        already owns a trace — the serve layer — passes its context so
        this query's spans join it); ``None`` mints a fresh trace.
        """
        engine = self._pool(1)[0]
        engine.trace_context = trace_context
        try:
            return engine.query(query)
        finally:
            engine.trace_context = None

    def batch(self, queries: Sequence[str] | Iterable[str],
              workers: int = 1, backend: object | None = None) -> BatchReport:
        """Drain *queries* through an execution backend.

        *backend* selects the strategy (:mod:`repro.exec`): a registered
        name (``"serial"`` / ``"thread"`` / ``"process"``), an
        :class:`~repro.exec.ExecutionBackend` instance (the caller owns
        its lifecycle), or ``None`` for the default — serial at
        ``workers=1``, the thread pool above that.  All backends produce
        identical results for the same workload; they differ in where
        the worker engines live and therefore in throughput.

        Named backends are instantiated once per session and kept (a
        process backend's worker lanes stay warm across consecutive
        batches); :meth:`close` shuts them down.  Consecutive calls share
        cache warmth, but each report accounts only its own run.
        """
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        from repro.exec import ExecutionBackend
        if backend is None:
            backend = self._backend("serial" if workers == 1 else "thread")
        elif isinstance(backend, str):
            backend = self._backend(backend)
        elif not isinstance(backend, ExecutionBackend):
            raise TypeError(
                f"backend must be a registered name or an ExecutionBackend, "
                f"got {type(backend).__name__}")
        return backend.run(self, queries, workers)

    def bench(self, workers: Sequence[int] = (1, 2, 4), repeats: int = 3,
              backends: Sequence[str] = ("thread",),
              llm_latency_ms: float | None = None,
              output: str | None = None, quiet: bool = True) -> dict:
        """Run the benchmark harness over this session's lake and stack.

        Each ``(backend, workers)`` point gets a fresh child session —
        same lake, brain, config, and planner/mapper/executor overrides,
        but cold caches and a cold worker pool —
        and a cold + warm pass (see :mod:`repro.benchmarks.harness`); this
        session's own caches are not touched.  *llm_latency_ms* replaces
        the brain with a :class:`~repro.llm.brain.SimulatedBrain` at that
        simulated latency (``None`` benchmarks the session's own brain).
        Returns the benchmark record (and writes it to *output* when
        given).
        """
        from repro.benchmarks.harness import BenchConfig, run_benchmark
        if llm_latency_ms is None:
            brain = self.brain
        else:
            if self.planner is not None or self.mapper is not None:
                # A planner/mapper override takes precedence over any
                # brain, so the requested latency would never apply — and
                # the benchmark record would lie about it.
                raise ValueError(
                    "llm_latency_ms cannot override a custom planner/"
                    "mapper; pass llm_latency_ms=None to benchmark the "
                    "session's own stack")
            brain = SimulatedBrain(latency_seconds=llm_latency_ms / 1000.0)

        def child_session() -> "Session":
            return Session(self.lake, brain=brain, config=self.config,
                           planner=self.planner, mapper=self.mapper,
                           executor=self.executor,
                           telemetry=self.telemetry)

        config = BenchConfig(dataset=self.lake.name, workers=tuple(workers),
                             backends=tuple(backends),
                             repeats=repeats,
                             llm_latency_ms=llm_latency_ms,
                             output=output, quiet=quiet)
        return run_benchmark(config, lake=self.lake,
                             session_factory=child_session)

    # ------------------------------------------------------------------
    # Introspection & persistence
    # ------------------------------------------------------------------

    @property
    def last_transcript(self) -> Transcript:
        """Prompt/response transcript of the most recent :meth:`query`."""
        engines = self._pool(1)
        return engines[0].last_transcript

    def metrics(self) -> dict:
        """Deterministic snapshot of the session metrics registry.

        Counters (queries, cache locality, token/cost totals, worker
        failures, replans), per-phase latency histograms, and derived
        rates — see :meth:`repro.obs.MetricsRegistry.snapshot`.
        """
        return self.metrics_registry.snapshot()

    #: Socket-timeout budget (seconds) for one STATS round trip inside a
    #: metrics scrape; combined with ``retries=0`` it bounds how long a
    #: hung tier can delay :meth:`observability_snapshot`.
    CACHENET_STATS_TIMEOUT = 0.25

    def cachenet_stats(self, timeout: float | None = None) -> dict | None:
        """The shared cache tier's own STATS snapshot, or ``None``.

        ``None`` when the session has no *cache_url* or the tier is
        currently unreachable (degraded mode never raises here).
        *timeout* bounds the single attempt (socket timeout in seconds,
        no retries); ``None`` uses the client's default budget.
        """
        if self._cache_client is None:
            return None
        from repro.cachenet import CacheUnavailable
        try:
            if timeout is not None:
                return self._cache_client.stats(timeout=timeout, retries=0)
            return self._cache_client.stats()
        except CacheUnavailable:
            return None

    def observability_snapshot(self) -> dict:
        """The :meth:`metrics` snapshot plus the cache tier's STATS.

        The one record the service's ``GET /metrics`` endpoint and
        ``repro batch --metrics-file`` emit (rendered with
        :func:`repro.obs.render_snapshot`): session counters, latency
        histograms, derived rates, and — when a tier is connected — its
        server-side view under ``"cachenet_server"``, so tier hit ratios
        read straight off the same document.

        The STATS round trip runs under a small fixed budget
        (:data:`CACHENET_STATS_TIMEOUT`, single attempt), so a hung or
        wedged cache server degrades the snapshot to session-only data
        instead of stalling a ``/metrics`` scrape.
        """
        snapshot = self.metrics_registry.snapshot()
        stats = self.cachenet_stats(timeout=self.CACHENET_STATS_TIMEOUT)
        if stats is not None:
            snapshot["cachenet_server"] = stats
        return snapshot

    def save_plan_cache(self, path: str | Path) -> int:
        """Persist the plan cache; returns the number of entries written."""
        return self.plan_cache.save(path)

    def save_answer_cache(self, path: str | Path) -> int:
        """Persist the answer cache; returns the number of entries written.

        Together with :meth:`save_plan_cache` this makes a restart fully
        warm: plans *and* modality-model answers survive on disk
        (``--plan-cache-file`` / ``--answer-cache-file`` in the CLI).
        """
        return self.answer_cache.save(path)

    def load_answer_cache(self, path: str | Path,
                          capacity: int | None = None) -> int:
        """Replace the answer cache with one rehydrated from *path*.

        *capacity* overrides the capacity persisted in the file.  Returns
        the number of answers loaded.  Keys are content fingerprints, so
        loading a file saved against different objects is safe — it just
        never hits.

        With a *cache_url*, the loaded entries land in a fresh
        :class:`~repro.cachenet.RemoteAnswerCache` and are published to
        the tier (best-effort), so a file-warmed session also warms the
        fleet.
        """
        cache = AnswerCache.load(path, capacity=capacity)
        if self._cache_client is not None:
            from repro.cachenet import RemoteAnswerCache
            remote = RemoteAnswerCache(self._cache_client, cache.capacity,
                                       metrics=self.metrics_registry)
            entries = cache.items()
            for key, answer in entries:
                remote._local_put(key, answer)
            self._publish("answer", [
                {"key": list(key), "value": encode_scalar(answer)}
                for key, answer in entries])
            cache = remote
        with self._pool_lock:
            self.answer_cache = cache
            for engine in self._engines:
                engine.answer_cache = cache
        return len(cache)

    def load_plan_cache(self, path: str | Path,
                        capacity: int | None = None) -> int:
        """Replace the plan cache with one rehydrated from *path*.

        *capacity* overrides the capacity persisted in the file.  Returns
        the number of plans loaded.  Cached plans are only served for
        matching ``(query, lake fingerprint)`` keys, so loading a file
        saved against a different lake is safe — it just never hits.

        With a *cache_url*, the loaded plans land in a fresh
        :class:`~repro.cachenet.RemotePlanCache` and are published to
        the tier (best-effort), so a file-warmed session also warms the
        fleet.
        """
        cache = PlanCache.load(path, capacity=capacity)
        if self._cache_client is not None:
            from repro.cachenet import RemotePlanCache
            remote = RemotePlanCache(self._cache_client, cache.capacity,
                                     metrics=self.metrics_registry)
            entries = cache.items()
            for key, plan in entries:
                remote._local_put(key, plan)
            self._publish("plan", [
                {"key": query, "ns": fingerprint, "value": plan.to_dict()}
                for (query, fingerprint), plan in entries])
            cache = remote
        with self._pool_lock:
            self.plan_cache = cache
            for engine in self._engines:
                engine.plan_cache = cache
        return len(cache)

    #: Upper bound on one published ``mput`` batch, well under the
    #: protocol's 32 MiB frame limit — a fully-loaded 65536-entry answer
    #: cache publishes as several frames instead of one oversized one.
    PUBLISH_BATCH_BYTES = 4 * 1024 * 1024

    def _publish(self, space: str, entries: list[dict]) -> None:
        """Best-effort bulk upload of loaded cache entries to the tier.

        Batched by serialized size so an arbitrarily large warm file
        never produces a frame over the protocol limit; one unreachable
        batch aborts the rest (the tier is down, not the data).
        """
        if not entries or self._cache_client is None:
            return
        import json

        from repro.cachenet import CacheUnavailable
        batch: list[dict] = []
        batch_bytes = 0
        try:
            for entry in entries:
                entry_bytes = len(json.dumps(entry, separators=(",", ":")))
                if batch and batch_bytes + entry_bytes > \
                        self.PUBLISH_BATCH_BYTES:
                    self._cache_client.mput(space, batch)
                    batch, batch_bytes = [], 0
                batch.append(entry)
                batch_bytes += entry_bytes
            if batch:
                self._cache_client.mput(space, batch)
        except CacheUnavailable:
            self.metrics_registry.increment("cachenet_fallbacks")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Shut down backend resources (e.g. process-backend worker lanes).

        Idempotent; the session itself stays usable (a later batch simply
        recreates what it needs).  The cache-tier client, when any, is
        closed for good — further cache traffic degrades to local-only
        mode.  Use the session as a context manager to get this
        automatically.
        """
        with self._pool_lock:
            backends = list(self._backends.values())
            self._backends.clear()
        for backend in backends:
            backend.close()
        if self._cache_client is not None:
            self._cache_client.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def engine_pool(self, workers: int) -> list[Engine]:
        """The first *workers* engines (grown on demand) — backend hook.

        Execution backends that run engines in this process (serial,
        thread) draw them from here so engine reuse, shared caches, and
        role overrides stay consistent with :meth:`query`.
        """
        return self._pool(workers)

    def _backend(self, name: str):
        from repro.exec import create_backend
        with self._pool_lock:
            if name not in self._backends:
                self._backends[name] = create_backend(name)
            return self._backends[name]

    def make_engine(self) -> Engine:
        """A fresh engine wired to this session's full stack.

        Same lake, brain, configuration, role overrides, caches, and
        metrics registry as the pooled engines — but owned by the
        caller, not the pool.  The query service's worker lanes
        (:class:`repro.serve.jobs.JobManager`) build their engines here
        so a lane can discard a wedged engine (per-job timeout) and
        replace it without disturbing the shared pool.
        """
        return Engine(
            self.lake, model=self.brain, config=self.config,
            planner=self.planner, mapper=self.mapper,
            executor=self.executor, plan_cache=self.plan_cache,
            answer_cache=self.answer_cache,
            metrics=self.metrics_registry,
            telemetry=self.telemetry)

    def _pool(self, workers: int) -> list[Engine]:
        """The first *workers* engines, growing the pool as needed.

        Engines are created lazily and reused across calls (they carry
        per-query mutable state, so each in-flight query needs its own),
        all sharing the session's brain, caches, and role overrides.
        """
        with self._pool_lock:
            while len(self._engines) < workers:
                self._engines.append(self.make_engine())
            return self._engines[:workers]

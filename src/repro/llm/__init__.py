"""The (simulated) language model: chat interface, NL parser, plan brain.

Import submodules explicitly (``repro.llm.brain``, ``repro.llm.nl``) —
``repro.llm.interface`` stays import-light for protocol consumers.
"""

"""Chat-message interface between CAESURA and the (simulated) LLM.

CAESURA talks to the model exclusively through rendered chat prompts — the
same contract as a remote GPT-4 endpoint.  Any object implementing
:class:`LanguageModel` can be plugged in.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable


class Role(enum.Enum):
    SYSTEM = "system"
    HUMAN = "human"
    AI = "ai"


@dataclass(frozen=True)
class ChatMessage:
    """One message of a chat prompt."""

    role: Role
    content: str

    def render(self) -> str:
        return f"{self.role.value.capitalize()}: {self.content}"


def system(content: str) -> ChatMessage:
    return ChatMessage(Role.SYSTEM, content)


def human(content: str) -> ChatMessage:
    return ChatMessage(Role.HUMAN, content)


def ai(content: str) -> ChatMessage:
    return ChatMessage(Role.AI, content)


@runtime_checkable
class LanguageModel(Protocol):
    """The minimal LLM contract CAESURA depends on.

    Cost hook: a model *may* additionally expose a ``cost_model``
    attribute (a :class:`~repro.obs.CostModel`) describing its token
    estimation and pricing; the engine picks it up via
    :func:`~repro.obs.resolve_cost_model`, so a simulated brain and a
    real remote model both report tokens and dollars per plan.  It is
    deliberately not part of the Protocol: the Protocol is
    ``runtime_checkable``, and widening it would break ``isinstance``
    checks against existing third-party models — absent hooks fall back
    to :data:`~repro.obs.DEFAULT_COST_MODEL`.
    """

    name: str

    def complete(self, messages: list[ChatMessage]) -> str:
        """Return the model's reply to the rendered chat prompt."""
        ...


@dataclass
class TranscriptEntry:
    """One prompt/response exchange, kept for inspection and tests."""

    label: str
    messages: list[ChatMessage]
    response: str


@dataclass
class Transcript:
    """Ordered record of every LLM call made while answering a query."""

    entries: list[TranscriptEntry] = field(default_factory=list)

    def record(self, label: str, messages: list[ChatMessage],
               response: str) -> None:
        self.entries.append(TranscriptEntry(label, list(messages), response))

    def __len__(self) -> int:
        return len(self.entries)

    def labels(self) -> list[str]:
        return [entry.label for entry in self.entries]

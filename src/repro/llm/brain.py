"""The plan synthesizer: the "brain" of the simulated LLM.

This module closes the loop promised by :mod:`repro.llm.nl`: it turns parsed
:class:`~repro.llm.nl.QueryIntent` objects into :class:`LogicalPlan`s written
in the canonical step phrasing of the few-shot examples (Planning Phase), and
it binds those step descriptions to physical operators with concrete
arguments (Mapping Phase).

Join planning walks the schema's foreign-key graph (cross-column keys
like ``players.team = teams.name`` included) breadth-first from the
tables the intent needs, anchored on the query's subject; multi-measure
aggregates compile into one step with one output column per measure; and
typed date-range filters render ``DATE '...'`` literals with the bounds
riding the step's structured ``params``.

:class:`SimulatedBrain` packages both behind the
:class:`~repro.llm.interface.LanguageModel` protocol: it reads rendered chat
prompts — the only channel between CAESURA and the model — recognises which
phase is being asked for via the prompt markers, and answers in the output
format that :mod:`repro.core.parsing` expects.  CAESURA itself never calls
the synthesizer directly.
"""

from __future__ import annotations

import re
import time
from collections import deque
from datetime import date

from repro.core.parsing import (MappingDecision, PromptTable,
                                parse_prompt_tables, parse_request)
from repro.relational.ops import join_renames
from repro.core.plan import LogicalPlan, LogicalStep
from repro.core.prompts import (DISCOVERY_MARKER, ERROR_MARKER,
                                MAPPING_MARKER, PLANNING_MARKER)
from repro.errors import LLMError
from repro.llm.interface import ChatMessage
from repro.obs.cost import DEFAULT_COST_MODEL
from repro.llm.nl import (DepictsFilter, QueryIntent, RelationalFilter,
                          parse_query)

# ----------------------------------------------------------------------
# Schema helpers
# ----------------------------------------------------------------------


def _locate(tables: dict[str, PromptTable],
            column: str) -> tuple[str, str] | None:
    for table in tables.values():
        if column in table.column_names:
            return table.name, column
    return None


def _table_with_dtype(tables: dict[str, PromptTable],
                      dtype: str) -> PromptTable | None:
    for table in tables.values():
        for _name, column_dtype in table.columns:
            if column_dtype == dtype:
                return table
    return None


def _column_with_dtype(table: PromptTable, dtype: str) -> str | None:
    for name, column_dtype in table.columns:
        if column_dtype == dtype:
            return name
    return None


def _anchored(intent: QueryIntent, tables: dict[str, PromptTable],
              table: str | None, column: str) -> tuple[str, str] | None:
    """Re-anchor a naively-located column to the query's subject table.

    ``resolve_noun`` returns the *first* table containing a column name, so
    "the names of players" resolves to ``teams.name`` in a rotowire schema.
    When the subject table also has the column, prefer it.
    """
    subject = intent.subject_table
    if subject and subject in tables and column in tables[subject].column_names:
        return subject, column
    if table and table in tables and column in tables[table].column_names:
        return table, column
    return _locate(tables, column)


def _plural(noun: str) -> str:
    return noun if noun.endswith("s") else noun + "s"


# ----------------------------------------------------------------------
# Join-path search over the foreign-key graph
# ----------------------------------------------------------------------


def _adjacency(tables: dict[str, PromptTable],
               ) -> dict[str, list[tuple[str, str, str]]]:
    """table → [(joinable table, own key column, other side's key column)].

    Edges come from the schema's declared foreign keys — including
    cross-column keys like ``players.team = teams.name`` — with a
    same-name fallback for table pairs that declare no key but share
    exactly one column name.  Declared keys win: the fallback never adds
    an edge between tables a foreign key already connects (the shared
    ``name`` column of ``players`` and ``teams`` is *not* a join key).
    """
    adjacency: dict[str, list[tuple[str, str, str]]] = {n: [] for n in tables}

    def connect(left: str, right: str, left_col: str, right_col: str) -> None:
        if (right, left_col, right_col) not in adjacency[left]:
            adjacency[left].append((right, left_col, right_col))
        if (left, right_col, left_col) not in adjacency[right]:
            adjacency[right].append((left, right_col, left_col))

    for table in tables.values():
        for column, other_table, other_column in table.foreign_keys:
            if other_table in tables:
                connect(table.name, other_table, column, other_column)
    # Fallback: tables sharing exactly one column name are joinable even
    # without a declared foreign key.
    names = list(tables)
    for i, left in enumerate(names):
        for right in names[i + 1:]:
            if any(other == right for other, _l, _r in adjacency[left]):
                continue  # a declared foreign key already connects them
            shared = (set(tables[left].column_names)
                      & set(tables[right].column_names))
            if len(shared) == 1:
                column = shared.pop()
                connect(left, right, column, column)
    return adjacency


def _shortest_path(adjacency: dict[str, list[tuple[str, str, str]]],
                   sources: list[str], target: str,
                   ) -> list[tuple[str, str, str, str]] | None:
    """BFS path from any of *sources* to *target*.

    Returns ``[(parent table, table, parent's key column, table's key
    column)]`` — one entry per table to join in.  The parent table is
    needed because the key column must later be resolved to its
    *current* name in the accumulated join result (an earlier join may
    have ``_right``-renamed it).  *sources* is an ordered list: ties
    between equal-length paths break toward the earliest source, so a
    path anchored on the query's subject table ("players" →
    ``players_to_games`` → ``game_reports``) beats an equally short path
    through a table that merely rode along ("teams" →
    ``teams_to_games`` → ...).  Set iteration order would make that
    choice hash-seed dependent.
    """
    previous: dict[str, tuple[str, str, str] | None] = {
        s: None for s in sources}
    queue = deque(sources)
    while queue:
        node = queue.popleft()
        if node == target:
            break
        for other, near_col, far_col in adjacency.get(node, ()):
            if other not in previous:
                previous[other] = (node, near_col, far_col)
                queue.append(other)
    if target not in previous:
        return None
    path: list[tuple[str, str, str, str]] = []
    node = target
    while previous[node] is not None:
        parent, near_col, far_col = previous[node]  # type: ignore[misc]
        path.append((parent, node, near_col, far_col))
        node = parent
    return list(reversed(path))


# ----------------------------------------------------------------------
# Logical-plan synthesis (Planning Phase)
# ----------------------------------------------------------------------


class _Builder:
    """Accumulates logical steps with unique output-table names."""

    def __init__(self) -> None:
        self.steps: list[LogicalStep] = []
        self._names: dict[str, int] = {}

    def name(self, base: str) -> str:
        count = self._names.get(base, 0) + 1
        self._names[base] = count
        return base if count == 1 else f"{base}_{count}"

    def add(self, description: str, inputs: list[str], output: str,
            new_columns: list[str] | None = None,
            params: dict | None = None) -> str:
        self.steps.append(LogicalStep(
            index=len(self.steps) + 1, description=description,
            inputs=list(inputs), output=output,
            new_columns=list(new_columns or []),
            params=dict(params or {})))
        return output


_OP_PHRASES = {"=": "equals", "!=": "does not equal",
               ">": "is greater than", ">=": "is at least",
               "<": "is less than", "<=": "is at most",
               "contains": "contains"}


def _render_value(value: object) -> str:
    if isinstance(value, bool):
        return f"'{str(value).lower()}'"
    if isinstance(value, date):
        return f"DATE '{value.isoformat()}'"
    if isinstance(value, (int, float)):
        return repr(value)
    return "'" + str(value).replace("'", "''") + "'"


def _emit_select(builder: _Builder, current: str, column: str, op: str,
                 value: object) -> str:
    """Emit a row-selection step.

    ``op == "between"`` takes a ``(low, high)`` bound pair — dates render
    as typed ``DATE '...'`` literals, and the bounds ride the step's
    params as tagged date scalars.
    """
    params: dict = {"column": column, "op": op}
    if op == "between":
        low, high = value  # type: ignore[misc]
        condition = (f"is between {_render_value(low)} "
                     f"and {_render_value(high)}")
        params.update(low=low, high=high)
    else:
        condition = f"{_OP_PHRASES[op]} {_render_value(value)}"
        params["value"] = value
    output = builder.name("selected_table")
    builder.add(
        f"Select only the rows of the '{current}' table where the "
        f"'{column}' column {condition}.", [current], output, params=params)
    return output


def _needed_tables(intent: QueryIntent,
                   tables: dict[str, PromptTable]) -> list[str]:
    """Base tables the plan must join, subject table first when it anchors.

    Row-counting and text-extraction measures are *about* the query's
    subject ("how many players play for teams in ...", "points scored by
    players on teams founded ..."), so an explicitly named subject table
    leads — it becomes the join base and the rows that get counted or
    fed to the extraction operator.
    """
    needed: list[str] = []

    def note(name: str | None) -> None:
        if name and name in tables and name not in needed:
            needed.append(name)

    if intent.subject_explicit and any(
            m.kind in ("count_rows", "text_stat") for m in intent.measures):
        note(intent.subject_table)
    group = intent.group_by
    if group:
        note(group.table)
    for measure in intent.measures:
        note(measure.table)
    for item in intent.filters:
        if isinstance(item, RelationalFilter):
            note(item.table)
    for table, _column in _anchored_select_columns(intent, tables):
        note(table)
    if intent.superlative:
        note(intent.subject_table)
        _agg, by_column, target = intent.superlative
        for column in (by_column, target):
            located = _anchored(intent, tables, None, column)
            if located:
                note(located[0])
    if intent.needs_images:
        image_table = _table_with_dtype(tables, "IMAGE")
        if image_table is None:
            raise LLMError("the query needs images but no IMAGE column "
                           "exists in the schema")
        note(image_table.name)
        adjacency = _adjacency(tables)
        for other, _near_col, _far_col in adjacency[image_table.name]:
            note(other)
    if intent.needs_text:
        text_table = _table_with_dtype(tables, "TEXT")
        if text_table is None:
            raise LLMError("the query needs text documents but no TEXT "
                           "column exists in the schema")
        note(text_table.name)
    if not needed:
        note(intent.subject_table)
    if not needed and tables:
        needed.append(next(iter(tables)))
    return needed


def _anchored_select_columns(intent: QueryIntent,
                             tables: dict[str, PromptTable],
                             ) -> list[tuple[str, str]]:
    anchored: list[tuple[str, str]] = []
    for table, column in intent.select_columns:
        located = _anchored(intent, tables, table, column)
        if located and located not in anchored:
            anchored.append(located)
    return anchored


def _emit_joins(builder: _Builder, needed: list[str],
                tables: dict[str, PromptTable]) -> tuple[str, set[str]]:
    """Join every table in *needed* into one current table.

    Same-name keys emit the classic "on the 'x' column" step (mapped to
    SQL ``JOIN ... USING``); cross-column keys ("players.team =
    teams.name") emit the two-column phrasing mapped to the Join
    operator.  Right-side name clashes follow
    :func:`repro.relational.ops.join_renames`, and the returned column
    set reflects them.
    """
    base = needed[0]
    current = base
    columns = set(tables[base].column_names)
    if len(needed) == 1:
        return current, columns
    adjacency = _adjacency(tables)
    included = [base]                      # ordered: subject/base first
    join_sequence: list[tuple[str, str, str, str]] = []
    for target in needed[1:]:
        if target in included:
            continue
        path = _shortest_path(adjacency, included, target)
        if path is None:
            raise LLMError(
                f"cannot find a join path from {sorted(included)} to "
                f"{target!r}")
        for parent, table, near_col, far_col in path:
            if table not in included:
                join_sequence.append((parent, table, near_col, far_col))
                included.append(table)
    #: (base table, base column) → the column's current name in the
    #: accumulated join result; cross joins ``_right``-rename clashes,
    #: and a later hop out of the renamed side must join on the renamed
    #: column, not the original.
    current_name: dict[tuple[str, str], str] = {
        (base, name): name for name in tables[base].column_names}
    for parent, table, near_col, far_col in join_sequence:
        output = builder.name("joined_table")
        near = current_name.get((parent, near_col), near_col)
        params = {"left": current, "right": table,
                  "left_on": near, "right_on": far_col}
        right_columns = list(tables[table].column_names)
        if near == far_col:
            # SQL ``JOIN ... USING`` merges the key and keeps duplicate
            # names as-is, exactly like before.
            builder.add(
                f"Join the '{current}' and '{table}' tables on the "
                f"'{near}' column.", [current, table], output,
                params=params)
            columns |= set(right_columns)
            for name in right_columns:
                current_name[(table, name)] = name
        else:
            builder.add(
                f"Join the '{current}' and '{table}' tables on the "
                f"'{near}' and '{far_col}' columns.", [current, table],
                output, params=params)
            renames = join_renames(sorted(columns), right_columns,
                                   near, far_col)
            columns |= {renames.get(name, name) for name in right_columns}
            for name in right_columns:
                current_name[(table, name)] = renames.get(name, name)
        current = output
    return current, columns


def _entity_column(intent: QueryIntent, columns: set[str]) -> str:
    group = intent.group_by
    if group and group.column and group.column in columns:
        return group.column
    if "name" in columns:
        return "name"
    raise LLMError("cannot determine the entity column for text extraction")


def synthesize_plan(intent: QueryIntent,
                    tables: dict[str, PromptTable]) -> LogicalPlan:
    """Turn a :class:`QueryIntent` into a :class:`LogicalPlan`.

    The emitted step descriptions follow the canonical templates of the
    few-shot examples, which is exactly the language :func:`map_step`
    understands — the same closed loop a consistent LLM would exhibit.
    """
    if not tables:
        raise LLMError("no tables in scope; cannot plan")
    builder = _Builder()
    needed = _needed_tables(intent, tables)
    current, columns = _emit_joins(builder, needed, tables)

    # Relational filters over existing columns.
    derived_filters: list[RelationalFilter] = []
    for item in intent.filters:
        if not isinstance(item, RelationalFilter):
            continue
        if item.derive:
            derived_filters.append(item)
            continue
        if item.column not in columns:
            raise LLMError(
                f"filter column {item.column!r} is not available after "
                f"joining {needed}")
        current = _emit_select(builder, current, item.column, item.op,
                               item.value)

    # Derived columns (century / decade / year) needed anywhere downstream.
    group = intent.group_by
    measure = intent.measure
    derivations: list[tuple[str, str]] = []

    def need_derivation(derive: str | None, source: str | None) -> None:
        if derive and source and (derive, source) not in derivations:
            derivations.append((derive, source))

    if group:
        need_derivation(group.derive, group.source_column)
    for item in derived_filters:
        need_derivation(item.derive, item.source_column)
    for item in intent.measures:
        need_derivation(item.derive, item.source_column)
    for derive, source in derivations:
        if source not in columns:
            raise LLMError(f"cannot derive {derive!r}: source column "
                           f"{source!r} is not available")
        output = builder.name("derived_table")
        builder.add(
            f"Compute the {derive} from the '{source}' column of the "
            f"'{current}' table into the '{derive}' column.",
            [current], output, [derive])
        columns.add(derive)
        current = output
    for item in derived_filters:
        current = _emit_select(builder, current, item.derive, item.op,
                               item.value)

    # Multi-modal predicates: VQA yes/no column + select.
    image_table = _table_with_dtype(tables, "IMAGE")
    image_column = (_column_with_dtype(image_table, "IMAGE")
                    if image_table else None)
    for item in intent.filters:
        if not isinstance(item, DepictsFilter):
            continue
        if image_column is None or image_column not in columns:
            raise LLMError("a depicts-filter needs an IMAGE column in scope")
        for category in item.categories:
            new_column = f"{category}_depicted"
            output = builder.name("extracted_table")
            builder.add(
                f"Extract whether {category} is depicted in the "
                f"'{image_column}' column of the '{current}' table into "
                f"the '{new_column}' column.",
                [current], output, [new_column])
            columns.add(new_column)
            current = output
            current = _emit_select(builder, current, new_column, "=", "yes")

    # Multi-measure aggregates ("the min, max and avg of 'year'") compile
    # into ONE aggregation step with one output column per measure; a
    # single measure falls through to the classic single-measure steps.
    multi_specs = _multi_measure_specs(intent, tables, columns)

    # Measure extraction from modalities.
    text_table = _table_with_dtype(tables, "TEXT")
    text_column = (_column_with_dtype(text_table, "TEXT")
                   if text_table else None)
    measure_column: str | None = None
    if measure is not None:
        if measure.kind == "vqa_count":
            if image_column is None or image_column not in columns:
                raise LLMError("counting depicted objects needs an IMAGE "
                               "column in scope")
            measure_column = f"num_{measure.category}"
            output = builder.name("extracted_table")
            builder.add(
                f"Extract the number of {_plural(measure.category)} "
                f"depicted in the '{image_column}' column of the "
                f"'{current}' table into the '{measure_column}' column.",
                [current], output, [measure_column])
            columns.add(measure_column)
            current = output
        elif measure.kind == "text_stat":
            if text_column is None or text_column not in columns:
                raise LLMError("extracting statistics needs a TEXT column "
                               "in scope")
            entity = _entity_column(intent, columns)
            measure_column = f"num_{measure.stat}"
            output = builder.name("extracted_table")
            builder.add(
                f"Extract the number of {measure.stat} that each "
                f"<{entity}> recorded from the '{text_column}' column of "
                f"the '{current}' table into the '{measure_column}' column.",
                [current], output, [measure_column])
            columns.add(measure_column)
            current = output
        elif measure.kind == "outcome":
            if text_column is None or text_column not in columns:
                raise LLMError("deciding game outcomes needs a TEXT column "
                               "in scope")
            entity = _entity_column(intent, columns)
            new_column = f"{measure.outcome}_game"
            output = builder.name("extracted_table")
            builder.add(
                f"Extract whether each <{entity}> {measure.outcome} the "
                f"game from the '{text_column}' column of the '{current}' "
                f"table into the '{new_column}' column.",
                [current], output, [new_column])
            columns.add(new_column)
            current = output
            current = _emit_select(builder, current, new_column, "=", "yes")
        elif measure.kind == "column":
            if measure.derive:
                measure_column = measure.derive
            else:
                located = _anchored(intent, tables, measure.table,
                                    measure.column or "")
                if located is None or located[1] not in columns:
                    raise LLMError(
                        f"measure column {measure.column!r} is not available")
                measure_column = located[1]

    # Aggregation.
    value_column: str | None = None
    group_column: str | None = None
    if group is not None:
        group_column = group.derive if group.derive else group.column
        if group_column is None or group_column not in columns:
            raise LLMError(f"group column {group_column!r} is not available")
        if multi_specs:
            phrases, outputs_text = _render_measure_list(multi_specs)
            output = builder.name("grouped_table")
            builder.add(
                f"Group the '{current}' table by '{group_column}' and "
                f"compute {phrases} into the {outputs_text} columns.",
                [current], output, [out for _agg, _col, out in multi_specs],
                params={"by": group_column,
                        "measures": _measure_params(multi_specs)})
            columns = {group_column} | {out for _a, _c, out in multi_specs}
            current = output
        else:
            aggphrase, value_column = _group_aggregation(measure,
                                                         measure_column)
            output = builder.name("grouped_table")
            builder.add(
                f"Group the '{current}' table by '{group_column}' and "
                f"compute the {aggphrase} into the '{value_column}' column.",
                [current], output, [value_column])
            columns = {group_column, value_column}
            current = output
    elif intent.measures and intent.output_kind != "plot":
        if multi_specs:
            phrases, outputs_text = _render_measure_list(multi_specs)
            output = builder.name("result_table")
            builder.add(
                f"Compute {phrases} of the '{current}' table into the "
                f"{outputs_text} columns.",
                [current], output, [out for _agg, _col, out in multi_specs],
                params={"measures": _measure_params(multi_specs)})
            columns = {out for _agg, _col, out in multi_specs}
            current = output
        else:
            current, value_column = _emit_scalar_aggregation(
                builder, current, measure, measure_column)
            columns = {value_column}
    elif intent.superlative is not None:
        current = _emit_superlative(builder, intent, tables, current, columns)
    if (group is None and measure is None and intent.superlative is None
            and not intent.select_columns):
        raise LLMError(
            f"cannot synthesize a plan for {intent.query!r}: no measure, "
            "grouping, superlative, or projection")

    # Projection for list-style queries.
    select_columns = _anchored_select_columns(intent, tables)
    if select_columns and group is None and measure is None:
        names = [column for _table, column in select_columns
                 if column in columns]
        if names:
            rendered = ", ".join(f"'{name}'" for name in names)
            distinct = "distinct " if intent.distinct else ""
            output = builder.name("projected_table")
            builder.add(
                f"Project the {distinct}columns [{rendered}] of the "
                f"'{current}' table.", [current], output)
            columns = set(names)
            current = output

    # Plot.
    if intent.output_kind == "plot":
        if group is not None and group_column and value_column:
            builder.add(
                f"Plot the '{current}' table as a {intent.plot_kind} plot "
                f"with '{group_column}' on the X-axis and '{value_column}' "
                f"on the Y-axis.", [current], "plot")
        elif measure is not None and measure_column:
            builder.add(
                f"Plot the '{current}' table as a hist plot with "
                f"'{measure_column}' on the X-axis and '{measure_column}' "
                f"on the Y-axis.", [current], "plot")
        else:
            raise LLMError(
                f"cannot synthesize a plot for {intent.query!r}: nothing "
                "to put on the axes")

    thought = _render_thought(intent, needed)
    return LogicalPlan(steps=builder.steps, thought=thought)


def _multi_measure_specs(intent: QueryIntent,
                         tables: dict[str, PromptTable],
                         columns: set[str],
                         ) -> list[tuple[str, str, str]] | None:
    """``(agg word, input column, output column)`` triples for a
    multi-measure aggregate, or ``None`` for the single-measure paths.

    Only pure column measures (including derived columns like ``year``)
    compose into one multi-measure step; plots take a single y-measure,
    so multi-measure plots fall back to the first measure.
    """
    measures = intent.measures
    if (len(measures) < 2 or intent.output_kind == "plot"
            or any(m.kind != "column" for m in measures)):
        return None
    specs: list[tuple[str, str, str]] = []
    seen: set[tuple[str, str]] = set()
    for m in measures:
        if m.derive:
            column = m.derive
        else:
            located = _anchored(intent, tables, m.table, m.column or "")
            if located is None or located[1] not in columns:
                raise LLMError(
                    f"measure column {m.column!r} is not available")
            column = located[1]
        agg_word = ("distinct count" if m.agg == "count_distinct"
                    else m.agg)
        if (agg_word, column) in seen:
            continue
        seen.add((agg_word, column))
        specs.append((agg_word, column, f"{m.agg}_{column}"))
    return specs if len(specs) > 1 else None


def _render_measure_list(specs: list[tuple[str, str, str]],
                         ) -> tuple[str, str]:
    """("the min of 'year', ... and the avg of 'year'",
    "'min_year', ... and 'avg_year'") for a multi-measure step."""
    phrases = [f"the {agg} of '{column}'" for agg, column, _out in specs]
    outputs = [f"'{out}'" for _agg, _column, out in specs]
    return _comma_and(phrases), _comma_and(outputs)


def _comma_and(parts: list[str]) -> str:
    if len(parts) == 1:
        return parts[0]
    return ", ".join(parts[:-1]) + " and " + parts[-1]


def _measure_params(specs: list[tuple[str, str, str]]) -> list[dict]:
    return [{"agg": agg, "column": column, "output": out}
            for agg, column, out in specs]


def _group_aggregation(measure, measure_column: str | None,
                       ) -> tuple[str, str]:
    """(aggregation phrase, output column) for a grouped aggregation."""
    if measure is None or measure.kind in ("count_rows", "outcome"):
        return "count of rows", "count"
    if measure.kind == "column":
        if measure.agg == "count_distinct":
            return (f"distinct count of '{measure_column}'",
                    f"distinct_count_{measure_column}")
        if measure.agg == "count":
            return f"count of '{measure_column}'", f"count_{measure_column}"
        return (f"{measure.agg} of '{measure_column}'",
                f"{measure.agg}_{measure_column}")
    agg = measure.agg if measure.agg in ("sum", "avg", "min", "max") else "sum"
    return f"{agg} of '{measure_column}'", f"{agg}_{measure_column}"


def _emit_scalar_aggregation(builder: _Builder, current: str, measure,
                             measure_column: str | None) -> tuple[str, str]:
    if measure.kind in ("count_rows", "outcome"):
        output = builder.name("result_table")
        builder.add(
            f"Count the number of rows of the '{current}' table into the "
            f"'count' column.", [current], output, ["count"])
        return output, "count"
    if measure.agg == "count_distinct":
        agg_word, value_column = ("distinct count",
                                  f"distinct_count_{measure_column}")
    elif measure.agg in ("count", "sum", "avg", "min", "max"):
        agg_word, value_column = measure.agg, f"{measure.agg}_{measure_column}"
    else:
        agg_word, value_column = "sum", f"sum_{measure_column}"
    output = builder.name("result_table")
    builder.add(
        f"Compute the {agg_word} of the '{measure_column}' column of the "
        f"'{current}' table into the '{value_column}' column.",
        [current], output, [value_column])
    return output, value_column


def _emit_superlative(builder: _Builder, intent: QueryIntent,
                      tables: dict[str, PromptTable], current: str,
                      columns: set[str]) -> str:
    agg, by_column, target = intent.superlative
    if by_column not in columns or target not in columns:
        raise LLMError(
            f"superlative columns {by_column!r}/{target!r} are not available")
    direction = "descending" if agg == "max" else "ascending"
    output = builder.name("sorted_table")
    builder.add(
        f"Sort the '{current}' table by the '{by_column}' column in "
        f"{direction} order and keep only the first row.",
        [current], output)
    current = output
    output = builder.name("projected_table")
    builder.add(
        f"Project the columns ['{target}'] of the '{current}' table.",
        [current], output)
    return output


def _render_thought(intent: QueryIntent, needed: list[str]) -> str:
    tables_text = ", ".join(needed) or "the database"
    actions = []
    if len(needed) > 1:
        actions.append("join them")
    if any(isinstance(f, RelationalFilter) for f in intent.filters):
        actions.append("filter the rows")
    if intent.needs_images:
        actions.append("look at the images")
    if intent.needs_text:
        actions.append("read the reports")
    if intent.group_by or intent.measure:
        actions.append("aggregate")
    if intent.output_kind == "plot":
        actions.append("plot the result")
    action_text = ", then ".join(actions) if actions else "read off the answer"
    return f"I need the {tables_text} data; I will {action_text}."


# ----------------------------------------------------------------------
# Step → operator binding (Mapping Phase)
# ----------------------------------------------------------------------

_JOIN_STEP_RE = re.compile(
    r"^Join the '(?P<left>\w+)' and '(?P<right>\w+)' tables on the "
    r"'(?P<col>\w+)' column\.$")
_CROSS_JOIN_STEP_RE = re.compile(
    r"^Join the '(?P<left>\w+)' and '(?P<right>\w+)' tables on the "
    r"'(?P<lcol>\w+)' and '(?P<rcol>\w+)' columns\.$")
_SELECT_STEP_RE = re.compile(
    r"^Select only the rows of the '(?P<t>\w+)' table where the "
    r"'(?P<col>\w+)' column (?P<cond>.+)\.$")
_VQA_NUM_STEP_RE = re.compile(
    r"^Extract the number of (?P<noun>[\w ]+) depicted in the "
    r"'(?P<img>\w+)' column of the '(?P<t>\w+)' table into the "
    r"'(?P<new>\w+)' column\.$")
_VQA_BOOL_STEP_RE = re.compile(
    r"^Extract whether (?P<noun>[\w ]+) is depicted in the '(?P<img>\w+)' "
    r"column of the '(?P<t>\w+)' table into the '(?P<new>\w+)' column\.$")
_TEXT_STAT_STEP_RE = re.compile(
    r"^Extract the number of (?P<stat>points|rebounds|assists) that each "
    r"<(?P<entity>\w+)> recorded from the '(?P<txt>\w+)' column of the "
    r"'(?P<t>\w+)' table into the '(?P<new>\w+)' column\.$")
_TEXT_OUTCOME_STEP_RE = re.compile(
    r"^Extract whether each <(?P<entity>\w+)> (?P<outcome>won|lost) the "
    r"game from the '(?P<txt>\w+)' column of the '(?P<t>\w+)' table into "
    r"the '(?P<new>\w+)' column\.$")
_DERIVE_STEP_RE = re.compile(
    r"^Compute the (?P<derive>century|decade|year) from the '(?P<src>\w+)' "
    r"column of the '(?P<t>\w+)' table into the '(?P<new>\w+)' column\.$")
_GROUP_STEP_RE = re.compile(
    r"^Group the '(?P<t>\w+)' table by '(?P<g>\w+)' and compute the "
    r"(?P<aggphrase>.+) into the '(?P<new>\w+)' column\.$")
_COUNT_ROWS_STEP_RE = re.compile(
    r"^Count the number of rows of the '(?P<t>\w+)' table into the "
    r"'(?P<new>\w+)' column\.$")
_AGG_STEP_RE = re.compile(
    r"^Compute the (?P<agg>count|distinct count|sum|avg|min|max) of the "
    r"'(?P<col>\w+)' column of the '(?P<t>\w+)' table into the "
    r"'(?P<new>\w+)' column\.$")
_AGG_SPEC = r"the (?:count|distinct count|sum|avg|min|max) of '\w+'"
_MULTI_AGG_STEP_RE = re.compile(
    rf"^Compute (?P<specs>{_AGG_SPEC}(?:(?:, | and ){_AGG_SPEC})+) of the "
    rf"'(?P<t>\w+)' table into the (?P<outs>'\w+'(?:(?:, | and )'\w+')+) "
    rf"columns\.$")
_MULTI_GROUP_STEP_RE = re.compile(
    rf"^Group the '(?P<t>\w+)' table by '(?P<g>\w+)' and compute "
    rf"(?P<specs>{_AGG_SPEC}(?:(?:, | and ){_AGG_SPEC})+) into the "
    rf"(?P<outs>'\w+'(?:(?:, | and )'\w+')+) columns\.$")
_AGG_SPEC_ITEM_RE = re.compile(
    r"the (?P<agg>count|distinct count|sum|avg|min|max) of '(?P<col>\w+)'")
_SORT_STEP_RE = re.compile(
    r"^Sort the '(?P<t>\w+)' table by the '(?P<col>\w+)' column in "
    r"(?P<dir>ascending|descending) order and keep only the first row\.$")
_PROJECT_STEP_RE = re.compile(
    r"^Project the (?P<distinct>distinct )?columns \[(?P<cols>.+)\] of the "
    r"'(?P<t>\w+)' table\.$")
_PLOT_STEP_RE = re.compile(
    r"^Plot the '(?P<t>\w+)' table as a (?P<kind>bar|line|scatter|hist) "
    r"plot with '(?P<x>\w+)' on the X-axis and '(?P<y>\w+)' on the "
    r"Y-axis\.$")

_CONDITION_RES = [
    (re.compile(r"^does not equal (?P<v>.+)$"), "!="),
    (re.compile(r"^equals (?P<v>.+)$"), "="),
    (re.compile(r"^is greater than (?P<v>.+)$"), ">"),
    (re.compile(r"^is at least (?P<v>.+)$"), ">="),
    (re.compile(r"^is less than (?P<v>.+)$"), "<"),
    (re.compile(r"^is at most (?P<v>.+)$"), "<="),
    (re.compile(r"^contains (?P<v>.+)$"), "contains"),
]

_BETWEEN_CONDITION_RE = re.compile(
    r"^is between (?P<lo>DATE '[^']+'|'(?:[^']|'')*'|\S+) "
    r"and (?P<hi>DATE '[^']+'|'(?:[^']|'')*'|\S+)$")

_DATE_LITERAL_RE = re.compile(r"^DATE\s+'(?P<iso>[^']+)'$")


def _quote_ident(name: str) -> str:
    return '"' + name.replace('"', '""') + '"'


def _parse_condition_value(token: str) -> tuple[object, bool]:
    """Parse a rendered literal; returns (value, is_string).

    Typed ``DATE '...'`` literals come back as their ISO string form —
    sqlite stores and compares dates as TEXT, and ISO strings order
    correctly.
    """
    token = token.strip()
    date_match = _DATE_LITERAL_RE.match(token)
    if date_match:
        return date_match.group("iso"), True
    if len(token) >= 2 and token.startswith("'") and token.endswith("'"):
        return token[1:-1].replace("''", "'"), True
    try:
        return int(token), False
    except ValueError:
        pass
    try:
        return float(token), False
    except ValueError as exc:
        raise LLMError(f"cannot parse literal {token!r}") from exc


def _sql_literal(value: object, is_string: bool) -> str:
    if is_string:
        return "'" + str(value).replace("'", "''") + "'"
    return str(value)


def _agg_sql(agg_word: str, column: str | None) -> str:
    if agg_word == "count of rows":
        return "COUNT(*)"
    if agg_word == "distinct count":
        return f"COUNT(DISTINCT {_quote_ident(column or '')})"
    return f"{agg_word.upper()}({_quote_ident(column or '')})"


def _multi_agg_select_list(specs_text: str, outs_text: str) -> str:
    """SQL select-list for a multi-measure step's spec and output lists."""
    specs = _AGG_SPEC_ITEM_RE.findall(specs_text)
    outs = re.findall(r"'(\w+)'", outs_text)
    if len(specs) != len(outs):
        raise LLMError(
            f"multi-measure step lists {len(specs)} aggregates but "
            f"{len(outs)} output columns")
    return ", ".join(
        f"{_agg_sql(agg, column)} AS {_quote_ident(out)}"
        for (agg, column), out in zip(specs, outs))


def map_step(description: str) -> MappingDecision:
    """Bind one canonical step description to an operator + arguments.

    Raises :class:`LLMError` when the description is outside the grammar —
    the engine's error handler sees this as a mapping failure.
    """
    description = description.strip()

    match = _JOIN_STEP_RE.match(description)
    if match:
        sql = (f"SELECT * FROM {_quote_ident(match.group('left'))} JOIN "
               f"{_quote_ident(match.group('right'))} USING "
               f"({_quote_ident(match.group('col'))})")
        return MappingDecision(
            operator="SQL", arguments=[sql],
            reasoning="Joining two tables on a shared key column is "
                      "relational work, so SQL is the right operator.")

    match = _CROSS_JOIN_STEP_RE.match(description)
    if match:
        return MappingDecision(
            operator="Join",
            arguments=[match.group("left"), match.group("right"),
                       match.group("lcol"), match.group("rcol")],
            reasoning="The join keys have different column names on the "
                      "two sides, which is exactly what the Join operator "
                      "handles.")

    match = _SELECT_STEP_RE.match(description)
    if match:
        condition = match.group("cond").strip()
        between = _BETWEEN_CONDITION_RE.match(condition)
        if between:
            low, low_is_string = _parse_condition_value(between.group("lo"))
            high, high_is_string = _parse_condition_value(between.group("hi"))
            column = _quote_ident(match.group("col"))
            predicate = (f"{column} BETWEEN "
                         f"{_sql_literal(low, low_is_string)} AND "
                         f"{_sql_literal(high, high_is_string)}")
            sql = (f"SELECT * FROM {_quote_ident(match.group('t'))} "
                   f"WHERE {predicate}")
            return MappingDecision(
                operator="SQL", arguments=[sql],
                reasoning="A range predicate over a relational column is "
                          "SQL work; date bounds compare correctly as ISO "
                          "strings.")
        for pattern, op in _CONDITION_RES:
            cond_match = pattern.match(condition)
            if cond_match is None:
                continue
            value, is_string = _parse_condition_value(cond_match.group("v"))
            column = _quote_ident(match.group("col"))
            if op == "contains":
                escaped = str(value).replace("'", "''")
                predicate = f"{column} LIKE '%{escaped}%'"
            else:
                predicate = f"{column} {op} {_sql_literal(value, is_string)}"
            sql = (f"SELECT * FROM {_quote_ident(match.group('t'))} "
                   f"WHERE {predicate}")
            return MappingDecision(
                operator="SQL", arguments=[sql],
                reasoning="Selecting rows by a condition over a relational "
                          "column is SQL work.")
        raise LLMError(f"cannot map selection condition {condition!r}")

    match = _VQA_NUM_STEP_RE.match(description)
    if match:
        question = f"How many {match.group('noun').strip()} are depicted?"
        return MappingDecision(
            operator="Visual Question Answering",
            arguments=[match.group("t"), match.group("img"),
                       match.group("new"), question, "int"],
            reasoning="Counting objects requires looking inside IMAGE "
                      "values, which only Visual Question Answering can do.")

    match = _VQA_BOOL_STEP_RE.match(description)
    if match:
        question = f"Is {match.group('noun').strip()} depicted?"
        return MappingDecision(
            operator="Visual Question Answering",
            arguments=[match.group("t"), match.group("img"),
                       match.group("new"), question, "str"],
            reasoning="Whether something is depicted must be answered from "
                      "the IMAGE column via Visual Question Answering.")

    match = _TEXT_STAT_STEP_RE.match(description)
    if match:
        template = (f"How many {match.group('stat')} did "
                    f"<{match.group('entity')}> record?")
        return MappingDecision(
            operator="Text Question Answering",
            arguments=[match.group("t"), match.group("txt"),
                       match.group("new"), template, "int"],
            reasoning="The statistic is stated inside TEXT documents, so "
                      "Text Question Answering with a question template "
                      "is needed.")

    match = _TEXT_OUTCOME_STEP_RE.match(description)
    if match:
        verb = "win" if match.group("outcome") == "won" else "lose"
        template = f"Did <{match.group('entity')}> {verb}?"
        return MappingDecision(
            operator="Text Question Answering",
            arguments=[match.group("t"), match.group("txt"),
                       match.group("new"), template, "str"],
            reasoning="The game outcome is stated inside TEXT documents, "
                      "so Text Question Answering is needed.")

    match = _DERIVE_STEP_RE.match(description)
    if match:
        transform = (f"extract the {match.group('derive')} from the date "
                     "string")
        return MappingDecision(
            operator="Python",
            arguments=[match.group("t"), match.group("src"),
                       match.group("new"), transform],
            reasoning="Deriving a value from a date string is a "
                      "transformation SQL cannot express; generated Python "
                      "code handles it.")

    match = _GROUP_STEP_RE.match(description)
    if match:
        aggphrase = match.group("aggphrase").strip()
        if aggphrase == "count of rows":
            agg_sql = _agg_sql("count of rows", None)
        else:
            agg_match = re.match(r"^(?P<agg>count|distinct count|sum|avg|"
                                 r"min|max) of '(?P<col>\w+)'$", aggphrase)
            if agg_match is None:
                raise LLMError(
                    f"cannot map aggregation phrase {aggphrase!r}")
            agg_sql = _agg_sql(agg_match.group("agg"), agg_match.group("col"))
        group_column = _quote_ident(match.group("g"))
        sql = (f"SELECT {group_column}, {agg_sql} AS "
               f"{_quote_ident(match.group('new'))} FROM "
               f"{_quote_ident(match.group('t'))} GROUP BY {group_column} "
               f"ORDER BY {group_column}")
        return MappingDecision(
            operator="SQL", arguments=[sql],
            reasoning="Grouping and aggregating relational columns is SQL "
                      "work.")

    match = _COUNT_ROWS_STEP_RE.match(description)
    if match:
        sql = (f"SELECT COUNT(*) AS {_quote_ident(match.group('new'))} "
               f"FROM {_quote_ident(match.group('t'))}")
        return MappingDecision(
            operator="SQL", arguments=[sql],
            reasoning="Counting rows is SQL work.")

    match = _AGG_STEP_RE.match(description)
    if match:
        agg_sql = _agg_sql(match.group("agg"), match.group("col"))
        sql = (f"SELECT {agg_sql} AS {_quote_ident(match.group('new'))} "
               f"FROM {_quote_ident(match.group('t'))}")
        return MappingDecision(
            operator="SQL", arguments=[sql],
            reasoning="Aggregating a relational column is SQL work.")

    match = _MULTI_AGG_STEP_RE.match(description)
    if match:
        select_list = _multi_agg_select_list(match.group("specs"),
                                             match.group("outs"))
        sql = (f"SELECT {select_list} "
               f"FROM {_quote_ident(match.group('t'))}")
        return MappingDecision(
            operator="SQL", arguments=[sql],
            reasoning="Several aggregates over relational columns compute "
                      "in one SQL statement, one output column each.")

    match = _MULTI_GROUP_STEP_RE.match(description)
    if match:
        select_list = _multi_agg_select_list(match.group("specs"),
                                             match.group("outs"))
        group_column = _quote_ident(match.group("g"))
        sql = (f"SELECT {group_column}, {select_list} FROM "
               f"{_quote_ident(match.group('t'))} GROUP BY {group_column} "
               f"ORDER BY {group_column}")
        return MappingDecision(
            operator="SQL", arguments=[sql],
            reasoning="Grouping with several aggregates is SQL work, one "
                      "output column per aggregate.")

    match = _SORT_STEP_RE.match(description)
    if match:
        direction = "DESC" if match.group("dir") == "descending" else "ASC"
        sql = (f"SELECT * FROM {_quote_ident(match.group('t'))} ORDER BY "
               f"{_quote_ident(match.group('col'))} {direction} LIMIT 1")
        return MappingDecision(
            operator="SQL", arguments=[sql],
            reasoning="Sorting and limiting rows is SQL work.")

    match = _PROJECT_STEP_RE.match(description)
    if match:
        names = [part.strip().strip("'")
                 for part in match.group("cols").split(",")]
        rendered = ", ".join(_quote_ident(name) for name in names if name)
        distinct = "DISTINCT " if match.group("distinct") else ""
        sql = (f"SELECT {distinct}{rendered} FROM "
               f"{_quote_ident(match.group('t'))}")
        return MappingDecision(
            operator="SQL", arguments=[sql],
            reasoning="Projecting columns is SQL work.")

    match = _PLOT_STEP_RE.match(description)
    if match:
        return MappingDecision(
            operator="Plot",
            arguments=[match.group("t"), match.group("kind"),
                       match.group("x"), match.group("y")],
            reasoning="The user asked for a visualization, so the Plot "
                      "operator draws the result table.")

    raise LLMError(f"the simulated model cannot map step {description!r}")


# ----------------------------------------------------------------------
# The simulated LLM
# ----------------------------------------------------------------------

_STEP_LINE_RE = re.compile(r"Step\s+(\d+):\s*(.+)")
_ERROR_OCCURRED_RE = re.compile(r"This error occurred:\s*(?P<msg>.+)\s*\Z",
                                re.DOTALL)


class SimulatedBrain:
    """A deterministic, rule-based stand-in for the GPT-4 planner.

    Reads rendered chat prompts exactly like a remote model would, decides
    which phase is being asked for from the prompt markers, and answers in
    the documented output format.  Implements the
    :class:`~repro.llm.interface.LanguageModel` protocol.

    *latency_seconds* emulates the round-trip of a remote endpoint: each
    ``complete`` call blocks that long (GIL-free, like real network /
    inference wait) before answering.  The benchmark harness uses it so
    concurrency measurements reflect the latency-bound behaviour of a
    production deployment instead of a zero-latency simulator; the default
    of ``0.0`` keeps tests and interactive runs instant.

    The brain keeps no mutable state across calls, so one instance may be
    shared by concurrent engines.
    """

    name = "simulated-brain"

    #: the :class:`~repro.llm.interface.LanguageModel` cost hook — the
    #: engine prices this brain's traffic with the default deterministic
    #: char-based estimator, exactly as a real brain would declare its own.
    cost_model = DEFAULT_COST_MODEL

    def __init__(self, latency_seconds: float = 0.0):
        if latency_seconds < 0:
            raise ValueError("latency_seconds must be non-negative")
        self.latency_seconds = latency_seconds

    def complete(self, messages: list[ChatMessage]) -> str:
        if self.latency_seconds:
            time.sleep(self.latency_seconds)
        text = "\n\n".join(message.content for message in messages)
        if MAPPING_MARKER in text:
            return self._complete_mapping(text)
        if PLANNING_MARKER in text:
            return self._complete_planning(text)
        if ERROR_MARKER in text:
            return self._complete_error(text)
        if DISCOVERY_MARKER in text:
            return self._complete_discovery(text)
        raise LLMError("the simulated model does not recognize this prompt")

    # ------------------------------------------------------------------

    def _complete_planning(self, text: str) -> str:
        tables = parse_prompt_tables(text)
        query = parse_request(text)
        intent = parse_query(query, tables)
        plan = synthesize_plan(intent, tables)
        return plan.render()

    def _complete_mapping(self, text: str) -> str:
        matches = _STEP_LINE_RE.findall(text)
        if not matches:
            raise LLMError("mapping prompt contains no step to map")
        index, description = matches[-1]
        decision = map_step(description.strip())
        arguments = "; ".join(decision.arguments)
        return (f"Step {index}: {description.strip()}\n"
                f"Reasoning: {decision.reasoning}\n"
                f"Operator: {decision.operator}\n"
                f"Arguments: ({arguments})")

    def _complete_error(self, text: str) -> str:
        match = _ERROR_OCCURRED_RE.search(text)
        message = (match.group("msg").strip().lower() if match else "")
        update_arguments = ("expects" in message and "arguments" in message)
        different_tool = "unknown operator" in message
        flaw_in_plan = not (update_arguments or different_tool)
        if update_arguments:
            cause = "The operator was called with the wrong argument tuple."
            fix = "Call the operator again with the documented arguments."
        elif different_tool:
            cause = "The chosen operator does not exist."
            fix = "Choose one of the registered operators instead."
        else:
            cause = "The plan references data that is not available."
            fix = "Produce a new plan that only uses the given schema."

        def yes_no(flag: bool) -> str:
            return "Yes" if flag else "No"

        return (f"Answer 1: {cause}\n"
                f"Answer 2: {fix}\n"
                f"Answer 3: {yes_no(flaw_in_plan)}\n"
                f"Answer 4: {yes_no(flaw_in_plan)}\n"
                f"Answer 5: {yes_no(different_tool)}\n"
                f"Answer 6: {yes_no(update_arguments)}")

    def _complete_discovery(self, text: str) -> str:
        tables = parse_prompt_tables(text)
        query = parse_request(text)
        pairs: list[tuple[str, str]] = []

        def note(table: str | None, column: str | None) -> None:
            if (table and column and table in tables
                    and column in tables[table].column_names
                    and (table, column) not in pairs):
                pairs.append((table, column))

        try:
            intent = parse_query(query, tables)
        except LLMError:
            intent = None
        if intent is not None:
            group = intent.group_by
            if group:
                note(group.table, group.column)
                note(group.table, group.source_column)
            for item in intent.filters:
                if isinstance(item, RelationalFilter):
                    column = (item.source_column if item.derive
                              else item.column)
                    if item.table:
                        note(item.table, column)
                    else:
                        located = _locate(tables, column or "")
                        if located:
                            note(*located)
            for measure in intent.measures:
                if measure.kind == "column":
                    note(measure.table,
                         measure.source_column or measure.column)
            for table, column in _anchored_select_columns(intent, tables):
                note(table, column)
            if intent.superlative:
                _agg, by_column, target = intent.superlative
                for column in (by_column, target):
                    located = _anchored(intent, tables, None, column)
                    if located:
                        note(*located)
            if intent.needs_images:
                image_table = _table_with_dtype(tables, "IMAGE")
                if image_table:
                    note(image_table.name,
                         _column_with_dtype(image_table, "IMAGE"))
            if intent.needs_text:
                text_table = _table_with_dtype(tables, "TEXT")
                if text_table:
                    note(text_table.name,
                         _column_with_dtype(text_table, "TEXT"))
        rendered = ", ".join(f"'{table}.{column}'" for table, column in pairs)
        return f"Relevant Columns: [{rendered}]"

"""Natural-language query understanding for the simulated LLM.

This module is the "reasoning" core of the simulated planner: it parses a
natural-language request against the table schemas recovered from the prompt
into a structured :class:`QueryIntent` (output kind, grouping, measures,
filters, projections).  It is a *general* rule-based semantic parser — it
works from linguistic patterns and schema matching, never from a lookup of
known benchmark queries.

The grammar covers single- and multi-measure aggregates ("the min, max and
average year of ..."), relational filters including typed date ranges
("created between 1880 and 1895", "in November 2018", open-ended "before
March 1885"), multi-modal predicates, grouping, superlatives, and
projections; cross-table questions ("players on teams founded before
1970") resolve through the schema's foreign keys during plan synthesis.

The plan synthesizer (:mod:`repro.llm.brain`) turns intents into logical
plans; model profiles may then corrupt those plans in the
category-characteristic ways of Table 2.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from datetime import date, timedelta

from repro.core.parsing import PromptTable
from repro.errors import LLMError
from repro.vision.scene import categories_in_phrase

# ----------------------------------------------------------------------
# Intent data structures
# ----------------------------------------------------------------------


@dataclass
class GroupKey:
    """The grouping requested by "for each X" / "per X" phrases."""

    noun: str
    table: str | None = None
    column: str | None = None
    derive: str | None = None          # century | decade | year
    source_column: str | None = None   # date column the derivation reads


@dataclass
class RelationalFilter:
    """A predicate over a relational column (possibly a derived one)."""

    column: str
    op: str                      # = != > >= < <= contains
    value: object
    table: str | None = None
    derive: str | None = None    # filter applies to a derived column
    source_column: str | None = None


@dataclass
class DepictsFilter:
    """Keep only rows whose image depicts all listed categories."""

    categories: list[str]


@dataclass
class Measure:
    """What is being aggregated / reported."""

    kind: str            # count_rows | column | vqa_count | text_stat | outcome
    agg: str             # count | count_distinct | sum | avg | min | max
    column: str | None = None     # kind == column
    table: str | None = None
    category: str | None = None   # kind == vqa_count
    stat: str | None = None       # kind == text_stat: points/rebounds/assists
    outcome: str | None = None    # kind == outcome: won | lost
    derive: str | None = None     # measure over a derived column
    source_column: str | None = None


@dataclass
class QueryIntent:
    """Structured understanding of one natural-language query.

    *measures* holds one entry per requested aggregate; multi-measure
    queries ("the min, max and average year of ...") produce several,
    single-measure queries exactly one, and :attr:`measure` stays as the
    first-measure view the single-measure code paths read.
    """

    query: str
    output_kind: str                  # value | table | plot
    plot_kind: str = "bar"
    subject: str = ""                 # paintings | teams | players | games
    subject_table: str | None = None
    #: True when the subject noun was stated in the query (vs. defaulted
    #: to the largest table); plan synthesis only anchors row-counting /
    #: text-extraction joins on explicitly named subjects.
    subject_explicit: bool = False
    group_by: GroupKey | None = None
    measures: list[Measure] = field(default_factory=list)
    filters: list[object] = field(default_factory=list)
    select_columns: list[tuple[str, str]] = field(default_factory=list)
    superlative: tuple[str, str, str] | None = None  # (agg, by, target col)
    distinct: bool = False

    @property
    def measure(self) -> Measure | None:
        """The first (often only) measure, or ``None``."""
        return self.measures[0] if self.measures else None

    @property
    def needs_images(self) -> bool:
        if any(isinstance(f, DepictsFilter) for f in self.filters):
            return True
        return any(m.kind == "vqa_count" for m in self.measures)

    @property
    def needs_text(self) -> bool:
        return any(m.kind in ("text_stat", "outcome") for m in self.measures)

    @property
    def is_multimodal(self) -> bool:
        return self.needs_images or self.needs_text


# ----------------------------------------------------------------------
# Lexicons
# ----------------------------------------------------------------------

_AGG_WORDS = [
    ("maximum", "max"), ("highest", "max"), ("largest", "max"),
    ("most recent", "max"), ("latest", "max"),
    ("minimum", "min"), ("lowest", "min"), ("smallest", "min"),
    ("earliest", "min"), ("oldest", "min"),
    ("average", "avg"), ("mean", "avg"),
    ("total", "sum"), ("sum of", "sum"),
    ("max", "max"), ("min", "min"), ("avg", "avg"),
]

#: surface form → aggregate, for the multi-measure list grammar
#: ("the min, max and average year ..."); longest alternatives first so the
#: regex alternation never truncates a word.
_AGG_SURFACE = {
    "most recent": "max", "maximum": "max", "highest": "max",
    "largest": "max", "latest": "max", "max": "max",
    "minimum": "min", "lowest": "min", "smallest": "min",
    "earliest": "min", "oldest": "min", "min": "min",
    "average": "avg", "mean": "avg", "avg": "avg",
    "total": "sum", "sum": "sum",
}

_AGG_ALTERNATION = "|".join(
    sorted(_AGG_SURFACE, key=len, reverse=True))

_MONTHS = {
    "january": 1, "february": 2, "march": 3, "april": 4, "may": 5,
    "june": 6, "july": 7, "august": 8, "september": 9, "october": 10,
    "november": 11, "december": 12,
}

_MONTH_ALTERNATION = "|".join(_MONTHS)

#: adjectival movement references ("impressionist paintings").
_MOVEMENT_ADJECTIVES = {
    "renaissance": "Renaissance", "baroque": "Baroque",
    "romantic": "Romanticism", "romanticist": "Romanticism",
    "impressionist": "Impressionism", "expressionist": "Expressionism",
}

_DERIVED_NOUNS = {"century": "century", "centuries": "century",
                  "decade": "decade", "decades": "decade",
                  "year": "year", "years": "year"}

_STAT_WORDS = {"points": "points", "point": "points",
               "rebounds": "rebounds", "rebound": "rebounds",
               "assists": "assists", "assist": "assists"}

_SUBJECT_TABLES = {
    "painting": "paintings_metadata", "paintings": "paintings_metadata",
    "artwork": "paintings_metadata", "artworks": "paintings_metadata",
    "team": "teams", "teams": "teams",
    "player": "players", "players": "players",
    "game": "games", "games": "games",
}

_COLUMN_SYNONYMS = {
    "title": "title", "titles": "title",
    "name": "name", "names": "name",
    "artist": "artist", "artists": "artist",
    "painter": "artist", "painters": "artist",
    "inception": "inception", "inceptions": "inception",
    "movement": "movement", "movements": "movement",
    "genre": "genre", "genres": "genre",
    "conference": "conference", "conferences": "conference",
    "division": "division", "divisions": "division",
    "nationality": "nationality", "nationalities": "nationality",
    "position": "position", "positions": "position",
    "height": "height_cm", "heights": "height_cm",
    "team": "team", "city": "city", "cities": "city",
    "founded": "founded", "date": "date", "dates": "date",
}

_DATE_COLUMNS = ("inception", "date", "created")


# ----------------------------------------------------------------------
# Schema helpers
# ----------------------------------------------------------------------


def _find_column(tables: dict[str, PromptTable],
                 column: str) -> tuple[str, str] | None:
    """Locate *column* in the schema; returns (table, column)."""
    for table in tables.values():
        if column in table.column_names:
            return table.name, column
    return None


def _date_column(tables: dict[str, PromptTable]) -> tuple[str, str] | None:
    """The column the century/year/decade derivations read from."""
    for candidate in _DATE_COLUMNS:
        located = _find_column(tables, candidate)
        if located:
            return located
    return None


def resolve_noun(noun: str,
                 tables: dict[str, PromptTable]) -> tuple[str, str] | None:
    """Resolve a surface noun to (table, column) via synonyms + schema."""
    lowered = noun.strip().lower()
    mapped = _COLUMN_SYNONYMS.get(lowered, lowered)
    located = _find_column(tables, mapped)
    if located:
        return located
    if lowered.endswith("s"):
        singular = _COLUMN_SYNONYMS.get(lowered[:-1], lowered[:-1])
        located = _find_column(tables, singular)
        if located:
            return located
    return None


# ----------------------------------------------------------------------
# The parser
# ----------------------------------------------------------------------

_GROUP_RES = [
    re.compile(r"\bfor\s+(?:each|every)\s+(?P<noun>[a-z_ ]+?)(?:[,.!?]|$)",
               re.IGNORECASE),
    re.compile(r"\b(?:in|of|across|during|for)\s+each\s+(?P<noun>[a-z_]+)",
               re.IGNORECASE),
    re.compile(r"\bper\s+(?P<noun>[a-z_]+)", re.IGNORECASE),
    re.compile(r"\bby\s+each\s+(?P<noun>[a-z_]+)", re.IGNORECASE),
    re.compile(r"\b(?:scored|won|lost|grabbed|handed out|depicted)\s+by\s+"
               r"each\s+(?P<noun>[a-z_]+)", re.IGNORECASE),
]

_LIST_RE = re.compile(
    r"\blist\s+the\s+(?P<cols>[a-z_ ]+?)\s+of\b", re.IGNORECASE)
_WHICH_RE = re.compile(r"\bwhich\s+(?P<subject>[a-z_]+)\b", re.IGNORECASE)

_DEPICT_FILTER_RE = re.compile(
    r"(?:depicting|that\s+depicts?|which\s+depicts?|showing|that\s+shows?)"
    r"\s+(?:both\s+)?(?P<phrase>[\w ,']+?)(?:\s+for\s+each|\s+in\s+each|"
    r"\s+of\s+each|\s*[,.!?]|$)", re.IGNORECASE)

_DEPICTED_COUNT_RE = re.compile(
    r"number of\s+(?P<noun>[\w ]+?)\s+depicted", re.IGNORECASE)

_TEXT_STAT_RE = re.compile(
    r"(?:number of\s+)?(?P<stat>points|rebounds|assists)\b"
    r".{0,40}?\b(?:scored|grabbed|handed out|recorded|they scored|"
    r"did .* (?:score|grab|record))", re.IGNORECASE)

_OUTCOME_RE = re.compile(
    r"games?\s+(?:did\s+.*?\s+|.*?\s+)?(?P<outcome>won|win|lost|lose)",
    re.IGNORECASE)

_NUMBER_OF_RE = re.compile(r"(?:number of|how many)\s+(?P<noun>[\w ]+?)"
                           r"(?:\s+(?:are|is|were|was|did|do|does|that|who|"
                           r"which|they|depicting|depicted|in|for|with|from|"
                           r"belong|created|painted|scored|taller|shorter)"
                           r"\b|[,.!?]|$)",
                           re.IGNORECASE)


def _detect_output_kind(query: str, has_group: bool) -> str:
    lowered = query.strip().lower()
    if re.match(r"^(plot|draw|chart|visuali[sz]e|graph)\b", lowered):
        return "plot"
    if re.search(r"\b(as a|in a)\s+(bar\s+)?(plot|chart|graph)\b", lowered):
        return "plot"
    if lowered.startswith("list") or lowered.startswith("which"):
        return "table"
    if has_group:
        return "table"
    return "value"


def _detect_aggregate(query: str) -> str | None:
    lowered = query.lower()
    best: tuple[int, str] | None = None
    for word, agg in _AGG_WORDS:
        position = lowered.find(word)
        if position >= 0 and (best is None or position < best[0]):
            best = (position, agg)
    return best[1] if best else None


def _parse_group(query: str,
                 tables: dict[str, PromptTable]) -> GroupKey | None:
    for pattern in _GROUP_RES:
        match = pattern.search(query)
        if match is None:
            continue
        noun = match.group("noun").strip().lower()
        # Trim to the head noun ("team, what is ..." → "team").
        noun = re.split(r"[,.!?]", noun)[0].strip()
        if noun in _DERIVED_NOUNS:
            date_col = _date_column(tables)
            if date_col is None:
                continue
            return GroupKey(noun=noun, table=date_col[0],
                            column=None, derive=_DERIVED_NOUNS[noun],
                            source_column=date_col[1])
        if noun in ("team", "teams") and "teams" in tables:
            return GroupKey(noun=noun, table="teams", column="name")
        if noun in ("player", "players") and "players" in tables:
            return GroupKey(noun=noun, table="players", column="name")
        located = resolve_noun(noun, tables)
        if located:
            return GroupKey(noun=noun, table=located[0], column=located[1])
    return None


# ----------------------------------------------------------------------
# Date-range phrases
# ----------------------------------------------------------------------

_DATE_BETWEEN_RE = re.compile(
    rf"\bbetween\s+(?:(?P<m1>{_MONTH_ALTERNATION})\s+)?(?P<y1>\d{{4}})\s+"
    rf"and\s+(?:(?P<m2>{_MONTH_ALTERNATION})\s+)?(?P<y2>\d{{4}})",
    re.IGNORECASE)
_DATE_IN_MONTH_RE = re.compile(
    rf"\bin\s+(?P<month>{_MONTH_ALTERNATION})\s+(?P<year>\d{{4}})",
    re.IGNORECASE)
_DATE_OPEN_RE = re.compile(
    rf"\b(?P<op>before|after|since|until)\s+"
    rf"(?P<month>{_MONTH_ALTERNATION})\s+(?P<year>\d{{4}})",
    re.IGNORECASE)
# Year-only open end; "until" has no legacy derived-year rule, so it is
# the one year-only spelling the typed-date path owns.
_DATE_UNTIL_RE = re.compile(r"\buntil\s+(?P<year>\d{4})", re.IGNORECASE)
_FOUNDED_RE = re.compile(r"\bfounded\s+(?P<op>after|before|since|until|in)"
                         r"\s+(?P<year>\d{4})", re.IGNORECASE)
_FOUNDED_BETWEEN_RE = re.compile(
    r"\bfounded\s+between\s+(?P<y1>\d{4})\s+and\s+(?P<y2>\d{4})",
    re.IGNORECASE)


def _month_span(year: int, month: int) -> tuple[date, date]:
    """First and last day of one calendar month."""
    start = date(year, month, 1)
    if month == 12:
        end = date(year, 12, 31)
    else:
        end = date(year, month + 1, 1) - timedelta(days=1)
    return start, end


def _span(month_name: str | None, year: int) -> tuple[date, date]:
    """Inclusive (start, end) dates of a "November 2018" / "1885" phrase."""
    if month_name:
        return _month_span(year, _MONTHS[month_name.lower()])
    return date(year, 1, 1), date(year, 12, 31)


def _preceded_by_founded(query: str, match: re.Match) -> bool:
    """True when the date phrase belongs to a "founded ..." qualifier —
    that phrase filters the integer founding-year column, not the
    schema's date column."""
    return query[:match.start()].rstrip().lower().endswith("founded")


def _parse_date_range(query: str, tables: dict[str, PromptTable],
                      ) -> RelationalFilter | None:
    """A typed date-range predicate over the schema's date column, if any.

    Handles closed ranges ("between 1880 and 1895", "between November 2018
    and January 2019"), month containment ("in November 2018"), and open
    ends ("before March 1885", "since November 1885").  Values are
    :class:`datetime.date` bounds — the typed scalars the expression
    language and the plan-IR serde carry.  "founded ..." phrases are the
    founding-year grammar's, never a date-column filter.
    """
    date_col = _date_column(tables)
    if date_col is None:
        return None
    table, column = date_col

    match = _DATE_BETWEEN_RE.search(query)
    if match and not _preceded_by_founded(query, match):
        start, _ = _span(match.group("m1"), int(match.group("y1")))
        _, end = _span(match.group("m2"), int(match.group("y2")))
        return RelationalFilter(column, "between", (start, end), table=table)
    match = _DATE_IN_MONTH_RE.search(query)
    if match:
        start, end = _span(match.group("month"), int(match.group("year")))
        return RelationalFilter(column, "between", (start, end), table=table)
    match = _DATE_OPEN_RE.search(query)
    if match and not _preceded_by_founded(query, match):
        start, end = _span(match.group("month"), int(match.group("year")))
        op = match.group("op").lower()
        if op == "before":
            return RelationalFilter(column, "<", start, table=table)
        if op == "after":
            return RelationalFilter(column, ">", end, table=table)
        if op == "since":
            return RelationalFilter(column, ">=", start, table=table)
        return RelationalFilter(column, "<=", end, table=table)  # until
    match = _DATE_UNTIL_RE.search(query)
    if match and not _preceded_by_founded(query, match):
        _, end = _span(None, int(match.group("year")))
        return RelationalFilter(column, "<=", end, table=table)
    return None


def _parse_filters(query: str, tables: dict[str, PromptTable],
                   intent: QueryIntent) -> list[object]:
    filters: list[object] = []
    lowered = query.lower()

    match = re.search(r"in the (\w+) conference", lowered)
    if match and _find_column(tables, "conference"):
        filters.append(RelationalFilter("conference", "=",
                                        match.group(1).capitalize(),
                                        table="teams"))
    match = re.search(r"in the (\w+) division", lowered)
    if match and _find_column(tables, "division"):
        filters.append(RelationalFilter("division", "=",
                                        match.group(1).capitalize(),
                                        table="teams"))
    match = re.search(r"taller than (\d+)", lowered)
    if match and _find_column(tables, "height_cm"):
        filters.append(RelationalFilter("height_cm", ">",
                                        int(match.group(1)),
                                        table="players"))
    match = re.search(r"shorter than (\d+)", lowered)
    if match and _find_column(tables, "height_cm"):
        filters.append(RelationalFilter("height_cm", "<",
                                        int(match.group(1)),
                                        table="players"))
    match = re.search(r"players? from ([a-z]+)", lowered)
    if match and _find_column(tables, "nationality"):
        filters.append(RelationalFilter("nationality", "=",
                                        match.group(1).capitalize(),
                                        table="players"))
    match = re.search(r"(?:of|belong(?:ing|s)? to) the '?([\w ]+?)'? "
                      r"movement", query, re.IGNORECASE)
    if match and _find_column(tables, "movement"):
        filters.append(RelationalFilter("movement", "=",
                                        match.group(1).strip(),
                                        table="paintings_metadata"))
    match = re.search(r"painted by ([A-Z][\w]+(?: [A-Z][\w]+)*)", query)
    if match and _find_column(tables, "artist"):
        filters.append(RelationalFilter("artist", "=", match.group(1),
                                        table="paintings_metadata"))
    match = re.search(r"\b(still life|religious art|landscape|portrait|"
                      r"history painting)\s+paintings", lowered)
    if match and _find_column(tables, "genre"):
        filters.append(RelationalFilter("genre", "=", match.group(1),
                                        table="paintings_metadata"))
    match = re.search(rf"\b({'|'.join(_MOVEMENT_ADJECTIVES)})\s+"
                      r"(?:paintings?|artworks?)", lowered)
    if match and _find_column(tables, "movement"):
        filters.append(RelationalFilter(
            "movement", "=", _MOVEMENT_ADJECTIVES[match.group(1)],
            table="paintings_metadata"))
    match = _FOUNDED_RE.search(query)
    if match and _find_column(tables, "founded"):
        year = int(match.group("year"))
        op = {"after": ">", "since": ">=", "before": "<", "until": "<=",
              "in": "="}[match.group("op").lower()]
        filters.append(RelationalFilter("founded", op, year, table="teams"))
    match = _FOUNDED_BETWEEN_RE.search(query)
    if match and _find_column(tables, "founded"):
        filters.append(RelationalFilter(
            "founded", "between",
            (int(match.group("y1")), int(match.group("y2"))), table="teams"))
    date_range = _parse_date_range(query, tables)
    if date_range is not None:
        filters.append(date_range)
    match = re.search(r"created (after|before|since) (\d{4})", lowered)
    if match:
        date_col = _date_column(tables)
        if date_col:
            op = ">" if match.group(1) in ("after", "since") else "<"
            filters.append(RelationalFilter(
                "year", op, int(match.group(2)), table=date_col[0],
                derive="year", source_column=date_col[1]))
    match = re.search(r"in game (\d+)", lowered)
    if match and _find_column(tables, "game_id"):
        filters.append(RelationalFilter("game_id", "=", int(match.group(1)),
                                        table="game_reports"))

    # Depicts-filter ("paintings depicting Madonna and Child").  Applies
    # when the depicted noun is an object category, not when we are
    # *counting* depicted objects (that is a vqa_count measure).
    depicted_count = _DEPICTED_COUNT_RE.search(query)
    counted_noun = (depicted_count.group("noun").strip().lower()
                    if depicted_count else None)
    counted_is_category = bool(counted_noun
                               and categories_in_phrase(counted_noun))
    match = _DEPICT_FILTER_RE.search(query)
    if match and not counted_is_category:
        categories = categories_in_phrase(match.group("phrase"))
        if categories:
            filters.append(DepictsFilter([c.name for c in categories]))

    # Team-name mention ("the Heat") as an equality filter, only for
    # rotowire-style schemas and only when no grouping is requested.
    # Words an earlier filter already consumed ("the Atlantic division")
    # are not team names.
    consumed = {str(f.value) for f in filters
                if isinstance(f, RelationalFilter)}
    if ("teams" in tables and intent.group_by is None):
        for word in re.findall(r"\bthe ([A-Z][a-z]+)\b", query):
            if word in ("Eastern", "Western") or word in consumed:
                continue
            located = _find_column(tables, "conference")
            if located and word.lower() in ("conference", "division"):
                continue
            # Heuristic: a capitalized noun right after "the" that is not a
            # schema word is read as a team name.
            if word.lower() not in _COLUMN_SYNONYMS and \
                    not categories_in_phrase(word):
                filters.append(RelationalFilter("name", "=", word,
                                                table="teams"))
                break
    return filters


def _parse_measure(query: str, tables: dict[str, PromptTable],
                   intent: QueryIntent) -> Measure | None:
    agg = _detect_aggregate(query)
    lowered = query.lower()

    match = _OUTCOME_RE.search(query)
    if match:
        outcome = match.group("outcome").lower()
        outcome = {"win": "won", "lose": "lost"}.get(outcome, outcome)
        return Measure(kind="outcome", agg="count", outcome=outcome)

    match = _TEXT_STAT_RE.search(query)
    if match and "game_reports" in tables:
        stat = _STAT_WORDS[match.group("stat").lower()]
        return Measure(kind="text_stat", agg=agg or "sum", stat=stat)

    match = _DEPICTED_COUNT_RE.search(query)
    if match:
        categories = categories_in_phrase(match.group("noun"))
        if categories:
            return Measure(kind="vqa_count", agg=agg or "sum",
                           category=categories[0].name)

    match = _NUMBER_OF_RE.search(query)
    if match:
        noun = match.group("noun").strip().lower()
        head = noun.split()[-1] if noun else ""
        if "distinct" in noun:
            target = noun.replace("distinct", "").strip()
            located = resolve_noun(target, tables)
            if located is None and target in ("game", "games"):
                located = _find_column(tables, "game_id")
            if located:
                return Measure(kind="column", agg="count_distinct",
                               column=located[1], table=located[0])
        if head in _SUBJECT_TABLES or head in ("rows", "images", "reports"):
            return Measure(kind="count_rows", agg="count")
        categories = categories_in_phrase(head)
        if categories:
            return Measure(kind="vqa_count", agg=agg or "sum",
                           category=categories[0].name)
        located = resolve_noun(head, tables)
        if located:
            return Measure(kind="column", agg="count", column=located[1],
                           table=located[0])
        return Measure(kind="count_rows", agg="count")

    # Aggregates over plain columns ("the average height of all players",
    # "the earliest inception date").
    if agg:
        # Pick the synonym that appears *earliest* in the query, so that
        # "the average height per position" measures height, not position.
        best_match: tuple[int, tuple[str, str]] | None = None
        for noun, column in _COLUMN_SYNONYMS.items():
            match = re.search(rf"\b{re.escape(noun)}\b", lowered)
            if match is None:
                continue
            located = _find_column(tables, column)
            if located and (best_match is None
                            or match.start() < best_match[0]):
                best_match = (match.start(), located)
        if best_match:
            table, column = best_match[1]
            return Measure(kind="column", agg=agg, column=column, table=table)
        # Derived-column aggregates ("the max year of ..."): measure the
        # derivation of the schema's date column.
        derived = re.search(rf"\b(?:{'|'.join(_DERIVED_NOUNS)})\b", lowered)
        if derived:
            date_col = _date_column(tables)
            if date_col:
                noun = derived.group(0).lower()
                return Measure(kind="column", agg=agg,
                               derive=_DERIVED_NOUNS[noun],
                               source_column=date_col[1],
                               table=date_col[0])
        date_col = _date_column(tables)
        if date_col and re.search(r"\b(date|inception)\b", lowered):
            return Measure(kind="column", agg=agg, column=date_col[1],
                           table=date_col[0])
    return None


_MULTI_AGG_RE = re.compile(
    rf"\b(?P<aggs>(?:{_AGG_ALTERNATION})"
    rf"(?:\s*,\s*(?:the\s+)?(?:{_AGG_ALTERNATION}))*"
    rf"\s*(?:,\s*)?and\s+(?:the\s+)?(?:{_AGG_ALTERNATION}))\s+"
    rf"(?P<noun>[a-z_]+)(?P<date_tail>\s+dates?)?",
    re.IGNORECASE)

_AGG_WORD_RE = re.compile(rf"\b(?:{_AGG_ALTERNATION})\b", re.IGNORECASE)


def _parse_measures(query: str, tables: dict[str, PromptTable],
                    intent: QueryIntent) -> list[Measure]:
    """All requested measures: the multi-measure list grammar, else the
    single-measure grammar.

    "the min, max and average year of ..." yields one :class:`Measure`
    per aggregate over the shared target column (derived columns like
    ``year`` included); a single aggregate degenerates to exactly the
    measure :func:`_parse_measure` produces.
    """
    match = _MULTI_AGG_RE.search(query)
    if match:
        aggs = [_AGG_SURFACE[word.lower()]
                for word in _AGG_WORD_RE.findall(match.group("aggs"))]
        noun = match.group("noun").strip().lower()
        measures: list[Measure] = []
        if noun in _DERIVED_NOUNS:
            date_col = _date_column(tables)
            if date_col:
                measures = [Measure(kind="column", agg=agg,
                                    derive=_DERIVED_NOUNS[noun],
                                    source_column=date_col[1],
                                    table=date_col[0])
                            for agg in aggs]
        else:
            located = resolve_noun(noun, tables)
            if located:
                measures = [Measure(kind="column", agg=agg,
                                    column=located[1], table=located[0])
                            for agg in aggs]
        if len(measures) >= 2:
            return measures
    single = _parse_measure(query, tables, intent)
    return [single] if single is not None else []


_SUPERLATIVES = {
    "tallest": ("max", "height_cm"),
    "shortest": ("min", "height_cm"),
    "most recent": ("max", "inception"),
    "oldest": ("min", "inception"),
    "newest": ("max", "inception"),
}


def _parse_superlative(query: str, tables: dict[str, PromptTable],
                       ) -> tuple[str, str, str] | None:
    lowered = query.lower()
    for word, (agg, column) in _SUPERLATIVES.items():
        if word not in lowered:
            continue
        if _find_column(tables, column) is None:
            continue
        target_match = re.search(
            r"(?:what is|what was|who is|who was) the "
            r"(?P<target>[a-z_]+) of", lowered)
        target = None
        if target_match:
            resolved = resolve_noun(target_match.group("target"), tables)
            if resolved:
                target = resolved[1]
        if target is None:
            for candidate in ("name", "title"):
                if _find_column(tables, candidate):
                    target = candidate
                    break
        if target:
            return (agg, column, target)
    return None


def _parse_subject(query: str, tables: dict[str, PromptTable],
                   ) -> tuple[str, str | None, bool]:
    """(subject noun, subject table, explicitly named?).

    When several subject nouns appear ("points scored by players on
    teams ..."), the one mentioned *earliest* is the head noun the query
    is about.
    """
    lowered = query.lower()
    best: tuple[int, str, str] | None = None
    for noun, table in _SUBJECT_TABLES.items():
        match = re.search(rf"\b{noun}\b", lowered)
        if match and table in tables and (best is None
                                          or match.start() < best[0]):
            best = (match.start(), noun, table)
    if best is not None:
        return best[1], best[2], True
    # Default to the largest base table in the schema.
    if tables:
        biggest = max(tables.values(), key=lambda t: t.num_rows)
        return biggest.name, biggest.name, False
    return "", None, False


def _parse_select_columns(query: str, tables: dict[str, PromptTable],
                          ) -> list[tuple[str, str]]:
    match = _LIST_RE.search(query)
    if match is None:
        return []
    columns: list[tuple[str, str]] = []
    for part in re.split(r",| and ", match.group("cols")):
        part = part.strip()
        if not part or part in ("all",):
            continue
        located = resolve_noun(part, tables)
        if located and located not in columns:
            columns.append(located)
    return columns


def parse_query(query: str, tables: dict[str, PromptTable]) -> QueryIntent:
    """Parse *query* against *tables* into a :class:`QueryIntent`.

    Raises :class:`repro.errors.LLMError` when the query is completely
    outside the parser's grammar (the simulated model "does not understand"
    the request).
    """
    if not query or not query.strip():
        raise LLMError("empty query")
    query = query.strip()

    intent = QueryIntent(query=query, output_kind="value")
    (intent.subject, intent.subject_table,
     intent.subject_explicit) = _parse_subject(query, tables)
    intent.group_by = _parse_group(query, tables)
    intent.output_kind = _detect_output_kind(query,
                                             intent.group_by is not None)
    intent.filters = _parse_filters(query, tables, intent)
    intent.measures = _parse_measures(query, tables, intent)
    intent.select_columns = _parse_select_columns(query, tables)
    intent.superlative = _parse_superlative(query, tables)
    intent.distinct = "distinct" in query.lower()

    if (not intent.measures and not intent.select_columns
            and intent.superlative is None):
        if intent.output_kind in ("plot", "table") and intent.group_by:
            # "Plot the paintings per movement" style: default to counting.
            intent.measures = [Measure(kind="count_rows", agg="count")]
        else:
            raise LLMError(
                f"the simulated model cannot derive an intent from "
                f"{query!r}")
    return intent

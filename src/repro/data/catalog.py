"""The data lake catalog.

A :class:`DataLake` registers named data sources.  Following the paper,
non-relational collections (images, texts) are *presented as special tables*:
an image collection becomes ``table(columns=['img_path': 'str',
'image': 'IMAGE'])`` and a text collection becomes
``table(columns=['<id>': ..., '<doc>': 'TEXT'])`` so that they can take part
in regular joins.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field

from repro.data.table import Table
from repro.errors import UnknownTableError


class SourceKind(enum.Enum):
    """What kind of data source a catalog entry wraps."""

    TABLE = "table"
    IMAGE_COLLECTION = "image_collection"
    TEXT_COLLECTION = "text_collection"


@dataclass
class DataSource:
    """One named entry of the data lake."""

    name: str
    table: Table
    kind: SourceKind = SourceKind.TABLE
    description: str = ""

    @property
    def is_multimodal(self) -> bool:
        return self.kind is not SourceKind.TABLE

    def prompt_repr(self) -> str:
        """Schema line for a CAESURA prompt (Figure 3 format)."""
        return self.table.schema.prompt_repr(self.name, self.table.num_rows)

    def summary_text(self) -> str:
        """Natural-language summary used for dense retrieval in discovery."""
        columns = ", ".join(
            f"{c.name} ({c.dtype.value})" for c in self.table.schema.columns)
        return (f"{self.name}: {self.description or self.table.schema.description} "
                f"kind={self.kind.value} columns: {columns}")


@dataclass
class DataLake:
    """A registry of data sources plus lake-level metadata."""

    name: str = "lake"
    sources: dict[str, DataSource] = field(default_factory=dict)
    #: optional :class:`repro.datasets.LakeSpec` describing how to
    #: regenerate this lake deterministically (set by
    #: :func:`repro.datasets.load_lake`).  The process execution backend
    #: ships this spec to worker processes instead of the lake itself, so
    #: tables and images never cross the pipe.
    spec: object | None = field(default=None, compare=False, repr=False)

    def add(self, source: DataSource) -> "DataLake":
        self.sources[source.name] = source
        return self

    def add_table(self, name: str, table: Table, description: str = "",
                  kind: SourceKind = SourceKind.TABLE) -> "DataLake":
        return self.add(DataSource(name, table, kind=kind,
                                   description=description))

    def __contains__(self, name: str) -> bool:
        return name in self.sources

    def __len__(self) -> int:
        return len(self.sources)

    @property
    def source_names(self) -> list[str]:
        return list(self.sources)

    def source(self, name: str) -> DataSource:
        if name not in self.sources:
            raise UnknownTableError(name, self.source_names)
        return self.sources[name]

    def table(self, name: str) -> Table:
        return self.source(name).table

    def subset(self, names: list[str]) -> "DataLake":
        """A lake restricted to *names* (used after discovery)."""
        lake = DataLake(name=self.name)
        for name in names:
            lake.add(self.source(name))
        return lake

    def prompt_repr(self) -> str:
        """All schema lines, one per source, for prompt construction."""
        return "\n".join(f" - {s.prompt_repr()}"
                         for s in self.sources.values())

    def fingerprint(self) -> str:
        """Stable digest of the lake's shape (names, schemas, row counts).

        Two lakes with the same sources, schemas, and cardinalities share a
        fingerprint; plan caches key on ``(query, fingerprint)`` so cached
        plans never leak across structurally different lakes.
        """
        digest = hashlib.sha256()
        for name in sorted(self.sources):
            source = self.sources[name]
            digest.update(source.prompt_repr().encode("utf-8"))
            digest.update(source.kind.value.encode("utf-8"))
        return digest.hexdigest()[:16]

    def content_fingerprint(self) -> str:
        """Digest of the lake's shape *and* every cell value.

        :meth:`fingerprint` is deliberately shape-only (two seeds of the
        same dataset share plans), so it cannot tell two same-shaped
        lakes apart.  The process execution backend needs exactly that
        distinction — a worker must never serve answers about a
        same-shaped-but-different lake — so it verifies this digest,
        which folds in each table's content hash
        (:meth:`repro.data.table.Table.fingerprint`, memoized per
        table).
        """
        digest = hashlib.sha256()
        digest.update(self.fingerprint().encode("ascii"))
        for name in sorted(self.sources):
            digest.update(self.sources[name].table.fingerprint()
                          .encode("ascii"))
        return digest.hexdigest()[:16]

"""Datatypes for multi-modal tables.

CAESURA presents non-relational modalities to the LLM as *special tables*
whose columns carry modality datatypes (``IMAGE``, ``TEXT``).  The relational
datatypes mirror what SQLite supports; the modality datatypes tag columns
whose values are arbitrary Python objects (rendered images, long documents)
that only multi-modal operators may consume.
"""

from __future__ import annotations

import enum
from datetime import date, datetime

from repro.errors import TypeMismatchError


class DataType(enum.Enum):
    """Datatype of a table column."""

    INTEGER = "int"
    FLOAT = "float"
    STRING = "str"
    BOOLEAN = "bool"
    DATE = "date"
    IMAGE = "IMAGE"
    TEXT = "TEXT"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @property
    def is_modality(self) -> bool:
        """True for non-relational modality types (IMAGE, TEXT)."""
        return self in (DataType.IMAGE, DataType.TEXT)

    @property
    def is_numeric(self) -> bool:
        return self in (DataType.INTEGER, DataType.FLOAT)

    @property
    def sqlite_affinity(self) -> str:
        """SQLite column affinity used by the sqlite3 bridge."""
        if self is DataType.INTEGER:
            return "INTEGER"
        if self is DataType.FLOAT:
            return "REAL"
        if self is DataType.BOOLEAN:
            return "INTEGER"
        # Dates, strings, and modality *tokens* are stored as text.
        return "TEXT"

    @classmethod
    def parse(cls, name: str) -> "DataType":
        """Parse a datatype from its prompt spelling (``'str'``, ``'IMAGE'``)."""
        normalized = name.strip()
        for member in cls:
            if member.value == normalized or member.name == normalized.upper():
                return member
        raise TypeMismatchError(f"unknown datatype {name!r}")


def encode_scalar(value: object) -> object:
    """Encode one relational scalar as a JSON-safe value.

    ``int``/``float``/``str``/``bool``/``None`` pass through; ``date`` and
    ``datetime`` become a ``{"$date": iso}`` tagged dict so decoding is
    lossless without schema context.  Anything else raises.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, datetime):                # before date: a subclass
        return {"$datetime": value.isoformat()}
    if isinstance(value, date):
        return {"$date": value.isoformat()}
    raise TypeMismatchError(
        f"cannot JSON-encode scalar of type {type(value).__name__}")


def decode_scalar(value: object) -> object:
    """Inverse of :func:`encode_scalar`."""
    if isinstance(value, dict):
        if set(value) == {"$date"}:
            return date.fromisoformat(value["$date"])
        if set(value) == {"$datetime"}:
            return datetime.fromisoformat(value["$datetime"])
    return value


def infer_type(value: object) -> DataType:
    """Infer the :class:`DataType` of a single Python value."""
    if isinstance(value, bool):
        return DataType.BOOLEAN
    if isinstance(value, int):
        return DataType.INTEGER
    if isinstance(value, float):
        return DataType.FLOAT
    if isinstance(value, (date, datetime)):
        return DataType.DATE
    if isinstance(value, str):
        return DataType.STRING
    raise TypeMismatchError(
        f"cannot infer relational datatype of {type(value).__name__}; "
        "tag modality columns explicitly as IMAGE or TEXT"
    )


def infer_column_type(values: list[object]) -> DataType:
    """Infer a column datatype from its values (ignoring ``None``).

    Mixed int/float widens to float; any other mix raises.
    """
    seen: set[DataType] = set()
    for value in values:
        if value is None:
            continue
        seen.add(infer_type(value))
    if not seen:
        return DataType.STRING
    if seen == {DataType.INTEGER, DataType.FLOAT}:
        return DataType.FLOAT
    if len(seen) == 1:
        return seen.pop()
    names = ", ".join(sorted(t.name for t in seen))
    raise TypeMismatchError(f"column mixes incompatible datatypes: {names}")


def coerce(value: object, dtype: DataType) -> object:
    """Coerce *value* to *dtype*, raising :class:`TypeMismatchError` on failure.

    ``None`` passes through unchanged (SQL-style NULL semantics).
    """
    if value is None:
        return None
    try:
        if dtype is DataType.INTEGER:
            if isinstance(value, bool):
                return int(value)
            if isinstance(value, (int, float)):
                return int(value)
            return int(str(value).strip())
        if dtype is DataType.FLOAT:
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                return float(value)
            return float(str(value).strip())
        if dtype is DataType.BOOLEAN:
            if isinstance(value, bool):
                return value
            if isinstance(value, (int, float)):
                return bool(value)
            text = str(value).strip().lower()
            if text in ("true", "yes", "1"):
                return True
            if text in ("false", "no", "0"):
                return False
            raise ValueError(text)
        if dtype is DataType.DATE:
            if isinstance(value, datetime):
                return value.date()
            if isinstance(value, date):
                return value
            return date.fromisoformat(str(value).strip())
        if dtype is DataType.STRING:
            return value if isinstance(value, str) else str(value)
    except (ValueError, TypeError) as exc:
        raise TypeMismatchError(
            f"cannot coerce {value!r} to {dtype.name}"
        ) from exc
    # Modality types accept any object.
    return value

"""Multi-modal data substrate: datatypes, tables, schemas, and the data lake."""

from repro.data.catalog import DataLake, DataSource, SourceKind
from repro.data.csvio import read_csv, read_csv_text, write_csv, write_csv_text
from repro.data.datatypes import DataType, coerce, infer_column_type, infer_type
from repro.data.schema import ColumnSpec, ForeignKey, Schema
from repro.data.table import Table

__all__ = [
    "ColumnSpec",
    "DataLake",
    "DataSource",
    "DataType",
    "ForeignKey",
    "Schema",
    "SourceKind",
    "Table",
    "coerce",
    "infer_column_type",
    "infer_type",
    "read_csv",
    "read_csv_text",
    "write_csv",
    "write_csv_text",
]

"""Column-store table with relational *and* modality columns.

A :class:`Table` is an immutable-by-convention column store.  Relational
columns hold ``int/float/str/bool/date`` values (or ``None``); modality
columns (``IMAGE``, ``TEXT``) hold arbitrary Python objects such as rendered
:class:`repro.vision.image.Image` rasters or long report strings.

Storage is columnar for real: relational columns pack into the typed
stores of :mod:`repro.data.columns` — int64/float64 ``array`` buffers,
byte-wide bools, date ordinals, dictionary-encoded interned strings —
with plain-list object storage as the fallback for modality columns and
anything the typed stores cannot represent exactly.  The public surface
is unchanged: :meth:`column` still returns a Python list (memoized
materialization), ``to_dict``/``from_dict`` and :meth:`fingerprint` are
byte-identical with the historical row store, so old caches still load.

All relational operators in :mod:`repro.relational` and all multi-modal
operators in :mod:`repro.operators` consume and produce ``Table`` values.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from repro.data.columns import (Column, ColumnBuilder, build_column,
                                concat_columns)
from repro.data.datatypes import (DataType, coerce, decode_scalar,
                                  encode_scalar, infer_column_type)
from repro.data.schema import ColumnSpec, Schema
from repro.errors import SchemaError, UnknownColumnError


class Table:
    """An ordered collection of equally-long named columns."""

    def __init__(self, schema: Schema, columns: Mapping[str, object]):
        lengths = {len(v) for v in columns.values()}
        if len(lengths) > 1:
            raise SchemaError(f"ragged columns: lengths {sorted(lengths)}")
        missing = [c.name for c in schema.columns if c.name not in columns]
        if missing:
            raise SchemaError(f"columns missing from data: {', '.join(missing)}")
        extra = [n for n in columns if n not in schema]
        if extra:
            raise SchemaError(f"data columns not in schema: {', '.join(extra)}")
        self.schema = schema
        self._columns: dict[str, Column] = {
            spec.name: build_column(columns[spec.name], spec.dtype)
            for spec in schema.columns
        }
        self._fingerprint: str | None = None
        self._samples: dict[tuple[str, int], list[object]] = {}

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_rows(cls, schema: Schema, rows: Iterable[Sequence[object]]) -> "Table":
        """Build a table from row tuples ordered like ``schema.columns``.

        *rows* may be any iterable — a generator feeds the typed column
        builders directly, so the row stream is never materialized.
        """
        names = schema.column_names
        builders = [ColumnBuilder(spec.dtype) for spec in schema.columns]
        width = len(names)
        for row in rows:
            if len(row) != width:
                raise SchemaError(
                    f"row has {len(row)} values, schema has {width} columns")
            for builder, value in zip(builders, row):
                builder.append(value)
        columns = {name: builder.finish()
                   for name, builder in zip(names, builders)}
        return cls(schema, columns)

    @classmethod
    def from_dicts(cls, schema: Schema, rows: Iterable[Mapping[str, object]]) -> "Table":
        """Build a table from row dictionaries (missing keys become ``None``)."""
        names = schema.column_names
        builders = {name: ColumnBuilder(schema.dtype(name)) for name in names}
        for row in rows:
            for name, builder in builders.items():
                builder.append(row.get(name))
        return cls(schema, {name: builder.finish()
                            for name, builder in builders.items()})

    @classmethod
    def infer(cls, columns: Mapping[str, Sequence[object]],
              modality_types: Mapping[str, DataType] | None = None,
              description: str = "") -> "Table":
        """Build a table inferring relational column types from the data.

        Columns listed in *modality_types* are tagged IMAGE/TEXT instead of
        being inferred.
        """
        modality_types = dict(modality_types or {})
        specs = []
        for name, values in columns.items():
            if name in modality_types:
                specs.append(ColumnSpec(name, modality_types[name]))
            else:
                specs.append(ColumnSpec(name, infer_column_type(list(values))))
        return cls(Schema(specs, description=description), columns)

    @classmethod
    def empty(cls, schema: Schema) -> "Table":
        return cls(schema, {name: [] for name in schema.column_names})

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_rows(self) -> int:
        if not self._columns:
            return 0
        return len(next(iter(self._columns.values())))

    @property
    def num_columns(self) -> int:
        return len(self._columns)

    @property
    def column_names(self) -> list[str]:
        return self.schema.column_names

    def __len__(self) -> int:
        return self.num_rows

    def __contains__(self, column: str) -> bool:
        return column in self._columns

    def column(self, name: str) -> list[object]:
        """The values of one column (a defensive copy is *not* taken)."""
        if name not in self._columns:
            raise UnknownColumnError(name, self.column_names)
        return self._columns[name].materialize()

    def storage(self, name: str) -> Column:
        """The underlying :class:`~repro.data.columns.Column` store.

        The columnar executor reads typed buffers through this; everyone
        else should use :meth:`column`.
        """
        if name not in self._columns:
            raise UnknownColumnError(name, self.column_names)
        return self._columns[name]

    def iter_column(self, name: str) -> Iterator[object]:
        """Iterate one column's values without materializing a list."""
        if name not in self._columns:
            raise UnknownColumnError(name, self.column_names)
        return self._columns[name].iter_values()

    def dtype(self, name: str) -> DataType:
        return self.schema.dtype(name)

    def row(self, index: int) -> dict[str, object]:
        """One row as a name→value dict."""
        return {name: column.materialize()[index]
                for name, column in self._columns.items()}

    def rows(self) -> Iterator[dict[str, object]]:
        names = self.column_names
        columns = [self._columns[n].materialize() for n in names]
        for values in zip(*columns) if columns else ():
            yield dict(zip(names, values))

    def row_tuples(self) -> Iterator[tuple[object, ...]]:
        columns = [self._columns[n].materialize() for n in self.column_names]
        return iter(zip(*columns)) if columns else iter(())

    # ------------------------------------------------------------------
    # Row / column algebra (used by the relational engine and operators)
    # ------------------------------------------------------------------

    def take(self, indices: Sequence[int]) -> "Table":
        """Rows at *indices*, in that order (may repeat / reorder)."""
        columns = {name: column.take(indices)
                   for name, column in self._columns.items()}
        return Table(self.schema, columns)

    def filter(self, mask: Sequence[bool]) -> "Table":
        if len(mask) != self.num_rows:
            raise SchemaError(
                f"mask length {len(mask)} != num_rows {self.num_rows}")
        indices = [i for i, keep in enumerate(mask) if keep]
        return self.take(indices)

    def head(self, n: int = 5) -> "Table":
        return self.take(list(range(min(n, self.num_rows))))

    def project(self, names: Sequence[str]) -> "Table":
        specs = [self.schema.column(n) for n in names]
        schema = Schema(specs, description=self.schema.description)
        return Table(schema, {n: self._columns[n] for n in names})

    def rename(self, mapping: Mapping[str, str]) -> "Table":
        for old in mapping:
            if old not in self._columns:
                raise UnknownColumnError(old, self.column_names)
        specs = [ColumnSpec(mapping.get(c.name, c.name), c.dtype, c.description)
                 for c in self.schema.columns]
        schema = Schema(specs, description=self.schema.description)
        columns = {mapping.get(n, n): v for n, v in self._columns.items()}
        return Table(schema, columns)

    def with_column(self, name: str, dtype: DataType,
                    values: Sequence[object]) -> "Table":
        """A copy with one column appended (replaces an existing name)."""
        if len(values) != self.num_rows:
            raise SchemaError(
                f"new column {name!r} has {len(values)} values, "
                f"table has {self.num_rows} rows")
        if name in self._columns:
            base = self.project([c for c in self.column_names if c != name])
        else:
            base = self
        schema = base.schema.with_column(ColumnSpec(name, dtype))
        columns: dict[str, object] = dict(base._columns)
        columns[name] = build_column(list(values), dtype)
        return Table(schema, columns)

    def map_column(self, source: str, target: str, dtype: DataType,
                   fn: Callable[[object], object]) -> "Table":
        """Append column *target* computed row-wise from column *source*."""
        values = [None if v is None else fn(v) for v in self.column(source)]
        return self.with_column(target, dtype, values)

    def coerced(self) -> "Table":
        """A copy with every relational value coerced to its column dtype."""
        columns: dict[str, object] = {}
        for spec in self.schema.columns:
            stored = self._columns[spec.name]
            if spec.dtype.is_modality:
                columns[spec.name] = stored
            else:
                columns[spec.name] = build_column(
                    [coerce(v, spec.dtype) for v in stored.iter_values()],
                    spec.dtype)
        return Table(self.schema, columns)

    def concat(self, other: "Table") -> "Table":
        """Rows of *other* appended (schemas must have identical columns)."""
        if self.column_names != other.column_names:
            raise SchemaError("cannot concat tables with different columns")
        columns = {spec.name: concat_columns(self._columns[spec.name],
                                             other._columns[spec.name],
                                             spec.dtype)
                   for spec in self.schema.columns}
        return Table(self.schema, columns)

    # ------------------------------------------------------------------
    # Display / comparison helpers
    # ------------------------------------------------------------------

    def sample_values(self, name: str, limit: int = 3) -> list[object]:
        """Up to *limit* distinct non-null example values of a column.

        Used by prompt construction ("These are some relevant values...").
        Memoized: a column with fewer than *limit* distinct values forces
        a full scan, and discovery asks for the same samples every query.
        """
        cached = self._samples.get((name, limit))
        if cached is None:
            modality = self.dtype(name).is_modality
            seen: list[object] = []
            for value in self.iter_column(name):
                if value is None:
                    continue
                display = value if not modality else repr(value)
                if display not in seen:
                    seen.append(display)
                if len(seen) >= limit:
                    break
            cached = self._samples[(name, limit)] = seen
        return list(cached)

    def to_display(self, max_rows: int = 10, max_width: int = 20) -> str:
        """A plain-text rendering for logs, examples, and observations."""

        def fmt(value: object) -> str:
            text = "NULL" if value is None else str(value)
            if len(text) > max_width:
                text = text[:max_width - 1] + "…"
            return text

        names = self.column_names
        shown = list(self.head(max_rows).row_tuples())
        widths = [len(n) for n in names]
        rendered = [[fmt(v) for v in row] for row in shown]
        for row in rendered:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [" | ".join(n.ljust(w) for n, w in zip(names, widths))]
        lines.append("-+-".join("-" * w for w in widths))
        for row in rendered:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        if self.num_rows > max_rows:
            lines.append(f"... ({self.num_rows} rows total)")
        return "\n".join(lines)

    def fingerprint(self) -> str:
        """Content digest of the schema and every cell value.

        Computed lazily, then memoized — the table is immutable by
        convention (every mutation helper returns a new ``Table``), so the
        digest is stable for the object's lifetime.  IMAGE cells hash via
        :meth:`repro.vision.image.Image.fingerprint` (itself memoized);
        everything else hashes by ``repr``.  The typed column stores
        round-trip values exactly, so this digest is byte-identical with
        the historical row store — pre-columnar caches keep their keys.
        The sqlite bridge keys its registration memo on this digest, so a
        table is only copied into sqlite again when its content actually
        changed.
        """
        if self._fingerprint is None:
            from repro.vision.image import Image
            digest = hashlib.sha256()
            for spec in self.schema.columns:
                digest.update(f"{spec.name}:{spec.dtype.value}\n"
                              .encode("utf-8"))
            for spec in self.schema.columns:
                values = self._columns[spec.name].iter_values()
                if spec.dtype is DataType.IMAGE:
                    parts = (value.fingerprint() if isinstance(value, Image)
                             else repr(value) for value in values)
                else:
                    parts = (repr(value) for value in values)
                for part in parts:
                    digest.update(part.encode("utf-8"))
                    digest.update(b"\x1f")
                digest.update(b"\x1e")
            self._fingerprint = digest.hexdigest()[:24]
        return self._fingerprint

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cols = ", ".join(f"{c.name}:{c.dtype.value}" for c in self.schema.columns)
        return f"Table({self.num_rows} rows, [{cols}])"

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """Lossless JSON-safe encoding (schema + per-column values).

        Relational values are encoded with
        :func:`~repro.data.datatypes.encode_scalar` (dates become tagged
        dicts); IMAGE cells holding :class:`~repro.vision.image.Image`
        objects become ``{"$image": ...}`` tagged dicts; TEXT cells are
        plain strings.
        """
        columns: dict[str, list[object]] = {}
        for spec in self.schema.columns:
            values = self._columns[spec.name].iter_values()
            if spec.dtype is DataType.IMAGE:
                columns[spec.name] = [self._encode_image(v) for v in values]
            else:
                columns[spec.name] = [encode_scalar(v) for v in values]
        return {"schema": self.schema.to_dict(), "columns": columns}

    @classmethod
    def from_dict(cls, data: dict) -> "Table":
        """Inverse of :meth:`to_dict`."""
        schema = Schema.from_dict(data["schema"])
        columns: dict[str, object] = {}
        for spec in schema.columns:
            values = data["columns"][spec.name]
            if spec.dtype is DataType.IMAGE:
                columns[spec.name] = [cls._decode_image(v) for v in values]
            else:
                columns[spec.name] = [decode_scalar(v) for v in values]
        return cls(schema, columns)

    @staticmethod
    def _encode_image(value: object) -> object:
        from repro.vision.image import Image
        if isinstance(value, Image):
            return {"$image": value.to_dict()}
        return encode_scalar(value)

    @staticmethod
    def _decode_image(value: object) -> object:
        if isinstance(value, dict) and set(value) == {"$image"}:
            from repro.vision.image import Image
            return Image.from_dict(value["$image"])
        return decode_scalar(value)

    def __eq__(self, other: object) -> bool:
        """Structural equality: schema (incl. dtypes) and cell values."""
        if not isinstance(other, Table):
            return NotImplemented
        if self.schema != other.schema:
            return False
        return all(self._columns[n].materialize()
                   == other._columns[n].materialize()
                   for n in self.column_names)

    __hash__ = None  # mutable container semantics

    def equals(self, other: "Table", ignore_order: bool = False) -> bool:
        """Structural equality on column names and values (not descriptions)."""
        if self.column_names != other.column_names:
            return False
        mine = list(self.row_tuples())
        theirs = list(other.row_tuples())
        if ignore_order:
            key = repr
            return sorted(mine, key=key) == sorted(theirs, key=key)
        return mine == theirs

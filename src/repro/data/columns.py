"""Typed columnar storage backing :class:`repro.data.table.Table`.

A :class:`Column` stores one table column.  Typed implementations pack
values into compact buffers — ``array('q')`` for int64, ``array('d')``
for float64, a ``bytearray`` for bools, date ordinals for dates, and
dictionary-encoded interned strings — with a parallel null mask, so a
million-row column costs megabytes instead of a Python object per cell.
:class:`ObjectColumn` is the fallback for modality columns (IMAGE/TEXT)
and for any value stream the typed stores cannot represent exactly.

Exactness is the contract: a typed column only accepts a value when the
round trip back to Python reproduces an **identical** object ``repr`` —
``type(v) is int`` (bools excluded), ``type(v) is float``, ``type(v) is
str``, ``type(v) is date`` (datetimes excluded).  Anything else promotes
the column to object storage.  That strictness is what keeps
``Table.fingerprint()`` (a digest over cell ``repr``\\ s) byte-identical
with the historical row store, so pre-columnar plan/answer caches and
cachenet payloads keep their keys.

The store mode is process-global: ``columnar`` (default) packs typed
columns, ``row`` forces plain-list storage everywhere.  The ``row`` mode
exists so benchmarks can measure the row-store baseline
(``REPRO_TABLE_STORE=row`` or :func:`set_table_store`).
"""

from __future__ import annotations

import os
import sys
from array import array
from datetime import date
from typing import Iterable, Iterator, Sequence

from repro.data.datatypes import DataType

_INT64_MIN = -(2 ** 63)
_INT64_MAX = 2 ** 63 - 1

_STORE_MODES = ("columnar", "row")

_store_mode = os.environ.get("REPRO_TABLE_STORE", "columnar")
if _store_mode not in _STORE_MODES:  # pragma: no cover - env misuse
    _store_mode = "columnar"


def table_store() -> str:
    """The active store mode: ``"columnar"`` or ``"row"``."""
    return _store_mode


def set_table_store(mode: str) -> str:
    """Set the store mode; returns the previous mode (for restoring)."""
    global _store_mode
    if mode not in _STORE_MODES:
        raise ValueError(f"unknown table store {mode!r}; "
                         f"expected one of {_STORE_MODES}")
    previous = _store_mode
    _store_mode = mode
    return previous


class Column:
    """One stored table column.  Immutable once handed to a ``Table``."""

    __slots__ = ("_cache",)

    def __init__(self) -> None:
        self._cache: list[object] | None = None

    def __len__(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def iter_values(self) -> Iterator[object]:  # pragma: no cover - abstract
        """Yield Python values (``None`` for nulls) without caching."""
        raise NotImplementedError

    def take(self, indices: Sequence[int]) -> "Column":  # pragma: no cover
        raise NotImplementedError

    def materialize(self) -> list[object]:
        """The column as a Python list (memoized; callers must not mutate)."""
        if self._cache is None:
            self._cache = list(self.iter_values())
        return self._cache

    def get(self, index: int) -> object:
        return self.materialize()[index]

    # Building hook: append *value* if this storage can represent it
    # exactly; return False (leaving the column unchanged) otherwise.
    def _append(self, value: object) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class ObjectColumn(Column):
    """Plain-list storage: modality cells, mixed types, the row store."""

    __slots__ = ("values",)

    def __init__(self, values: list[object] | None = None) -> None:
        super().__init__()
        self.values: list[object] = values if values is not None else []

    def __len__(self) -> int:
        return len(self.values)

    def iter_values(self) -> Iterator[object]:
        return iter(self.values)

    def materialize(self) -> list[object]:
        return self.values

    def get(self, index: int) -> object:
        return self.values[index]

    def take(self, indices: Sequence[int]) -> "ObjectColumn":
        values = self.values
        return ObjectColumn([values[i] for i in indices])

    def _append(self, value: object) -> bool:
        self.values.append(value)
        return True


class _MaskedColumn(Column):
    """Shared null-mask plumbing for the fixed-width typed columns."""

    __slots__ = ("data", "nulls")

    def __init__(self, data, nulls: bytearray) -> None:
        super().__init__()
        self.data = data
        self.nulls = nulls

    def __len__(self) -> int:
        return len(self.data)

    def _take_into(self, cls, indices: Sequence[int],
                   typecode: str) -> "Column":
        data = self.data
        nulls = self.nulls
        return cls(array(typecode, (data[i] for i in indices)),
                   bytearray(nulls[i] for i in indices))


class IntColumn(_MaskedColumn):
    """int64 storage (``array('q')``) with a null mask."""

    __slots__ = ()

    def __init__(self, data: array | None = None,
                 nulls: bytearray | None = None) -> None:
        super().__init__(data if data is not None else array("q"),
                         nulls if nulls is not None else bytearray())

    def iter_values(self) -> Iterator[object]:
        for raw, null in zip(self.data, self.nulls):
            yield None if null else raw

    def take(self, indices: Sequence[int]) -> "IntColumn":
        return self._take_into(IntColumn, indices, "q")

    def _append(self, value: object) -> bool:
        if value is None:
            self.data.append(0)
            self.nulls.append(1)
            return True
        if type(value) is int and _INT64_MIN <= value <= _INT64_MAX:
            self.data.append(value)
            self.nulls.append(0)
            return True
        return False


class FloatColumn(_MaskedColumn):
    """float64 storage (``array('d')``) with a null mask."""

    __slots__ = ()

    def __init__(self, data: array | None = None,
                 nulls: bytearray | None = None) -> None:
        super().__init__(data if data is not None else array("d"),
                         nulls if nulls is not None else bytearray())

    def iter_values(self) -> Iterator[object]:
        for raw, null in zip(self.data, self.nulls):
            yield None if null else raw

    def take(self, indices: Sequence[int]) -> "FloatColumn":
        return self._take_into(FloatColumn, indices, "d")

    def _append(self, value: object) -> bool:
        if value is None:
            self.data.append(0.0)
            self.nulls.append(1)
            return True
        if type(value) is float:
            self.data.append(value)
            self.nulls.append(0)
            return True
        return False


class BoolColumn(_MaskedColumn):
    """1-byte bool storage with a null mask."""

    __slots__ = ()

    def __init__(self, data: bytearray | None = None,
                 nulls: bytearray | None = None) -> None:
        super().__init__(data if data is not None else bytearray(),
                         nulls if nulls is not None else bytearray())

    def iter_values(self) -> Iterator[object]:
        for raw, null in zip(self.data, self.nulls):
            yield None if null else bool(raw)

    def take(self, indices: Sequence[int]) -> "BoolColumn":
        data = self.data
        nulls = self.nulls
        return BoolColumn(bytearray(data[i] for i in indices),
                          bytearray(nulls[i] for i in indices))

    def _append(self, value: object) -> bool:
        if value is None:
            self.data.append(0)
            self.nulls.append(1)
            return True
        if type(value) is bool:
            self.data.append(1 if value else 0)
            self.nulls.append(0)
            return True
        return False


class DateColumn(_MaskedColumn):
    """``datetime.date`` storage as proleptic-Gregorian ordinals."""

    __slots__ = ()

    def __init__(self, data: array | None = None,
                 nulls: bytearray | None = None) -> None:
        super().__init__(data if data is not None else array("q"),
                         nulls if nulls is not None else bytearray())

    def iter_values(self) -> Iterator[object]:
        fromordinal = date.fromordinal
        for raw, null in zip(self.data, self.nulls):
            yield None if null else fromordinal(raw)

    def take(self, indices: Sequence[int]) -> "DateColumn":
        return self._take_into(DateColumn, indices, "q")

    def _append(self, value: object) -> bool:
        if value is None:
            self.data.append(0)
            self.nulls.append(1)
            return True
        # datetime is a date subclass with a different repr; exclude it.
        if type(value) is date:
            self.data.append(value.toordinal())
            self.nulls.append(0)
            return True
        return False


class StringColumn(Column):
    """Dictionary-encoded interned strings: codes into a shared pool."""

    __slots__ = ("codes", "pool", "_index")

    def __init__(self, codes: array | None = None,
                 pool: list[str] | None = None) -> None:
        super().__init__()
        self.codes: array = codes if codes is not None else array("i")
        self.pool: list[str] = pool if pool is not None else []
        self._index: dict[str, int] | None = None

    def __len__(self) -> int:
        return len(self.codes)

    def iter_values(self) -> Iterator[object]:
        pool = self.pool
        for code in self.codes:
            yield None if code < 0 else pool[code]

    def take(self, indices: Sequence[int]) -> "StringColumn":
        codes = self.codes
        # The pool is shared with the source column (both are immutable
        # by convention), so a take is just a code gather.
        return StringColumn(array("i", (codes[i] for i in indices)),
                            self.pool)

    def code_of(self, text: str) -> int | None:
        """The dictionary code for *text*, or ``None`` when absent."""
        if self._index is None:
            self._index = {t: i for i, t in enumerate(self.pool)}
        return self._index.get(text)

    def _append(self, value: object) -> bool:
        if value is None:
            self.codes.append(-1)
            return True
        if type(value) is not str:
            return False
        if self._index is None:
            self._index = {text: i for i, text in enumerate(self.pool)}
        code = self._index.get(value)
        if code is None:
            code = len(self.pool)
            value = sys.intern(value)
            self.pool.append(value)
            self._index[value] = code
        self.codes.append(code)
        return True


_TYPED_STORES = {
    DataType.INTEGER: IntColumn,
    DataType.FLOAT: FloatColumn,
    DataType.BOOLEAN: BoolColumn,
    DataType.DATE: DateColumn,
    DataType.STRING: StringColumn,
}


class ColumnBuilder:
    """Streaming one-pass column construction with promote-on-mismatch.

    Appends feed the typed store chosen for *dtype*; the first value the
    typed store cannot represent exactly converts everything accumulated
    so far into an :class:`ObjectColumn` and object storage takes over.
    Generators can therefore feed a builder without a second pass —
    the basis of streaming lake ingestion.
    """

    __slots__ = ("_column",)

    def __init__(self, dtype: DataType) -> None:
        store = None
        if _store_mode == "columnar" and not dtype.is_modality:
            store = _TYPED_STORES.get(dtype)
        self._column: Column = store() if store is not None else ObjectColumn()

    def append(self, value: object) -> None:
        if not self._column._append(value):
            self._column = ObjectColumn(list(self._column.iter_values()))
            self._column.values.append(value)

    def extend(self, values: Iterable[object]) -> None:
        append = self.append
        for value in values:
            append(value)

    def finish(self) -> Column:
        column = self._column
        self._column = ObjectColumn()
        return column


def build_column(values: Iterable[object], dtype: DataType) -> Column:
    """Pack *values* into the best storage for *dtype* in one pass."""
    if isinstance(values, Column):
        return values
    builder = ColumnBuilder(dtype)
    builder.extend(values)
    return builder.finish()


def concat_columns(first: Column, second: Column,
                   dtype: DataType) -> Column:
    """*second* appended to *first* (neither input is modified)."""
    if type(first) is type(second):
        if isinstance(first, _MaskedColumn):
            return type(first)(first.data[:] + second.data,
                               first.nulls + second.nulls)
        if isinstance(first, StringColumn) and first.pool is second.pool:
            return StringColumn(first.codes[:] + second.codes, first.pool)
        if isinstance(first, ObjectColumn):
            return ObjectColumn(first.values + second.values)
    builder = ColumnBuilder(dtype)
    builder.extend(first.iter_values())
    builder.extend(second.iter_values())
    return builder.finish()

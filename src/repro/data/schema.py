"""Table schemas and their serialization into prompts.

The schema serialization format is taken from Figure 3 of the paper::

    paintings_metadata = table(num_rows=7912, columns=['title': 'str', ...],
                               description='...', foreign_keys=[...])
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.datatypes import DataType
from repro.errors import SchemaError, UnknownColumnError


@dataclass(frozen=True)
class ColumnSpec:
    """Name, datatype, and human description of one column."""

    name: str
    dtype: DataType
    description: str = ""

    def prompt_repr(self) -> str:
        return f"'{self.name}': '{self.dtype.value}'"

    def to_dict(self) -> dict:
        return {"name": self.name, "dtype": self.dtype.value,
                "description": self.description}

    @classmethod
    def from_dict(cls, data: dict) -> "ColumnSpec":
        return cls(name=data["name"], dtype=DataType.parse(data["dtype"]),
                   description=data.get("description", ""))


@dataclass(frozen=True)
class ForeignKey:
    """A join edge between two tables (``games.team_id -> teams.team_id``)."""

    column: str
    other_table: str
    other_column: str

    def prompt_repr(self, table: str) -> str:
        return (f"{table}.{self.column} = "
                f"{self.other_table}.{self.other_column}")

    def to_dict(self) -> dict:
        return {"column": self.column, "other_table": self.other_table,
                "other_column": self.other_column}

    @classmethod
    def from_dict(cls, data: dict) -> "ForeignKey":
        return cls(column=data["column"], other_table=data["other_table"],
                   other_column=data["other_column"])


@dataclass
class Schema:
    """Ordered column specifications plus join metadata."""

    columns: list[ColumnSpec]
    description: str = ""
    foreign_keys: list[ForeignKey] = field(default_factory=list)
    primary_key: str | None = None

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(names) != len(set(names)):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise SchemaError(f"duplicate column names: {', '.join(dupes)}")

    @classmethod
    def of(cls, *specs: tuple[str, DataType], description: str = "") -> "Schema":
        """Shorthand: ``Schema.of(('title', DataType.STRING), ...)``."""
        return cls([ColumnSpec(n, t) for n, t in specs], description=description)

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    def __contains__(self, name: str) -> bool:
        return any(c.name == name for c in self.columns)

    def __len__(self) -> int:
        return len(self.columns)

    def column(self, name: str) -> ColumnSpec:
        for spec in self.columns:
            if spec.name == name:
                return spec
        raise UnknownColumnError(name, self.column_names)

    def dtype(self, name: str) -> DataType:
        return self.column(name).dtype

    @property
    def modality_columns(self) -> list[ColumnSpec]:
        """Columns carrying IMAGE/TEXT objects."""
        return [c for c in self.columns if c.dtype.is_modality]

    @property
    def relational_columns(self) -> list[ColumnSpec]:
        return [c for c in self.columns if not c.dtype.is_modality]

    def with_column(self, spec: ColumnSpec) -> "Schema":
        """A copy of this schema with one column appended."""
        return Schema(self.columns + [spec], description=self.description,
                      foreign_keys=list(self.foreign_keys),
                      primary_key=self.primary_key)

    def without_columns(self, names: set[str]) -> "Schema":
        kept = [c for c in self.columns if c.name not in names]
        return Schema(kept, description=self.description,
                      foreign_keys=[fk for fk in self.foreign_keys
                                    if fk.column not in names],
                      primary_key=(self.primary_key
                                   if self.primary_key not in names else None))

    def to_dict(self) -> dict:
        return {
            "columns": [spec.to_dict() for spec in self.columns],
            "description": self.description,
            "foreign_keys": [fk.to_dict() for fk in self.foreign_keys],
            "primary_key": self.primary_key,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Schema":
        return cls(
            columns=[ColumnSpec.from_dict(c) for c in data["columns"]],
            description=data.get("description", ""),
            foreign_keys=[ForeignKey.from_dict(fk)
                          for fk in data.get("foreign_keys", [])],
            primary_key=data.get("primary_key"))

    def prompt_repr(self, table_name: str, num_rows: int) -> str:
        """Serialize for a CAESURA prompt (Figure 3 format)."""
        cols = ", ".join(c.prompt_repr() for c in self.columns)
        parts = [f"num_rows={num_rows}", f"columns=[{cols}]"]
        if self.description:
            parts.append(f"description='{self.description}'")
        if self.foreign_keys:
            fks = ", ".join(f"'{fk.prompt_repr(table_name)}'"
                            for fk in self.foreign_keys)
            parts.append(f"foreign_keys=[{fks}]")
        return f"{table_name} = table({', '.join(parts)})"

"""CSV import/export for relational tables.

Modality columns cannot round-trip through CSV; exporting a table writes the
``repr`` of modality objects and importing always yields relational columns
(with optional explicit datatypes).
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Mapping

from repro.data.datatypes import DataType, coerce
from repro.data.schema import ColumnSpec, Schema
from repro.data.table import Table


def _parse_cell(text: str) -> object:
    """Best-effort typed parse of one CSV cell."""
    if text == "":
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    return text


def read_csv_text(text: str, dtypes: Mapping[str, DataType] | None = None,
                  description: str = "") -> Table:
    """Parse CSV *text* (header row required) into a :class:`Table`."""
    reader = csv.reader(io.StringIO(text))
    rows = list(reader)
    if not rows:
        return Table(Schema([], description=description), {})
    header, *data = rows
    columns: dict[str, list[object]] = {name: [] for name in header}
    for row in data:
        for name, cell in zip(header, row):
            columns[name].append(_parse_cell(cell))
    if dtypes:
        specs = []
        for name in header:
            dtype = dtypes.get(name)
            if dtype is None:
                from repro.data.datatypes import infer_column_type
                dtype = infer_column_type(columns[name])
            else:
                columns[name] = [coerce(v, dtype) for v in columns[name]]
            specs.append(ColumnSpec(name, dtype))
        return Table(Schema(specs, description=description), columns)
    return Table.infer(columns, description=description)


def read_csv(path: str | Path, dtypes: Mapping[str, DataType] | None = None,
             description: str = "") -> Table:
    """Read a CSV file into a :class:`Table`."""
    with open(path, newline="") as handle:
        return read_csv_text(handle.read(), dtypes=dtypes,
                             description=description)


def write_csv_text(table: Table) -> str:
    """Serialize *table* to CSV text (modality objects via ``repr``)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(table.column_names)
    modality = {c.name for c in table.schema.modality_columns}
    for row in table.rows():
        cells = []
        for name in table.column_names:
            value = row[name]
            if value is None:
                cells.append("")
            elif name in modality:
                cells.append(repr(value))
            else:
                cells.append(str(value))
        writer.writerow(cells)
    return buffer.getvalue()


def write_csv(table: Table, path: str | Path) -> None:
    with open(path, "w", newline="") as handle:
        handle.write(write_csv_text(table))

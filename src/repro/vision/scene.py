"""Scene specifications for synthetic artwork images.

A :class:`SceneSpec` is the *ground truth* of one painting: which objects it
depicts and where.  The renderer turns it into pixels; the simulated vision
model must recover the objects from those pixels alone.  Ground truth is
kept by the dataset generator for oracle evaluation — it is never shown to
the vision model or the planner.

Each object category has a unique glyph colour.  Colours are chosen with
pairwise L-infinity distance >= 60 and far from the background gray band, so
that colour segmentation with tolerance 30 cannot confuse categories.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Category:
    """One detectable object category."""

    name: str
    color: tuple[int, int, int]
    shape: str  # circle | square | diamond | cross | triangle
    synonyms: tuple[str, ...] = ()


#: The category registry.  Names double as the canonical noun used in
#: questions ("How many swords are depicted?").
CATEGORIES: dict[str, Category] = {c.name: c for c in [
    Category("madonna", (0, 0, 255), "circle", ("madonnas", "mary", "virgin")),
    Category("child", (255, 128, 255), "circle", ("children", "infant", "baby")),
    Category("halo", (255, 255, 0), "circle", ("halos", "haloes", "nimbus")),
    Category("sword", (0, 255, 255), "cross", ("swords", "blade", "blades")),
    Category("dog", (128, 64, 0), "square", ("dogs", "hound", "hounds")),
    Category("crown", (255, 0, 0), "triangle", ("crowns",)),
    Category("flower", (255, 0, 128), "diamond", ("flowers", "blossom",
                                                  "blossoms", "rose", "roses")),
    Category("tree", (0, 128, 0), "triangle", ("trees",)),
    Category("boat", (128, 0, 255), "square", ("boats", "ship", "ships")),
    Category("mountain", (0, 255, 0), "triangle", ("mountains",)),
    Category("sun", (255, 255, 255), "circle", ("suns",)),
    Category("cross", (0, 0, 128), "cross", ("crosses", "crucifix")),
    Category("bird", (128, 255, 128), "diamond", ("birds", "dove", "doves")),
    Category("horse", (64, 16, 16), "square", ("horses",)),
    Category("angel", (255, 128, 0), "circle", ("angels",)),
    Category("skull", (192, 192, 192), "diamond", ("skulls",)),
]}


def category_for_word(word: str) -> Category | None:
    """Resolve a (possibly plural / synonym) noun to a category."""
    lowered = word.strip().lower()
    if lowered in CATEGORIES:
        return CATEGORIES[lowered]
    for category in CATEGORIES.values():
        if lowered in category.synonyms:
            return category
    # Naive singularization: strip a trailing 's'.
    if lowered.endswith("s") and lowered[:-1] in CATEGORIES:
        return CATEGORIES[lowered[:-1]]
    return None


def categories_in_phrase(phrase: str) -> list[Category]:
    """All categories mentioned in a free-text phrase, in order, de-duplicated.

    Used both by the simulated vision model (to understand questions) and by
    the NL intent parser (to spot multi-modal predicates such as
    "depicting Madonna and Child").
    """
    import re

    found: list[Category] = []
    for word in re.findall(r"[A-Za-z]+", phrase.lower()):
        category = category_for_word(word)
        if category is not None and category not in found:
            found.append(category)
    return found


@dataclass(frozen=True)
class SceneObject:
    """One object instance placed in a scene."""

    category: str
    cx: int
    cy: int
    size: int  # radius-ish extent in pixels

    def __post_init__(self) -> None:
        if self.category not in CATEGORIES:
            raise ValueError(f"unknown category {self.category!r}")


@dataclass
class SceneSpec:
    """Ground truth of one synthetic painting."""

    width: int = 64
    height: int = 64
    background_seed: int = 0
    objects: list[SceneObject] = field(default_factory=list)

    def count(self, category: str) -> int:
        return sum(1 for o in self.objects if o.category == category)

    def depicts(self, category: str) -> bool:
        return self.count(category) > 0

    @property
    def categories(self) -> list[str]:
        seen: list[str] = []
        for obj in self.objects:
            if obj.category not in seen:
                seen.append(obj.category)
        return seen


def build_scene(object_counts: dict[str, int], seed: int,
                width: int = 64, height: int = 64,
                min_size: int = 3, max_size: int = 5) -> SceneSpec:
    """Place the requested objects without overlap via rejection sampling.

    If an object genuinely cannot be placed after many attempts it is
    dropped — and therefore also absent from the returned ground truth, so
    spec and pixels always agree.
    """
    rng = random.Random(seed)
    scene = SceneSpec(width=width, height=height,
                      background_seed=rng.randrange(2 ** 31))
    placed: list[SceneObject] = []
    for category, count in sorted(object_counts.items()):
        for _ in range(count):
            size = rng.randint(min_size, max_size)
            position = _find_spot(rng, placed, size, width, height)
            if position is None:
                continue
            obj = SceneObject(category, position[0], position[1], size)
            placed.append(obj)
    scene.objects = placed
    return scene


def _find_spot(rng: random.Random, placed: list[SceneObject], size: int,
               width: int, height: int,
               attempts: int = 200) -> tuple[int, int] | None:
    margin = size + 1
    for _ in range(attempts):
        cx = rng.randint(margin, width - margin - 1)
        cy = rng.randint(margin, height - margin - 1)
        clear = all(
            max(abs(cx - other.cx), abs(cy - other.cy))
            > size + other.size + 2
            for other in placed)
        if clear:
            return cx, cy
    return None

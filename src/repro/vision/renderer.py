"""Rasterize scene specifications into RGB images.

The background is a muted gray texture (channels in [90, 140] with ±10
jitter).  Each object is drawn as a solid glyph in its category colour with
small per-pixel jitter (±8) — close enough that the simulated vision model's
colour segmentation (tolerance 30) detects it, far enough from every other
category colour (pairwise L∞ ≥ 60) that no confusion is possible.
"""

from __future__ import annotations

import numpy as np

from repro.vision.image import Image
from repro.vision.scene import CATEGORIES, SceneObject, SceneSpec

BACKGROUND_LOW = 90
BACKGROUND_HIGH = 140
COLOR_JITTER = 8


def render_scene(scene: SceneSpec, path: str = "") -> Image:
    """Render *scene* into an :class:`Image`."""
    rng = np.random.default_rng(scene.background_seed)
    base = rng.integers(BACKGROUND_LOW, BACKGROUND_HIGH,
                        size=(scene.height, scene.width, 1), dtype=np.int16)
    jitter = rng.integers(-10, 11, size=(scene.height, scene.width, 3),
                          dtype=np.int16)
    pixels = np.clip(base + jitter, 0, 255)

    for obj in scene.objects:
        _draw_object(pixels, obj, rng)
    return Image(pixels.astype(np.uint8), path=path)


class LazyImage(Image):
    """An :class:`Image` whose raster is rendered on first pixel access.

    Streaming lake generation stores one of these per painting instead of
    an eagerly rendered raster: the scene spec it wraps is a few dozen
    bytes, so a scale-1000 image collection fits in memory while the
    rasters (12 KB each) only ever exist for images a query touches.

    Rendering is deterministic in the scene spec, so every derived value
    (pixels, :meth:`fingerprint`, ``to_dict``) is byte-identical with the
    eager ``render_scene(scene, path)`` image.  :meth:`fingerprint` on an
    un-rendered image hashes a *transient* raster and keeps only the
    digest — a full-lake content fingerprint pass stays one-raster-peak
    instead of materializing the whole collection.
    """

    def __init__(self, scene: SceneSpec, path: str = ""):
        # Deliberately no super().__init__: pixels is lazy here.
        self._scene = scene
        self._pixels: np.ndarray | None = None
        self.path = path
        self._fingerprint: str | None = None

    @property
    def pixels(self) -> np.ndarray:
        if self._pixels is None:
            self._pixels = render_scene(self._scene, path=self.path).pixels
        return self._pixels

    @property
    def rendered(self) -> bool:
        """Whether the raster has been materialized (tests/telemetry)."""
        return self._pixels is not None

    @property
    def height(self) -> int:
        return self._scene.height

    @property
    def width(self) -> int:
        return self._scene.width

    def fingerprint(self) -> str:
        if self._fingerprint is None:
            if self._pixels is None:
                # Hash a transient render; drop the raster, keep the digest.
                self._fingerprint = render_scene(
                    self._scene, path=self.path).fingerprint()
            else:
                self._fingerprint = Image(self._pixels,
                                          path=self.path).fingerprint()
        return self._fingerprint


def _draw_object(pixels: np.ndarray, obj: SceneObject,
                 rng: np.random.Generator) -> None:
    category = CATEGORIES[obj.category]
    mask = glyph_mask(pixels.shape[0], pixels.shape[1], category.shape,
                      obj.cx, obj.cy, obj.size)
    count = int(mask.sum())
    if count == 0:
        return
    color = np.array(category.color, dtype=np.int16)
    noise = rng.integers(-COLOR_JITTER, COLOR_JITTER + 1,
                         size=(count, 3), dtype=np.int16)
    pixels[mask] = np.clip(color[None, :] + noise, 0, 255)


def glyph_mask(height: int, width: int, shape: str,
               cx: int, cy: int, size: int) -> np.ndarray:
    """Boolean mask of the glyph footprint (shared with tests)."""
    ys, xs = np.mgrid[0:height, 0:width]
    dx = xs - cx
    dy = ys - cy
    if shape == "circle":
        return dx * dx + dy * dy <= size * size
    if shape == "square":
        return (np.abs(dx) <= size) & (np.abs(dy) <= size)
    if shape == "diamond":
        return np.abs(dx) + np.abs(dy) <= size
    if shape == "cross":
        thickness = max(1, size // 2)
        vertical = (np.abs(dx) <= thickness) & (np.abs(dy) <= size)
        horizontal = (np.abs(dy) <= thickness) & (np.abs(dx) <= size)
        return vertical | horizontal
    if shape == "triangle":
        inside = (dy >= -size) & (dy <= size)
        half_width = (dy + size) / 2.0
        return inside & (np.abs(dx) <= half_width)
    raise ValueError(f"unknown glyph shape {shape!r}")

"""Vision substrate: synthetic raster images + simulated BLIP-2 model."""

from repro.vision.blip import Blip2Sim, Detection
from repro.vision.image import Image
from repro.vision.renderer import LazyImage, glyph_mask, render_scene
from repro.vision.scene import (CATEGORIES, Category, SceneObject, SceneSpec,
                                build_scene, categories_in_phrase,
                                category_for_word)

__all__ = [
    "Blip2Sim",
    "CATEGORIES",
    "Category",
    "Detection",
    "Image",
    "LazyImage",
    "SceneObject",
    "SceneSpec",
    "build_scene",
    "categories_in_phrase",
    "category_for_word",
    "glyph_mask",
    "render_scene",
]

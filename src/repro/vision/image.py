"""The IMAGE modality object: a raster image backed by a numpy array."""

from __future__ import annotations

import base64
import hashlib

import numpy as np


class Image:
    """An RGB raster image (``uint8``, shape ``(height, width, 3)``).

    Instances populate the ``image`` column of image-collection tables.  The
    simulated vision model (:class:`repro.vision.blip.Blip2Sim`) consumes
    only :attr:`pixels` — never any scene metadata — so information must be
    recovered from the raster itself.
    """

    def __init__(self, pixels: np.ndarray, path: str = ""):
        pixels = np.asarray(pixels)
        if pixels.ndim != 3 or pixels.shape[2] != 3:
            raise ValueError(
                f"expected (H, W, 3) RGB array, got shape {pixels.shape}")
        self.pixels = pixels.astype(np.uint8, copy=False)
        self.path = path
        self._fingerprint: str | None = None

    @property
    def height(self) -> int:
        return int(self.pixels.shape[0])

    @property
    def width(self) -> int:
        return int(self.pixels.shape[1])

    def copy(self) -> "Image":
        return Image(self.pixels.copy(), path=self.path)

    def fingerprint(self) -> str:
        """Content digest of the raster (answer-cache key component).

        Computed lazily from path, shape, and pixel bytes, then memoized —
        images are immutable by convention, like :class:`~repro.data.table.
        Table` columns.
        """
        if self._fingerprint is None:
            digest = hashlib.sha256()
            digest.update(self.path.encode("utf-8"))
            digest.update(repr(self.pixels.shape).encode("ascii"))
            digest.update(self.pixels.tobytes())
            self._fingerprint = digest.hexdigest()[:24]
        return self._fingerprint

    def to_dict(self) -> dict:
        """JSON-safe lossless encoding (raw pixel bytes, base64)."""
        return {
            "path": self.path,
            "height": self.height,
            "width": self.width,
            "pixels_b64": base64.b64encode(self.pixels.tobytes())
                          .decode("ascii"),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Image":
        raw = base64.b64decode(data["pixels_b64"])
        pixels = np.frombuffer(raw, dtype=np.uint8).reshape(
            (data["height"], data["width"], 3))
        return cls(pixels.copy(), path=data.get("path", ""))

    def __repr__(self) -> str:
        label = self.path or "unnamed"
        return f"<Image {self.width}x{self.height} {label}>"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Image):
            return NotImplemented
        return (self.path == other.path
                and np.array_equal(self.pixels, other.pixels))

    def __hash__(self) -> int:
        return hash((self.path, self.pixels.tobytes()))

"""Simulated BLIP-2: Visual Question Answering and image-select over rasters.

The real CAESURA prototype uses BLIP-2 [Li et al., 2023] for its VisualQA
and Image Select operators.  This simulator reproduces the operator
*contract* — (image, natural-language question) → typed answer — with a
pixel-level detector:

1. colour segmentation: per category, mask pixels within L∞ tolerance of the
   category colour;
2. connected-component labelling (``scipy.ndimage.label``);
3. components above a minimum area count as object instances.

The detector sees only :attr:`Image.pixels`; the scene ground truth stays in
the dataset generator.  An optional miss-probability noise model lets
robustness experiments degrade the "model".
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from repro.errors import OperatorError
from repro.vision.image import Image
from repro.vision.scene import CATEGORIES, Category, categories_in_phrase

COLOR_TOLERANCE = 30
MIN_COMPONENT_AREA = 5

_COUNT_PATTERNS = (
    re.compile(r"how many\b(?P<rest>.*)", re.IGNORECASE),
    re.compile(r"(?:what is the )?number of\b(?P<rest>.*)", re.IGNORECASE),
    re.compile(r"count (?:the |of )?(?P<rest>.*)", re.IGNORECASE),
)
_YESNO_PATTERNS = (
    re.compile(r"^(?:is|are)\b(?P<rest>.*)", re.IGNORECASE),
    re.compile(r"^(?:does|do) the (?:image|painting|picture) (?:show|depict|"
               r"contain)\b(?P<rest>.*)", re.IGNORECASE),
)
_WHAT_PATTERN = re.compile(
    r"what (?:is|objects? (?:are|is)) (?:depicted|shown|visible)",
    re.IGNORECASE)


@dataclass(frozen=True)
class Detection:
    """One detected object instance."""

    category: str
    cx: float
    cy: float
    area: int


class Blip2Sim:
    """Simulated BLIP-2 visual model (detection + VQA + yes/no select)."""

    def __init__(self, tolerance: int = COLOR_TOLERANCE,
                 min_area: int = MIN_COMPONENT_AREA,
                 miss_probability: float = 0.0, seed: int = 0):
        if not 0.0 <= miss_probability <= 1.0:
            raise ValueError("miss_probability must be within [0, 1]")
        self.tolerance = tolerance
        self.min_area = min_area
        self.miss_probability = miss_probability
        self._rng = random.Random(seed)

    # ------------------------------------------------------------------
    # Detection
    # ------------------------------------------------------------------

    def detect(self, image: Image) -> list[Detection]:
        """All object instances found in *image*, every category."""
        detections: list[Detection] = []
        pixels = image.pixels.astype(np.int16)
        for category in CATEGORIES.values():
            detections.extend(self._detect_category(pixels, category))
        if self.miss_probability > 0.0:
            detections = [d for d in detections
                          if self._rng.random() >= self.miss_probability]
        return detections

    def _detect_category(self, pixels: np.ndarray,
                         category: Category) -> list[Detection]:
        color = np.array(category.color, dtype=np.int16)
        diff = np.abs(pixels - color[None, None, :])
        mask = (diff <= self.tolerance).all(axis=2)
        if not mask.any():
            return []
        labelled, count = ndimage.label(mask)
        detections = []
        for index in range(1, count + 1):
            component = labelled == index
            area = int(component.sum())
            if area < self.min_area:
                continue
            ys, xs = np.nonzero(component)
            detections.append(Detection(category.name,
                                        float(xs.mean()), float(ys.mean()),
                                        area))
        return detections

    def count(self, image: Image, category: str) -> int:
        return sum(1 for d in self.detect(image) if d.category == category)

    def depicted_categories(self, image: Image) -> list[str]:
        seen: list[str] = []
        for detection in self.detect(image):
            if detection.category not in seen:
                seen.append(detection.category)
        return seen

    # ------------------------------------------------------------------
    # Visual Question Answering
    # ------------------------------------------------------------------

    def answer(self, image: Image, question: str) -> object:
        """Answer a natural-language *question* about *image*.

        Supported question families (mirroring BLIP-2 usage in the paper):
        counting ("How many swords are depicted?"), yes/no ("Is Madonna and
        Child depicted?") and open listing ("What is depicted?").
        Yes/no answers are the literal strings ``"yes"`` / ``"no"`` — the
        interleaved mapping phase relies on observing those values.
        """
        question = question.strip()
        if not question:
            raise OperatorError("empty VQA question", operator="VisualQA")

        for pattern in _COUNT_PATTERNS:
            match = pattern.search(question)
            if match:
                categories = categories_in_phrase(match.group("rest"))
                if not categories:
                    raise OperatorError(
                        f"VQA cannot resolve object in question {question!r}",
                        operator="VisualQA")
                return self.count(image, categories[0].name)

        if _WHAT_PATTERN.search(question):
            return ", ".join(self.depicted_categories(image)) or "nothing"

        for pattern in _YESNO_PATTERNS:
            match = pattern.search(question)
            if match:
                categories = categories_in_phrase(match.group("rest"))
                if not categories:
                    raise OperatorError(
                        f"VQA cannot resolve object in question {question!r}",
                        operator="VisualQA")
                present = self.depicted_categories(image)
                ok = all(c.name in present for c in categories)
                return "yes" if ok else "no"

        # Fall back: any mentioned category → yes/no on all of them.
        categories = categories_in_phrase(question)
        if categories:
            present = self.depicted_categories(image)
            ok = all(c.name in present for c in categories)
            return "yes" if ok else "no"
        raise OperatorError(
            f"VQA does not understand question {question!r}",
            operator="VisualQA")

    # ------------------------------------------------------------------
    # Image Select
    # ------------------------------------------------------------------

    def matches_description(self, image: Image, description: str) -> bool:
        """True when every object mentioned in *description* is depicted.

        Backs the Image Select operator ("select images showing Madonna and
        Child").
        """
        categories = categories_in_phrase(description)
        if not categories:
            raise OperatorError(
                f"Image Select cannot resolve description {description!r}",
                operator="Image Select")
        present = set(self.depicted_categories(image))
        return all(c.name in present for c in categories)

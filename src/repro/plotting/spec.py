"""Plot specifications — the output of the Plot operator.

The paper renders plots with seaborn; for plan-quality purposes what matters
is the *specification* the planner produced (plot kind, which column on
which axis, over which table).  :class:`PlotSpec` captures exactly that and
can be rendered to ASCII (:mod:`repro.plotting.ascii`) for the examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.datatypes import decode_scalar, encode_scalar

PLOT_KINDS = ("bar", "line", "scatter", "hist")


@dataclass
class PlotSpec:
    """A fully-specified plot: kind + axes + data series."""

    kind: str
    x_label: str
    y_label: str
    x_values: list[object] = field(default_factory=list)
    y_values: list[object] = field(default_factory=list)
    title: str = ""

    def __post_init__(self) -> None:
        if self.kind not in PLOT_KINDS:
            raise ValueError(
                f"unknown plot kind {self.kind!r}; expected one of "
                f"{', '.join(PLOT_KINDS)}")
        if len(self.x_values) != len(self.y_values):
            raise ValueError(
                f"x/y length mismatch: {len(self.x_values)} vs "
                f"{len(self.y_values)}")

    @property
    def num_points(self) -> int:
        return len(self.x_values)

    def signature(self) -> tuple[str, str, str]:
        """(kind, x_label, y_label) — used by the plan-quality judge."""
        return (self.kind, self.x_label, self.y_label)

    def series(self) -> list[tuple[object, object]]:
        return list(zip(self.x_values, self.y_values))

    def to_dict(self) -> dict:
        """Lossless JSON-safe encoding (axis values may include dates)."""
        return {
            "kind": self.kind,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "x_values": [encode_scalar(v) for v in self.x_values],
            "y_values": [encode_scalar(v) for v in self.y_values],
            "title": self.title,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PlotSpec":
        return cls(
            kind=data["kind"],
            x_label=data["x_label"],
            y_label=data["y_label"],
            x_values=[decode_scalar(v) for v in data["x_values"]],
            y_values=[decode_scalar(v) for v in data["y_values"]],
            title=data.get("title", ""))

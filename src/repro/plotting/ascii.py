"""Deterministic ASCII rendering of :class:`~repro.plotting.spec.PlotSpec`."""

from __future__ import annotations

from repro.plotting.spec import PlotSpec

_BAR_CHAR = "█"
_MAX_BAR_WIDTH = 40


def render_plot(spec: PlotSpec, width: int = _MAX_BAR_WIDTH) -> str:
    """Render *spec* as plain text (bar charts horizontal, lines as sparkline
    rows, scatter/hist as simple grids)."""
    if spec.kind == "bar":
        return _render_bar(spec, width)
    if spec.kind == "line":
        return _render_line(spec, width)
    if spec.kind == "scatter":
        return _render_scatter(spec)
    return _render_hist(spec, width)


def _numeric(values: list[object]) -> list[float]:
    numbers = []
    for value in values:
        try:
            numbers.append(float(value))  # type: ignore[arg-type]
        except (TypeError, ValueError):
            numbers.append(0.0)
    return numbers


def _header(spec: PlotSpec) -> list[str]:
    lines = []
    if spec.title:
        lines.append(spec.title)
    lines.append(f"[{spec.kind}] x={spec.x_label}, y={spec.y_label}")
    return lines


def _render_bar(spec: PlotSpec, width: int) -> str:
    lines = _header(spec)
    if not spec.x_values:
        lines.append("(no data)")
        return "\n".join(lines)
    ys = _numeric(spec.y_values)
    top = max(max(ys), 1e-9)
    label_width = max(len(str(x)) for x in spec.x_values)
    for x, y_raw, y in zip(spec.x_values, spec.y_values, ys):
        bar = _BAR_CHAR * max(0, round(width * y / top))
        lines.append(f"{str(x).rjust(label_width)} | {bar} {y_raw}")
    return "\n".join(lines)


def _render_line(spec: PlotSpec, width: int) -> str:
    lines = _header(spec)
    ys = _numeric(spec.y_values)
    if not ys:
        lines.append("(no data)")
        return "\n".join(lines)
    low, high = min(ys), max(ys)
    span = (high - low) or 1.0
    levels = " .:-=+*#%@"
    marks = "".join(levels[int((y - low) / span * (len(levels) - 1))]
                    for y in ys)
    lines.append(marks)
    lines.append(f"range: [{low}, {high}] over {len(ys)} points")
    return "\n".join(lines)


def _render_scatter(spec: PlotSpec, grid: int = 20) -> str:
    lines = _header(spec)
    xs, ys = _numeric(spec.x_values), _numeric(spec.y_values)
    if not xs:
        lines.append("(no data)")
        return "\n".join(lines)
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0
    cells = [[" "] * grid for _ in range(grid)]
    for x, y in zip(xs, ys):
        col = int((x - x_low) / x_span * (grid - 1))
        row = grid - 1 - int((y - y_low) / y_span * (grid - 1))
        cells[row][col] = "o"
    lines.extend("|" + "".join(row) + "|" for row in cells)
    return "\n".join(lines)


def _render_hist(spec: PlotSpec, width: int, bins: int = 10) -> str:
    lines = _header(spec)
    values = _numeric(spec.y_values or spec.x_values)
    if not values:
        lines.append("(no data)")
        return "\n".join(lines)
    low, high = min(values), max(values)
    span = (high - low) or 1.0
    counts = [0] * bins
    for value in values:
        index = min(bins - 1, int((value - low) / span * bins))
        counts[index] += 1
    top = max(counts)
    for i, count in enumerate(counts):
        left = low + span * i / bins
        bar = _BAR_CHAR * (round(width * count / top) if top else 0)
        lines.append(f"{left:10.2f} | {bar} {count}")
    return "\n".join(lines)

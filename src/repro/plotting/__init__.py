"""Plot specifications and ASCII rendering."""

from repro.plotting.ascii import render_plot
from repro.plotting.spec import PLOT_KINDS, PlotSpec

__all__ = ["PLOT_KINDS", "PlotSpec", "render_plot"]

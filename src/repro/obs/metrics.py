"""The session-level metrics registry: counters and latency histograms.

One :class:`MetricsRegistry` lives on each :class:`~repro.session.Session`
and accumulates across every query and batch of that session — the
numbers a ``/metrics`` endpoint of the ROADMAP's query service would
scrape.  Engines record into it after every query (counts, cache
locality, token/cost totals, per-phase latencies); the process backend's
worker lanes keep a local registry and ship per-query deltas back over
the JSON pipe (:meth:`delta_since` / :meth:`merge_delta`), so the parent
registry stays complete under every execution backend.

Thread safety: one internal lock guards all state — any number of
concurrent thread-backend engines may record into one registry.

Determinism: :meth:`snapshot` is a pure, stable function of the registry
state — keys sorted, bucket bounds fixed, derived rates computed with
fixed rounding — so two identical runs produce identical counter
snapshots and repeated snapshots of one registry are byte-identical.
(Latency sums are wall-clock and therefore vary run to run; counts and
counters do not.)
"""

from __future__ import annotations

import json
import re
import threading

#: Upper bounds (seconds) of the latency histogram buckets; the implicit
#: final bucket is ``+inf``.  Fixed so snapshots are comparable across
#: sessions, processes, and commits.
LATENCY_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
                   0.5, 1.0, 2.5, 5.0, 10.0)


def render_snapshot(snapshot: dict) -> str:
    """Canonical JSON text of a metrics snapshot.

    Sorted keys, two-space indent, trailing newline — the one encoding
    shared by the service's ``GET /metrics`` endpoint, ``repro batch
    --metrics-file``, and the bench harness's ``--metrics-output``, so a
    scraped snapshot and a dumped file diff cleanly against each other.
    """
    return json.dumps(snapshot, indent=2, sort_keys=True) + "\n"


#: Prometheus metric names allow ``[a-zA-Z_:][a-zA-Z0-9_:]*``; anything
#: else in a counter name is folded to ``_``.
_PROM_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    sanitized = _PROM_BAD.sub("_", name)
    if not sanitized or sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return f"repro_{sanitized}"


def _prom_value(value: float) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def render_prometheus(snapshot: dict) -> str:
    """A metrics snapshot in Prometheus text exposition format (0.0.4).

    Counters render as ``counter`` samples, derived rates as ``gauge``,
    histograms as the standard ``_bucket``/``_sum``/``_count`` triple
    (bucket counts are already cumulative in the snapshot).  The nested
    ``cachenet_server`` block a tier-backed
    :meth:`~repro.session.Session.observability_snapshot` includes is
    flattened to ``repro_cachenet_server_*`` gauges, numeric leaves
    only.  Serve with ``GET /metrics?format=prometheus``; content type
    ``text/plain; version=0.0.4``.
    """
    lines: list[str] = []

    def emit(name: str, kind: str, samples: list[str]) -> None:
        lines.append(f"# TYPE {name} {kind}")
        lines.extend(samples)

    for name in sorted(snapshot.get("counters", {})):
        value = snapshot["counters"][name]
        if not isinstance(value, (int, float)):
            continue
        metric = _prom_name(name)
        emit(metric, "counter", [f"{metric} {_prom_value(value)}"])
    for name in sorted(snapshot.get("histograms", {})):
        histogram = snapshot["histograms"][name]
        metric = _prom_name(name + "_seconds")
        samples = []
        for bound, count in histogram.get("buckets", {}).items():
            samples.append(f'{metric}_bucket{{le="{bound}"}} {count}')
        samples.append(f"{metric}_sum "
                       f"{_prom_value(histogram.get('sum_seconds', 0.0))}")
        samples.append(f"{metric}_count {histogram.get('count', 0)}")
        emit(metric, "histogram", samples)
    for name in sorted(snapshot.get("derived", {})):
        value = snapshot["derived"][name]
        if not isinstance(value, (int, float)):
            continue
        metric = _prom_name(name)
        emit(metric, "gauge", [f"{metric} {_prom_value(value)}"])
    server = snapshot.get("cachenet_server")
    if isinstance(server, dict):
        for name in sorted(server):
            value = server[name]
            if isinstance(value, bool) or not isinstance(value,
                                                         (int, float)):
                continue
            metric = _prom_name(f"cachenet_server_{name}")
            emit(metric, "gauge", [f"{metric} {_prom_value(value)}"])
    return "\n".join(lines) + "\n"


class _Histogram:
    """Fixed-bucket latency histogram (cumulative counts on snapshot)."""

    __slots__ = ("counts", "total", "sum_seconds")

    def __init__(self) -> None:
        self.counts = [0] * (len(LATENCY_BUCKETS) + 1)
        self.total = 0
        self.sum_seconds = 0.0

    def observe(self, seconds: float) -> None:
        for i, bound in enumerate(LATENCY_BUCKETS):
            if seconds <= bound:
                self.counts[i] += 1
                break
        else:
            self.counts[-1] += 1
        self.total += 1
        self.sum_seconds += seconds

    def state(self) -> dict:
        return {"counts": list(self.counts), "total": self.total,
                "sum_seconds": self.sum_seconds}

    def merge_state(self, state: dict) -> None:
        for i, value in enumerate(state.get("counts", [])):
            self.counts[i] += value
        self.total += state.get("total", 0)
        self.sum_seconds += state.get("sum_seconds", 0.0)


class MetricsRegistry:
    """Thread-safe counters + latency histograms with deterministic
    snapshots."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._histograms: dict[str, _Histogram] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def increment(self, name: str, value: float = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def observe(self, name: str, seconds: float) -> None:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = _Histogram()
            histogram.observe(seconds)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------

    def counters(self) -> dict[str, float]:
        """A consistent copy of the counter map (keys sorted)."""
        with self._lock:
            return {name: self._counters[name]
                    for name in sorted(self._counters)}

    def snapshot(self) -> dict:
        """The full metrics record, JSON-safe and deterministically
        ordered.

        ``counters`` and ``histograms`` are sorted by name; each
        histogram reports cumulative bucket counts keyed by the (fixed)
        bucket bound plus ``+Inf``; ``derived`` holds the rates the
        ROADMAP's observability item names — cache hit rates and
        queries/s (total queries over summed query wall-clock).
        """
        with self._lock:
            counters = {name: round(self._counters[name], 8)
                        for name in sorted(self._counters)}
            histograms = {}
            for name in sorted(self._histograms):
                histogram = self._histograms[name]
                cumulative = 0
                buckets = {}
                for bound, count in zip(LATENCY_BUCKETS, histogram.counts):
                    cumulative += count
                    buckets[f"{bound:g}"] = cumulative
                buckets["+Inf"] = cumulative + histogram.counts[-1]
                histograms[name] = {
                    "count": histogram.total,
                    "sum_seconds": round(histogram.sum_seconds, 6),
                    "buckets": buckets,
                }
        return {"counters": counters, "histograms": histograms,
                "derived": self._derived(counters, histograms)}

    @staticmethod
    def _derived(counters: dict, histograms: dict) -> dict:
        def rate(hits: str, misses: str) -> float:
            lookups = counters.get(hits, 0) + counters.get(misses, 0)
            return round(counters.get(hits, 0) / lookups, 4) if lookups \
                else 0.0

        total_latency = histograms.get("latency_total", {})
        elapsed = total_latency.get("sum_seconds", 0.0)
        queries = counters.get("queries_total", 0)
        return {
            "plan_cache_hit_rate": rate("plan_cache_hits",
                                        "plan_cache_misses"),
            "answer_cache_hit_rate": rate("answer_cache_hits",
                                          "answer_cache_misses"),
            "cachenet_hit_rate": rate("cachenet_hits", "cachenet_misses"),
            "queries_per_second": (round(queries / elapsed, 3)
                                   if elapsed > 0 else 0.0),
        }

    # ------------------------------------------------------------------
    # Cross-process transport (the worker-lane delta protocol)
    # ------------------------------------------------------------------

    def raw_state(self) -> dict:
        """A consistent raw copy of all state — the ``delta_since``
        baseline."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "histograms": {name: histogram.state()
                               for name, histogram in
                               self._histograms.items()},
            }

    def delta_since(self, before: dict) -> dict:
        """What this registry accumulated since *before*, JSON-shaped.

        Worker lanes call this per query (against a :meth:`raw_state`
        taken before the query) and ship the delta back alongside the
        result payload; the parent folds it in with :meth:`merge_delta`.
        """
        current = self.raw_state()
        counters_before = before.get("counters", {})
        counters = {}
        for name, value in current["counters"].items():
            delta = value - counters_before.get(name, 0)
            if delta:
                counters[name] = delta
        histograms = {}
        for name, state in current["histograms"].items():
            prior = before.get("histograms", {}).get(name)
            if prior is None:
                histograms[name] = state
                continue
            counts = [a - b for a, b in zip(state["counts"],
                                            prior["counts"])]
            total = state["total"] - prior["total"]
            if total:
                histograms[name] = {
                    "counts": counts, "total": total,
                    "sum_seconds": state["sum_seconds"]
                    - prior["sum_seconds"],
                }
        return {"counters": counters, "histograms": histograms}

    def merge_delta(self, delta: dict | None) -> None:
        """Fold a :meth:`delta_since` payload (e.g. from a worker lane)
        into this registry."""
        if not delta:
            return
        with self._lock:
            for name, value in delta.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0) + value
            for name, state in delta.get("histograms", {}).items():
                histogram = self._histograms.get(name)
                if histogram is None:
                    histogram = self._histograms[name] = _Histogram()
                histogram.merge_state(state)

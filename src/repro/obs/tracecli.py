"""``repro trace`` — inspect exported trace spools from the terminal.

Three verbs over a :class:`~repro.obs.export.TraceExporter` JSONL file
(default ``traces.jsonl``, the serve default):

- ``show [trace_id]`` — render one record's full span tree; the id may
  be any unique prefix, and omitting it shows the newest record (which
  is what a doc example or a quick look after one query wants);
- ``tail [-n N]`` — the last N records as one-line summaries;
- ``top [-n N]`` — the N slowest records, slowest first.

Reads the live spool plus its rotated ``.1`` sibling so a record that
just rotated out is still findable.
"""

from __future__ import annotations

import argparse
import sys

from repro.obs.export import (TraceExporter, render_trace_record,
                              summarize_trace_record)

__all__ = ["main"]


def _load(path: str) -> list[dict]:
    """Records oldest-first across the rotated generation and the live
    spool."""
    return TraceExporter.read(path + ".1") + TraceExporter.read(path)


def _summary_line(summary: dict) -> str:
    attributes = summary.get("attributes") or {}
    job = attributes.get("job_id", "-")
    slow = " SLOW" if summary.get("slow") else ""
    return (f"{summary.get('trace_id')}  "
            f"{summary.get('duration_ms', 0.0):9.2f}ms  "
            f"{summary.get('status', '?'):<5s}  "
            f"${summary.get('cost_usd', 0.0):.6f}  "
            f"job={job}{slow}  {summary.get('query')!r}")


def _cmd_show(records: list[dict], trace_id: str | None) -> int:
    if not records:
        print("no traces in spool", file=sys.stderr)
        return 1
    if trace_id is None:
        record = records[-1]
    else:
        matches = [r for r in records
                   if str(r.get("trace_id", "")).startswith(trace_id)]
        if not matches:
            print(f"no trace matching {trace_id!r}", file=sys.stderr)
            return 1
        distinct = {r.get("trace_id") for r in matches}
        if len(distinct) > 1:
            print(f"{trace_id!r} is ambiguous across {len(distinct)} "
                  f"traces; give more digits", file=sys.stderr)
            return 1
        record = matches[-1]
    print(render_trace_record(record))
    return 0


def _cmd_tail(records: list[dict], count: int) -> int:
    for record in records[-count:]:
        print(_summary_line(summarize_trace_record(record)))
    return 0


def _cmd_top(records: list[dict], count: int) -> int:
    ranked = sorted(records, key=lambda r: r.get("duration_ms", 0.0),
                    reverse=True)
    for record in ranked[:count]:
        print(_summary_line(summarize_trace_record(record)))
    return 0


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="Inspect exported query traces (JSONL spool).")
    # --file rides every verb (not the top level) so the natural
    # spelling `repro trace show --file x` parses.
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--file", default="traces.jsonl",
                        help="trace spool path (default: traces.jsonl)")
    verbs = parser.add_subparsers(dest="verb", required=True)
    show = verbs.add_parser("show", parents=[common],
                            help="render one trace's span tree")
    show.add_argument("trace_id", nargs="?", default=None,
                      help="trace id or unique prefix "
                           "(default: newest record)")
    tail = verbs.add_parser("tail", parents=[common],
                            help="last N traces, one line each")
    tail.add_argument("-n", type=int, default=10, dest="count")
    top = verbs.add_parser("top", parents=[common],
                           help="N slowest traces, slowest first")
    top.add_argument("-n", type=int, default=10, dest="count")
    return parser


def main(argv: list[str] | None = None) -> int:
    options = build_arg_parser().parse_args(argv)
    records = _load(options.file)
    if options.verb == "show":
        return _cmd_show(records, options.trace_id)
    if options.verb == "tail":
        return _cmd_tail(records, options.count)
    return _cmd_top(records, options.count)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Observability: trace spans, metrics, and cost accounting.

The three pieces the ROADMAP's "observability + real-LLM cost
accounting" item names, built as one subsystem:

- :class:`StageTrace` / :class:`QueryTelemetry`
  (:mod:`repro.obs.trace`) — per-query spans with durations, token
  traffic, and dollar cost, stored on the plan IR so they ride every
  serde path (cache files, process lanes, result archives);
- :class:`MetricsRegistry` (:mod:`repro.obs.metrics`) — session-level
  counters and latency histograms with a deterministic snapshot API
  (``session.metrics()``) and a delta protocol for process-lane merging;
- :class:`CostModel` (:mod:`repro.obs.cost`) — deterministic token
  estimation and pricing, attached to language models via their
  ``cost_model`` attribute and overridable per session through
  :class:`TelemetryConfig`.
"""

from repro.obs.config import TelemetryConfig
from repro.obs.context import (TraceContext, TraceContextError,
                               current_trace, pop_trace, push_trace)
from repro.obs.cost import (DEFAULT_COST_MODEL, CostModel,
                            resolve_cost_model)
from repro.obs.export import (SlowQueryLog, TraceBuffer, TraceExporter,
                              TracePipeline, build_trace_record,
                              render_trace_record)
from repro.obs.metrics import (LATENCY_BUCKETS, MetricsRegistry,
                               render_prometheus, render_snapshot)
from repro.obs.trace import (LOCALITY_COUNTERS, QueryTelemetry,
                             StageTrace)

__all__ = [
    "CostModel",
    "DEFAULT_COST_MODEL",
    "LATENCY_BUCKETS",
    "LOCALITY_COUNTERS",
    "MetricsRegistry",
    "QueryTelemetry",
    "SlowQueryLog",
    "StageTrace",
    "TelemetryConfig",
    "TraceBuffer",
    "TraceContext",
    "TraceContextError",
    "TraceExporter",
    "TracePipeline",
    "build_trace_record",
    "current_trace",
    "pop_trace",
    "push_trace",
    "render_prometheus",
    "render_snapshot",
    "render_trace_record",
    "resolve_cost_model",
]

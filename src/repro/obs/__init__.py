"""Observability: trace spans, metrics, and cost accounting.

The three pieces the ROADMAP's "observability + real-LLM cost
accounting" item names, built as one subsystem:

- :class:`StageTrace` / :class:`QueryTelemetry`
  (:mod:`repro.obs.trace`) — per-query spans with durations, token
  traffic, and dollar cost, stored on the plan IR so they ride every
  serde path (cache files, process lanes, result archives);
- :class:`MetricsRegistry` (:mod:`repro.obs.metrics`) — session-level
  counters and latency histograms with a deterministic snapshot API
  (``session.metrics()``) and a delta protocol for process-lane merging;
- :class:`CostModel` (:mod:`repro.obs.cost`) — deterministic token
  estimation and pricing, attached to language models via their
  ``cost_model`` attribute and overridable per session through
  :class:`TelemetryConfig`.
"""

from repro.obs.config import TelemetryConfig
from repro.obs.cost import (DEFAULT_COST_MODEL, CostModel,
                            resolve_cost_model)
from repro.obs.metrics import (LATENCY_BUCKETS, MetricsRegistry,
                               render_snapshot)
from repro.obs.trace import (LOCALITY_COUNTERS, QueryTelemetry,
                             StageTrace)

__all__ = [
    "CostModel",
    "DEFAULT_COST_MODEL",
    "LATENCY_BUCKETS",
    "LOCALITY_COUNTERS",
    "MetricsRegistry",
    "QueryTelemetry",
    "StageTrace",
    "TelemetryConfig",
    "render_snapshot",
    "resolve_cost_model",
]

"""Distributed trace context: one id that follows a query everywhere.

A :class:`TraceContext` is the W3C ``traceparent``-shaped pair of a
32-hex-digit ``trace_id`` (one per end-to-end query, minted once at the
outermost ingress) and a 16-hex-digit ``span_id`` (the caller's span at
each boundary).  It crosses every process boundary the system has:

- HTTP: clients hand ``repro serve`` a ``traceparent`` header
  (``00-<trace_id>-<span_id>-<flags>``); the serve layer derives a child
  context per job (:func:`TraceContext.child` — same trace, fresh span).
- Process lanes: the context rides the process backend's JSON wire as a
  plain dict (:meth:`TraceContext.to_dict`) so worker-lane spans land in
  the parent's trace.
- cachenet: every RPC carries the context as an optional ``trace``
  request field, so the cache server's handling shows up as
  ``cachenet:<op>`` child spans in the caller's tree.

The module also keeps a per-thread *active trace* stack
(:func:`push_trace` / :func:`pop_trace` / :func:`current_trace`): the
engine activates the running query's context + telemetry around
``_answer``, and deep components that have no reference to the engine
(the :class:`~repro.cachenet.client.CacheClient`) read it to attach the
trace to outgoing RPCs and record their spans into the right telemetry.
"""

from __future__ import annotations

import re
import secrets
import threading
from dataclasses import dataclass

__all__ = [
    "TraceContext",
    "TraceContextError",
    "current_trace",
    "pop_trace",
    "push_trace",
]

#: ``traceparent`` header shape we accept: version 00, 32 lowercase hex
#: digits of trace id, 16 of parent span id, 2 of flags.  All-zero ids
#: are invalid per the W3C spec and rejected separately.
_TRACEPARENT = re.compile(
    r"^00-([0-9a-f]{32})-([0-9a-f]{16})-([0-9a-f]{2})$")


class TraceContextError(ValueError):
    """A ``traceparent`` header (or trace dict) is malformed."""


@dataclass(frozen=True)
class TraceContext:
    """An immutable (trace_id, span_id) pair.

    ``trace_id`` identifies the whole end-to-end query; ``span_id`` is
    the span *owning* this context — a child derived at a boundary uses
    it as its parent span id.
    """

    trace_id: str
    span_id: str

    # ------------------------------------------------------------------
    # Minting
    # ------------------------------------------------------------------

    @classmethod
    def new(cls) -> "TraceContext":
        """A fresh root context (random trace id, random root span id)."""
        return cls(trace_id=secrets.token_hex(16),
                   span_id=secrets.token_hex(8))

    def child(self) -> "TraceContext":
        """Same trace, fresh span id — the context handed across one hop."""
        return TraceContext(trace_id=self.trace_id,
                            span_id=secrets.token_hex(8))

    # ------------------------------------------------------------------
    # traceparent header (HTTP ingress/egress)
    # ------------------------------------------------------------------

    def to_traceparent(self) -> str:
        """The W3C-shaped header value (flags always ``01`` = sampled)."""
        return f"00-{self.trace_id}-{self.span_id}-01"

    @classmethod
    def parse_traceparent(cls, header: str) -> "TraceContext":
        """Parse a ``traceparent`` header; :class:`TraceContextError` on
        any malformation (wrong version, bad lengths, non-hex, zero ids).
        """
        match = _TRACEPARENT.match(header.strip().lower())
        if match is None:
            raise TraceContextError(
                f"malformed traceparent {header!r}: expected "
                f"00-<32 hex>-<16 hex>-<2 hex>")
        trace_id, span_id, _flags = match.groups()
        if set(trace_id) == {"0"} or set(span_id) == {"0"}:
            raise TraceContextError(
                f"traceparent {header!r} carries an all-zero id")
        return cls(trace_id=trace_id, span_id=span_id)

    # ------------------------------------------------------------------
    # Dict form (process-lane wire, cachenet request field)
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_dict(cls, data: dict) -> "TraceContext":
        try:
            trace_id = data["trace_id"]
            span_id = data["span_id"]
        except (TypeError, KeyError):
            raise TraceContextError(
                f"trace dict {data!r} lacks trace_id/span_id") from None
        if (not isinstance(trace_id, str) or not isinstance(span_id, str)
                or not re.fullmatch(r"[0-9a-f]{32}", trace_id)
                or not re.fullmatch(r"[0-9a-f]{16}", span_id)):
            raise TraceContextError(
                f"trace dict {data!r} carries malformed ids")
        return cls(trace_id=trace_id, span_id=span_id)


# ----------------------------------------------------------------------
# Per-thread active trace
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ActiveTrace:
    """What :func:`current_trace` hands back: the running query's context
    plus the telemetry container its spans belong in."""

    context: TraceContext
    telemetry: object  # QueryTelemetry; untyped to avoid an import cycle


_active = threading.local()


def push_trace(context: TraceContext, telemetry) -> None:
    """Activate *context* on this thread (engine entry)."""
    stack = getattr(_active, "stack", None)
    if stack is None:
        stack = _active.stack = []
    stack.append(ActiveTrace(context=context, telemetry=telemetry))


def pop_trace() -> None:
    """Deactivate the innermost trace (engine exit; always paired with
    :func:`push_trace` in a try/finally)."""
    stack = getattr(_active, "stack", None)
    if stack:
        stack.pop()


def current_trace() -> ActiveTrace | None:
    """The innermost active trace on this thread, or ``None``."""
    stack = getattr(_active, "stack", None)
    return stack[-1] if stack else None

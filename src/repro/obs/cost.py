"""Token and dollar accounting for LLM calls.

A real deployment pays per token; the reproduction must report the same
economics so the ROADMAP's real-LLM comparison has a baseline.  The
:class:`CostModel` estimates token counts from rendered prompt text with
a deterministic characters-per-token heuristic (the same estimate OpenAI
documents as a rule of thumb), prices them with per-1k-token rates, and
is attached to a :class:`~repro.llm.interface.LanguageModel` as its
``cost_model`` attribute — :class:`~repro.llm.brain.SimulatedBrain`
carries the default one, and a future real brain can substitute exact
usage numbers by shipping its own subclass.

Determinism matters more than realism here: the same query must produce
the same token counts and dollars on every backend and every run, so the
telemetry parity contract (serial == thread == process) can cover cost
totals byte-for-byte.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from repro.llm.interface import ChatMessage

#: Decimal places kept on every dollar figure; fixed so cost totals
#: serialize identically wherever they are computed.
COST_DECIMALS = 8


@dataclass(frozen=True)
class CostModel:
    """Deterministic token estimation and pricing for one model.

    *chars_per_token* is the estimation heuristic (4 chars/token is the
    common English-text rule of thumb); *usd_per_1k_input* /
    *usd_per_1k_output* are the prices applied to prompt and completion
    tokens respectively.  The defaults mirror a GPT-4-class endpoint.
    """

    name: str = "char-estimate"
    usd_per_1k_input: float = 0.03
    usd_per_1k_output: float = 0.06
    chars_per_token: int = 4

    def __post_init__(self) -> None:
        if self.chars_per_token <= 0:
            raise ValueError(f"chars_per_token must be positive, got "
                             f"{self.chars_per_token}")
        if self.usd_per_1k_input < 0 or self.usd_per_1k_output < 0:
            raise ValueError("token prices must be non-negative")

    def tokens(self, text: str) -> int:
        """Estimated token count of *text* (0 for empty text)."""
        if not text:
            return 0
        return math.ceil(len(text) / self.chars_per_token)

    def message_tokens(self, messages: Iterable[ChatMessage]) -> int:
        """Estimated prompt tokens of a rendered chat prompt."""
        return sum(self.tokens(message.render()) for message in messages)

    def usage(self, messages: Iterable[ChatMessage],
              response: str) -> tuple[int, int]:
        """``(token_in, token_out)`` of one prompt/response exchange."""
        return self.message_tokens(messages), self.tokens(response)

    def cost_usd(self, token_in: int, token_out: int) -> float:
        """Dollar cost of a token pair, rounded to :data:`COST_DECIMALS`."""
        cost = (token_in * self.usd_per_1k_input
                + token_out * self.usd_per_1k_output) / 1000.0
        return round(cost, COST_DECIMALS)

    def to_dict(self) -> dict:
        return {"name": self.name,
                "usd_per_1k_input": self.usd_per_1k_input,
                "usd_per_1k_output": self.usd_per_1k_output,
                "chars_per_token": self.chars_per_token}

    @classmethod
    def from_dict(cls, data: dict) -> "CostModel":
        return cls(name=data.get("name", "char-estimate"),
                   usd_per_1k_input=data.get("usd_per_1k_input", 0.03),
                   usd_per_1k_output=data.get("usd_per_1k_output", 0.06),
                   chars_per_token=data.get("chars_per_token", 4))


#: The cost model used when neither the telemetry configuration nor the
#: language model supplies one.
DEFAULT_COST_MODEL = CostModel()


def resolve_cost_model(model: object, override: CostModel | None = None,
                       ) -> CostModel:
    """The cost model to account *model*'s calls with.

    Resolution order: an explicit *override* (from
    :class:`~repro.obs.config.TelemetryConfig`), then the model's own
    ``cost_model`` attribute (the :class:`~repro.llm.interface.
    LanguageModel` hook), then :data:`DEFAULT_COST_MODEL`.
    """
    if override is not None:
        return override
    attached = getattr(model, "cost_model", None)
    if isinstance(attached, CostModel):
        return attached
    return DEFAULT_COST_MODEL

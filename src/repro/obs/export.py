"""Trace export: completed span trees, kept in a ring and spooled to disk.

One *trace record* is the OTLP-ish JSON object assembled by
:func:`build_trace_record` when a query finishes: the root span (the
serve request, or the bare query for direct sessions), every engine
:class:`~repro.obs.trace.StageTrace` as a child span with its token/cost
figures, the telemetry counters, and whatever boundary attributes the
caller supplies (job id, client, queue wait).  Child span ids are
*derived* (sha256 of ``trace_id/seq``) rather than random so the same
telemetry always renders the same tree — useful for tests and for
diffing exports.

Three sinks share one :class:`TracePipeline` entry point:

- :class:`TraceBuffer` — bounded in-memory ring of recent records,
  queryable by id and filterable by duration/status (the ``/traces``
  endpoints read it);
- :class:`TraceExporter` — JSONL spool with single-``write`` appends
  (one record is one line, written in one append-mode ``write`` call so
  concurrent writers never interleave) and size-based rotation to a
  ``.1`` sibling;
- :class:`SlowQueryLog` — a threshold filter feeding its own small ring
  (and a counter), so "what was slow lately" needs no scan.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict, deque
from dataclasses import dataclass, field

from repro.obs.context import TraceContext
from repro.obs.trace import QueryTelemetry

__all__ = [
    "SlowQueryLog",
    "TraceBuffer",
    "TraceExporter",
    "TracePipeline",
    "build_trace_record",
    "child_span_id",
    "render_trace_record",
    "summarize_trace_record",
]


def child_span_id(trace_id: str, seq: int) -> str:
    """Deterministic 16-hex child span id: position *seq* in *trace_id*."""
    digest = hashlib.sha256(f"{trace_id}/{seq}".encode("utf-8"))
    return digest.hexdigest()[:16]


def build_trace_record(context: TraceContext, query: str,
                       telemetry: QueryTelemetry | None, *,
                       status: str, duration_ms: float,
                       root_name: str = "query",
                       parent_span_id: str | None = None,
                       attributes: dict | None = None,
                       extra_spans: list[dict] | None = None) -> dict:
    """Assemble one exportable trace record from a finished query.

    *context* is the query's own context (its ``span_id`` becomes the
    root span); *parent_span_id* links to a remote caller's span when the
    query arrived with a ``traceparent`` header.  *extra_spans* are
    boundary spans the caller measured itself (queue wait, request
    handling) and are placed directly under the root, before the engine
    stages.
    """
    telemetry = telemetry or QueryTelemetry()
    root = {"span_id": context.span_id, "parent_span_id": parent_span_id,
            "name": root_name, "duration_ms": round(duration_ms, 3),
            "step_index": None,
            "token_in": telemetry.token_in,
            "token_out": telemetry.token_out,
            "cost_usd": telemetry.cost_usd, "notes": {}}
    spans = [root]
    seq = 0
    for extra in extra_spans or []:
        span = dict(extra)
        span.setdefault("span_id", child_span_id(context.trace_id, seq))
        span.setdefault("parent_span_id", context.span_id)
        span.setdefault("step_index", None)
        span.setdefault("token_in", 0)
        span.setdefault("token_out", 0)
        span.setdefault("cost_usd", 0.0)
        span.setdefault("notes", {})
        spans.append(span)
        seq += 1
    for stage in telemetry.spans:
        spans.append({"span_id": child_span_id(context.trace_id, seq),
                      "parent_span_id": context.span_id,
                      "name": stage.stage,
                      "duration_ms": round(stage.duration_ms, 3),
                      "step_index": stage.step_index,
                      "token_in": stage.token_in,
                      "token_out": stage.token_out,
                      "cost_usd": stage.cost_usd,
                      "notes": dict(stage.notes)})
        seq += 1
    return {"trace_id": context.trace_id,
            "root_span_id": context.span_id,
            "query": query, "status": status,
            "duration_ms": round(duration_ms, 3),
            "token_in": telemetry.token_in,
            "token_out": telemetry.token_out,
            "cost_usd": telemetry.cost_usd,
            "counters": dict(telemetry.counters),
            "attributes": dict(attributes or {}),
            "spans": spans}


def summarize_trace_record(record: dict) -> dict:
    """The one-line form ``GET /traces`` (and ``repro trace tail``) lists."""
    return {"trace_id": record.get("trace_id"),
            "query": record.get("query"),
            "status": record.get("status"),
            "duration_ms": record.get("duration_ms"),
            "cost_usd": record.get("cost_usd"),
            "spans": len(record.get("spans", [])),
            "slow": bool(record.get("slow")),
            "attributes": dict(record.get("attributes", {}))}


def render_trace_record(record: dict) -> str:
    """Human-readable span tree of one exported record (``repro trace
    show``); children indent under the root, step-scoped spans group
    under their logical step like
    :meth:`~repro.obs.trace.QueryTelemetry.render_tree`.
    """
    def line(prefix: str, span: dict) -> str:
        text = (f"{prefix}{span.get('name', '?'):<24s} "
                f"{span.get('duration_ms', 0.0):9.2f}ms  "
                f"{span.get('token_in', 0):5d} in / "
                f"{span.get('token_out', 0):4d} out  "
                f"${span.get('cost_usd', 0.0):.6f}")
        notes = span.get("notes") or {}
        if notes:
            keys = ", ".join(f"{k}={v!r}" for k, v in sorted(notes.items()))
            text += f"  [{keys}]"
        return text

    lines = [f"trace {record.get('trace_id')}  "
             f"status={record.get('status')}  "
             f"{record.get('duration_ms', 0.0):.2f}ms  "
             f"${record.get('cost_usd', 0.0):.6f}",
             f"query: {record.get('query')!r}"]
    attributes = record.get("attributes") or {}
    if attributes:
        keys = ", ".join(f"{k}={v}" for k, v in sorted(attributes.items()))
        lines.append(f"attributes: {keys}")
    spans = record.get("spans", [])
    root_id = record.get("root_span_id")
    steps: dict[int, list[dict]] = {}
    for span in spans:
        if span.get("span_id") == root_id:
            lines.append(line("", span))
        elif span.get("step_index") is None:
            lines.append(line("├─ ", span))
        else:
            steps.setdefault(span["step_index"], []).append(span)
    for index in sorted(steps):
        lines.append(f"├─ step {index}")
        for span in steps[index]:
            lines.append(line("│  ├─ ", span))
    counters = record.get("counters") or {}
    if counters:
        counts = ", ".join(f"{name}={value}"
                           for name, value in sorted(counters.items()))
        lines.append(f"└─ counters: {counts}")
    return "\n".join(lines)


class TraceBuffer:
    """Bounded ring of recent trace records, indexed by trace id.

    Thread-safe; the serve worker threads add while the asyncio loop
    reads.  A re-recorded trace id (never expected in practice) replaces
    the earlier record rather than duplicating it.
    """

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError("TraceBuffer capacity must be >= 1")
        self.capacity = capacity
        self._records: OrderedDict[str, dict] = OrderedDict()
        self._lock = threading.Lock()

    def add(self, record: dict) -> None:
        trace_id = record.get("trace_id")
        if not trace_id:
            return
        with self._lock:
            self._records.pop(trace_id, None)
            self._records[trace_id] = record
            while len(self._records) > self.capacity:
                self._records.popitem(last=False)

    def get(self, trace_id: str) -> dict | None:
        with self._lock:
            return self._records.get(trace_id)

    def recent(self, limit: int = 50, min_duration_ms: float = 0.0,
               status: str | None = None,
               slow_only: bool = False) -> list[dict]:
        """Newest-first summaries matching the filters."""
        with self._lock:
            records = list(self._records.values())
        out = []
        for record in reversed(records):
            if record.get("duration_ms", 0.0) < min_duration_ms:
                continue
            if status is not None and record.get("status") != status:
                continue
            if slow_only and not record.get("slow"):
                continue
            out.append(summarize_trace_record(record))
            if len(out) >= limit:
                break
        return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


class TraceExporter:
    """JSONL spool: one record per line, size-rotated.

    Appends are single ``write`` calls on an append-mode handle, so
    lines from concurrent exporters (serve workers, a second process)
    never interleave on POSIX.  When the file would exceed *max_bytes*
    it is rotated to ``<path>.1`` (one generation kept) before the
    write, so the live file always starts at a record boundary.
    """

    def __init__(self, path: str, max_bytes: int = 16 * 1024 * 1024):
        if max_bytes < 4096:
            raise ValueError("TraceExporter max_bytes must be >= 4096")
        self.path = str(path)
        self.max_bytes = max_bytes
        self._lock = threading.Lock()

    def export(self, record: dict) -> None:
        line = (json.dumps(record, sort_keys=True, separators=(",", ":"))
                + "\n").encode("utf-8")
        with self._lock:
            try:
                size = os.path.getsize(self.path)
            except OSError:
                size = 0
            if size and size + len(line) > self.max_bytes:
                os.replace(self.path, self.path + ".1")
            with open(self.path, "ab") as handle:
                handle.write(line)

    @staticmethod
    def read(path: str) -> list[dict]:
        """Every record in one spool file (skipping any torn last line)."""
        records = []
        try:
            with open(path, "rb") as handle:
                for raw in handle:
                    try:
                        records.append(json.loads(raw.decode("utf-8")))
                    except (UnicodeDecodeError, json.JSONDecodeError):
                        continue
        except OSError:
            return []
        return records


@dataclass
class SlowQueryLog:
    """Threshold filter: traces at or above *threshold_ms* are slow.

    Keeps its own newest-first ring of summaries so "show me what was
    slow" never scans the full buffer or the spool.
    """

    threshold_ms: float
    capacity: int = 128
    _ring: deque = field(default_factory=deque, repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False)

    def offer(self, record: dict) -> bool:
        """Record *record* if it is slow; returns whether it was."""
        if record.get("duration_ms", 0.0) < self.threshold_ms:
            record["slow"] = False
            return False
        record["slow"] = True
        with self._lock:
            self._ring.append(summarize_trace_record(record))
            while len(self._ring) > self.capacity:
                self._ring.popleft()
        return True

    def recent(self, limit: int = 50) -> list[dict]:
        with self._lock:
            items = list(self._ring)
        return list(reversed(items))[:limit]


class TracePipeline:
    """One ``record()`` call fans a finished trace to every sink.

    Marks the record ``slow`` *before* buffering/exporting so the flag
    is queryable everywhere, and counts ``traces_recorded_total`` /
    ``slow_queries_total`` into the session metrics when given one.
    """

    def __init__(self, buffer: TraceBuffer | None = None,
                 exporter: TraceExporter | None = None,
                 slow_log: SlowQueryLog | None = None,
                 metrics=None):
        self.buffer = buffer if buffer is not None else TraceBuffer()
        self.exporter = exporter
        self.slow_log = slow_log
        self.metrics = metrics

    def record(self, record: dict) -> dict:
        if self.slow_log is not None:
            record["slow"] = self.slow_log.offer(record)
        self.buffer.add(record)
        if self.exporter is not None:
            self.exporter.export(record)
        if self.metrics is not None:
            self.metrics.increment("traces_recorded_total")
            if record.get("slow"):
                self.metrics.increment("slow_queries_total")
        return record

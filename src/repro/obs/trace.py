"""Per-query trace spans: what each stage did, how long it took, what it
cost.

A :class:`StageTrace` is one span of the plan→map→execute loop — the
discovery prompt, one planning attempt, one mapping attempt, or one
operator execution — carrying wall-clock duration, estimated token
traffic, and its dollar cost.  The :class:`QueryTelemetry` container
collects every span of one query plus a small integer counter map (cache
locality, replans, per-operator activity) and is stored on the
:class:`~repro.core.plan.PlanTrace`, so telemetry rides the existing
lossless IR: ``to_dict``/``from_dict`` round trips, plan/answer cache
files, and the process backend's JSON pipe all carry it unchanged.

Cross-backend parity needs a *canonical* form: wall-clock durations are
never reproducible, and any counter that reflects cache locality (a
thread race or a worker-local cache can turn a hit into a miss without
changing the answer) may legitimately diverge, as may the token traffic
of a planning attempt that was or was not served from cache.
:meth:`QueryTelemetry.canonicalize` blanks exactly those fields, so
serial, thread, and process reports agree byte-for-byte on everything
else — see :meth:`repro.core.batch.BatchReport.canonical_results`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Counters that reflect cache locality rather than query semantics;
#: blanked by :meth:`QueryTelemetry.canonicalize` because a thread race
#: or a worker-local cache can legitimately flip them between backends.
LOCALITY_COUNTERS = frozenset({
    "plan_from_cache", "plan_cache_hits", "plan_cache_misses",
    "answer_cache_hits", "answer_cache_misses",
    "vision_inferences", "text_inferences",
})

#: Stage names whose token/cost figures depend on cache locality (a
#: cached plan skips the planner call entirely), zeroed in canonical form.
_LOCALITY_STAGES = ("planning",)

#: Span-name prefixes that exist only when a remote cache tier is
#: attached *and* the local front cache missed — pure locality, so the
#: whole span is dropped from the canonical form rather than zeroed.
_LOCALITY_SPAN_PREFIXES = ("cachenet:",)


@dataclass
class StageTrace:
    """One span of the query loop (shape after SNIPPETS exemplar #1)."""

    stage: str                    # "discovery" | "planning" | "mapping" |
    #                             # "execution" | "operator:<Name>"
    duration_ms: float = 0.0
    token_in: int = 0
    token_out: int = 0
    cost_usd: float = 0.0
    #: 1-based logical-step index for mapping/operator spans, ``None``
    #: for query-level spans (discovery, planning).
    step_index: int | None = None
    #: small JSON-safe annotations (e.g. the error text of a failed
    #: attempt); values must be deterministic across backends.
    notes: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"stage": self.stage, "duration_ms": self.duration_ms,
                "token_in": self.token_in, "token_out": self.token_out,
                "cost_usd": self.cost_usd, "step_index": self.step_index,
                "notes": dict(self.notes)}

    @classmethod
    def from_dict(cls, data: dict) -> "StageTrace":
        return cls(stage=data["stage"],
                   duration_ms=data.get("duration_ms", 0.0),
                   token_in=data.get("token_in", 0),
                   token_out=data.get("token_out", 0),
                   cost_usd=data.get("cost_usd", 0.0),
                   step_index=data.get("step_index"),
                   notes=dict(data.get("notes", {})))


@dataclass
class QueryTelemetry:
    """Every span and counter of one answered query."""

    spans: list[StageTrace] = field(default_factory=list)
    counters: dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def add_span(self, span: StageTrace) -> None:
        self.spans.append(span)

    def count(self, name: str, value: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def mark_plan_cache(self, hit: bool) -> None:
        """Record one planning attempt's cache outcome.

        ``plan_from_cache`` holds the *last* attempt (whether the plan
        that actually ran came from the cache — what
        :attr:`plan_cache_hit` reports); the hit/miss counters accumulate
        across replan attempts.
        """
        self.counters["plan_from_cache"] = 1 if hit else 0
        self.count("plan_cache_hits" if hit else "plan_cache_misses")

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------

    @property
    def plan_cache_hit(self) -> bool:
        """Whether the executed plan was served from the plan cache."""
        return bool(self.counters.get("plan_from_cache", 0))

    @property
    def token_in(self) -> int:
        return sum(span.token_in for span in self.spans)

    @property
    def token_out(self) -> int:
        return sum(span.token_out for span in self.spans)

    @property
    def cost_usd(self) -> float:
        return round(sum(span.cost_usd for span in self.spans), 8)

    def cost_summary(self) -> dict:
        """The compact economics record (harness columns, CLI footer)."""
        return {"token_in": self.token_in, "token_out": self.token_out,
                "cost_usd": self.cost_usd}

    def merged(self, other: "QueryTelemetry") -> "QueryTelemetry":
        """A new container holding both sides' spans and summed counters.

        Aggregation helper for :attr:`repro.core.batch.BatchReport.
        telemetry`; neither operand is mutated.
        """
        combined = QueryTelemetry(spans=[*self.spans, *other.spans],
                                  counters=dict(self.counters))
        for name, value in other.counters.items():
            combined.counters[name] = combined.counters.get(name, 0) + value
        return combined

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def render_tree(self) -> str:
        """Human-readable span tree (``repro query --trace``).

        Query-level spans (discovery, planning) sit at the root; mapping
        and operator spans are grouped under their logical step.
        """
        def line(prefix: str, span: StageTrace) -> str:
            text = (f"{prefix}{span.stage:<24s} {span.duration_ms:9.2f}ms  "
                    f"{span.token_in:5d} in / {span.token_out:4d} out  "
                    f"${span.cost_usd:.6f}")
            if span.notes:
                keys = ", ".join(f"{k}={v!r}" for k, v in
                                 sorted(span.notes.items()))
                text += f"  [{keys}]"
            return text

        lines = [f"spans: {len(self.spans)}, tokens: {self.token_in} in / "
                 f"{self.token_out} out, cost: ${self.cost_usd:.6f}"]
        steps: dict[int, list[StageTrace]] = {}
        for span in self.spans:
            if span.step_index is None:
                lines.append(line("├─ ", span))
            else:
                steps.setdefault(span.step_index, []).append(span)
        for index in sorted(steps):
            lines.append(f"├─ step {index}")
            for span in steps[index]:
                lines.append(line("│  ├─ ", span))
        if self.counters:
            counts = ", ".join(f"{name}={value}" for name, value in
                               sorted(self.counters.items()))
            lines.append(f"└─ counters: {counts}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Serde
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {"spans": [span.to_dict() for span in self.spans],
                "counters": dict(self.counters)}

    @classmethod
    def from_dict(cls, data: dict) -> "QueryTelemetry":
        return cls(spans=[StageTrace.from_dict(s)
                          for s in data.get("spans", [])],
                   counters=dict(data.get("counters", {})))

    @staticmethod
    def canonicalize(data: dict) -> dict:
        """Normalize a ``to_dict()`` payload for cross-backend comparison.

        Zeroes wall-clock durations everywhere, zeroes token/cost figures
        of locality-dependent stages (:data:`_LOCALITY_STAGES`), drops
        spans that only exist on a cache miss against a remote tier
        (:data:`_LOCALITY_SPAN_PREFIXES`), and drops
        :data:`LOCALITY_COUNTERS`; everything else must be byte-identical
        across serial, thread, and process backends.
        """
        spans = []
        for span in data.get("spans", []):
            stage = span.get("stage", "")
            if stage.startswith(_LOCALITY_SPAN_PREFIXES):
                continue
            span = dict(span)
            span["duration_ms"] = 0.0
            if span.get("stage") in _LOCALITY_STAGES:
                span["token_in"] = 0
                span["token_out"] = 0
                span["cost_usd"] = 0.0
            spans.append(span)
        counters = {name: value
                    for name, value in data.get("counters", {}).items()
                    if name not in LOCALITY_COUNTERS}
        return {"spans": spans, "counters": counters}

"""Session-level telemetry configuration."""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.cost import CostModel


@dataclass(frozen=True)
class TelemetryConfig:
    """How a :class:`~repro.session.Session` collects telemetry.

    *enabled* gates span collection and token/cost accounting (the parts
    with measurable overhead — the CI tracing-overhead gate benchmarks
    enabled against disabled); cache-locality counters and the metrics
    registry always run, they are a handful of integer increments.

    *cost_model* overrides the :class:`~repro.obs.cost.CostModel`
    resolved from the language model's own ``cost_model`` attribute;
    ``None`` keeps the model's (or the default).
    """

    enabled: bool = True
    cost_model: CostModel | None = None

"""Reproduction of CAESURA: language models as multi-modal query planners."""

__version__ = "0.1.0"

"""Reproduction of CAESURA: language models as multi-modal query planners.

The public surface is the :class:`Session` facade plus the types it
returns; everything else is internal and may change between releases::

    from repro import Session

    session = Session("rotowire")
    result = session.query("How many players are taller than 200?")
    print(result.value)
"""

from importlib.metadata import PackageNotFoundError, version as _version

try:
    __version__ = _version("caesura-repro")
except PackageNotFoundError:  # running from a source tree without install
    __version__ = "0.0.0+uninstalled"

from repro.core.answer_cache import AnswerCache
from repro.core.batch import BatchReport, PlanCache, QueryStats
from repro.core.engine import Engine, EngineConfig
from repro.core.interfaces import (Executor, Mapper, Planner, PromptMapper,
                                   PromptPlanner, RegistryExecutor)
from repro.core.plan import (ErrorEvent, LogicalPlan, LogicalStep,
                             Observation, PhysicalStep, PlanTrace,
                             QueryResult)
from repro.data.catalog import DataLake
from repro.data.table import Table
from repro.datasets import DATASET_NAMES, LakeSpec, load_lake
from repro.exec import (ExecutionBackend, ProcessBackend, SerialBackend,
                        ThreadBackend, backend_names)
from repro.obs import (CostModel, MetricsRegistry, QueryTelemetry,
                       StageTrace, TelemetryConfig)
from repro.plotting.spec import PlotSpec
from repro.session import Session

__all__ = [
    "AnswerCache",
    "BatchReport",
    "CostModel",
    "DATASET_NAMES",
    "DataLake",
    "Engine",
    "EngineConfig",
    "ErrorEvent",
    "ExecutionBackend",
    "Executor",
    "LakeSpec",
    "LogicalPlan",
    "LogicalStep",
    "Mapper",
    "MetricsRegistry",
    "Observation",
    "PhysicalStep",
    "PlanCache",
    "PlanTrace",
    "Planner",
    "PlotSpec",
    "ProcessBackend",
    "PromptMapper",
    "PromptPlanner",
    "QueryResult",
    "QueryStats",
    "QueryTelemetry",
    "RegistryExecutor",
    "SerialBackend",
    "Session",
    "StageTrace",
    "Table",
    "TelemetryConfig",
    "ThreadBackend",
    "__version__",
    "backend_names",
    "load_lake",
]

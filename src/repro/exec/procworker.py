"""Worker-process side of the process backend.

Everything in this module runs inside a pool worker process.  The
contract with the parent (:mod:`repro.exec.process`) is JSON-shaped on
the hot path: the parent ships ``LogicalPlan.to_dict()`` payloads in and
receives ``QueryResult.to_dict()`` payloads back, so big objects (tables,
rendered images) never cross the pipe — the worker rebuilds its own lake
deterministically from the :class:`~repro.datasets.LakeSpec` generation
parameters in the per-process initializer and verifies the fingerprint
matches the parent's before serving anything.

Each worker owns a full engine with *local* plan and answer caches
(shared-nothing: no cross-process locking, no cache coherence traffic).
Both caches are seeded at initialization from the parent's caches, and
whatever a worker learns — plans it synthesizes, modality answers it
infers — ships back with the query result, so the parent caches (and
``--plan-cache-file`` / ``--answer-cache-file`` persistence) stay warm
regardless of backend.  Shipping fresh answers is proportional to the
inference actually performed, so warm queries add nothing to the pipe.
"""

from __future__ import annotations

import traceback

from repro.cachenet import RemoteAnswerCache
from repro.core.answer_cache import AnswerCache, AnswerKey
from repro.core.batch import PlanCache
from repro.core.engine import Engine
from repro.core.plan import LogicalPlan
from repro.data.datatypes import decode_scalar, encode_scalar
from repro.datasets import LakeSpec
from repro.obs import MetricsRegistry, TraceContext, TraceContextError

#: per-process engine state, populated by :func:`initialize_worker`.
_STATE: dict[str, object] = {}


class _JournalMixin:
    """Journals fresh ``put`` calls on top of any answer cache.

    Operators only ``put`` after real model inference, so the journal of
    one query is exactly the set of answers the worker just learned —
    what gets shipped back to the parent cache.  Tier fills on the
    remote variant go through ``_local_put`` and are therefore *not*
    journaled (the parent can fetch those from the tier itself).
    """

    def __init__(self, *args: object, **kwargs: object):
        super().__init__(*args, **kwargs)
        self.journal: list[tuple[AnswerKey, object]] = []

    def put(self, key: AnswerKey, answer: object) -> None:
        super().put(key, answer)
        self.journal.append((key, answer))

    def drain(self) -> list[list[object]]:
        """The journaled entries, JSON-encoded, and an empty journal."""
        entries = [[key[0], key[1], key[2], encode_scalar(answer)]
                   for key, answer in self.journal]
        self.journal = []
        return entries


class _JournalingAnswerCache(_JournalMixin, AnswerCache):
    """The classic shared-nothing worker cache (no tier)."""


class _JournalingRemoteAnswerCache(_JournalMixin, RemoteAnswerCache):
    """Tier-backed worker cache that still journals fresh inference."""


def initialize_worker(payload: dict) -> None:
    """Pool initializer: rebuild the lake and stand up a local engine.

    *payload* carries the lake spec + the parent's *content* fingerprint
    (cell-level, not just shape — see :meth:`~repro.data.catalog.
    DataLake.content_fingerprint`), the (pickled) brain / role overrides
    / engine config, local cache capacities, and the parent's warm plans
    as ``LogicalPlan.to_dict()`` payloads.  A fingerprint mismatch means
    ``(dataset, seed, scale)`` generation is not deterministic on this
    host — that must fail loudly, not serve answers about a silently
    different lake.
    """
    spec = LakeSpec.from_dict(payload["lake_spec"])
    lake = spec.build()
    fingerprint = lake.content_fingerprint()
    expected = payload["content_fingerprint"]
    if fingerprint != expected:
        raise RuntimeError(
            f"worker lake content fingerprint {fingerprint} does not match "
            f"the parent's {expected} for spec {spec!r}; lake generation "
            "is not deterministic across processes")
    # Plan-cache keys use the shape fingerprint (plans transfer between
    # same-shaped lakes by design); content equality above guarantees the
    # shapes agree with the parent too.
    plan_key_fingerprint = lake.fingerprint()
    # Worker-local registry: per-query deltas ship back over the pipe
    # (run_worker_query) and the parent folds them into the session
    # registry, so session.metrics() stays complete under this backend —
    # including the lane's own cachenet counters when a tier is in play.
    metrics = MetricsRegistry()
    cache_url = payload.get("cache_url")
    if cache_url is not None:
        # Tier mode: the init payload ships no warm entries — this lane
        # pulls exactly what its queries touch from the shared tier, and
        # degrades to local-only if the tier goes away mid-batch.
        from repro.cachenet import CacheClient, RemotePlanCache
        client = CacheClient(cache_url, metrics=metrics)
        plan_cache = RemotePlanCache(
            client, payload["plan_cache_capacity"], metrics=metrics)
        answer_cache = _JournalingRemoteAnswerCache(
            client, payload["answer_cache_capacity"], metrics=metrics)
    else:
        plan_cache = PlanCache(payload["plan_cache_capacity"])
        answer_cache = _JournalingAnswerCache(
            payload["answer_cache_capacity"])
    for entry in payload["plans"]:
        plan_cache.put((entry["query"], plan_key_fingerprint),
                       LogicalPlan.from_dict(entry["plan"]))
    for fingerprint_, question, answer_type, answer in payload["answers"]:
        answer_cache.put((fingerprint_, question, answer_type),
                         decode_scalar(answer))
    answer_cache.journal = []  # seeding is not fresh inference
    engine = Engine(lake, model=payload["brain"], config=payload["config"],
                    planner=payload["planner"], mapper=payload["mapper"],
                    executor=payload["executor"], plan_cache=plan_cache,
                    answer_cache=answer_cache, metrics=metrics,
                    telemetry=payload.get("telemetry"))
    _STATE.update(engine=engine, plan_cache=plan_cache,
                  answer_cache=answer_cache, metrics=metrics,
                  fingerprint=expected)


def _cache_deltas(before_plan: tuple[int, int, int],
                  before_answer: tuple[int, int, int]) -> dict:
    plan_after = _STATE["plan_cache"].snapshot()
    answer_after = _STATE["answer_cache"].snapshot()
    return {
        "plan_delta": [a - b for a, b in zip(plan_after, before_plan)],
        "answer_delta": [a - b for a, b in zip(answer_after, before_answer)],
    }


def run_worker_query(query: str, trace: dict | None = None) -> dict:
    """Answer one query on the worker's local engine.

    *trace* is the parent's :class:`~repro.obs.TraceContext` as a dict
    (the distributed-tracing hop across the pipe): installed on the
    worker engine so the result's ``trace_id`` — and any ``cachenet:*``
    spans this lane records against the shared tier — belong to the
    parent's trace.  A malformed dict is ignored (the query still runs,
    under a locally minted context).

    Returns a JSON-shaped payload: ``{"ok": True, "result": <QueryResult
    dict>, "fresh_plan": <plan dict or None>, "fresh_answers": [...],
    ...cache deltas}`` on any engine outcome (including engine-level
    error results), or ``{"ok": False, "error": ..., "traceback": ...}``
    when the engine itself crashed with a non-Repro exception.  Crashes
    are caught here so a poisoned query never kills the worker process
    or its pool — the parent records a worker
    :class:`~repro.core.plan.ErrorEvent` and falls back to in-parent
    execution.
    """
    engine: Engine = _STATE["engine"]
    answer_cache: _JournalingAnswerCache = _STATE["answer_cache"]
    metrics: MetricsRegistry = _STATE["metrics"]
    answer_cache.journal = []
    before_plan = _STATE["plan_cache"].snapshot()
    before_answer = answer_cache.snapshot()
    before_metrics = metrics.raw_state()
    if trace is not None:
        try:
            engine.trace_context = TraceContext.from_dict(trace)
        except TraceContextError:
            engine.trace_context = None
    try:
        result = engine.query(query)
    except Exception as exc:  # noqa: BLE001 - crash containment boundary
        payload = {"ok": False,
                   "error": f"{type(exc).__name__}: {exc}",
                   "traceback": traceback.format_exc(limit=8),
                   "metrics_delta": metrics.delta_since(before_metrics)}
        payload.update(_cache_deltas(before_plan, before_answer))
        return payload
    finally:
        engine.trace_context = None
    payload = {"ok": True, "result": result.to_dict(), "fresh_plan": None,
               "fresh_answers": answer_cache.drain(),
               "metrics_delta": metrics.delta_since(before_metrics)}
    trace = result.trace
    if (result.ok and trace is not None
            and not trace.telemetry.plan_cache_hit
            and trace.logical_plan is not None):
        payload["fresh_plan"] = trace.logical_plan.to_dict()
    payload.update(_cache_deltas(before_plan, before_answer))
    return payload

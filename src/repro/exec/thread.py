"""The thread backend: N engines on a worker-thread pool."""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.core.batch import BatchReport, execute_batch
from repro.exec.base import ExecutionBackend, register_backend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.session import Session


class ThreadBackend(ExecutionBackend):
    """Drain the workload through a thread pool of per-worker engines.

    This is the pre-``repro.exec`` ``ParallelBatchRunner`` strategy: one
    engine per worker thread (engines carry per-query mutable state), all
    sharing the session's thread-safe plan and answer caches.  It scales
    latency-bound work — simulated or real LLM round trips sleep without
    holding the GIL — but CPU-bound table work serializes on the GIL; use
    the process backend for that.
    """

    name = "thread"

    def run(self, session: "Session", queries: Sequence[str],
            workers: int) -> BatchReport:
        report = execute_batch(session.engine_pool(workers), queries,
                               session.plan_cache, session.answer_cache)
        # execute_batch stamps "serial" for a one-engine pool; an explicit
        # thread run reports as what the caller asked for.
        report.backend = self.name
        return report


register_backend(ThreadBackend.name, ThreadBackend)

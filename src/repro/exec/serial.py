"""The serial backend: one engine, the calling thread."""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.core.batch import BatchReport, execute_batch
from repro.exec.base import ExecutionBackend, register_backend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.session import Session


class SerialBackend(ExecutionBackend):
    """Run the workload on one engine in the calling thread.

    *workers* is ignored — serial means serial.  This is the overhead
    floor every other backend's speedup is measured against, and the
    reference implementation for result parity.
    """

    name = "serial"

    def run(self, session: "Session", queries: Sequence[str],
            workers: int) -> BatchReport:
        return execute_batch(session.engine_pool(1), queries,
                             session.plan_cache, session.answer_cache)


register_backend(SerialBackend.name, SerialBackend)

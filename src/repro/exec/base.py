"""The :class:`ExecutionBackend` protocol and backend registry.

An execution backend is a strategy for draining one batch workload
through one :class:`~repro.session.Session`: it decides *where* the
per-query engines live (the calling thread, a thread pool, worker
processes) while the session keeps owning *what* runs (lake, brain,
configuration, caches).  All backends must produce identical
:class:`~repro.core.batch.BatchReport` results for the same workload —
:meth:`BatchReport.canonical_results` is the comparison form — so
switching backends is purely a performance decision:

- ``serial`` — one engine, the calling thread.  Lowest overhead,
  baseline for every speedup claim.
- ``thread`` — N engines on a thread pool sharing the session's caches.
  Scales latency-bound work (remote planner calls, I/O); saturates the
  GIL on CPU-bound table work.
- ``process`` — N single-process worker lanes, each rebuilding the lake
  from its :class:`~repro.datasets.LakeSpec` and running a full engine
  with shared-nothing local caches.  Scales CPU-bound work past the GIL
  at the cost of per-process memory and startup.

Backends register under a short name via :func:`register_backend`;
:meth:`repro.session.Session.batch` resolves ``backend="..."`` through
:func:`create_backend`.  Stateful backends (the process pool) live on
the session so consecutive batches reuse warm workers; sessions close
them via :meth:`ExecutionBackend.close`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Callable, ClassVar, Sequence

from repro.core.batch import BatchReport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.session import Session


class BackendError(ValueError):
    """A backend cannot run the requested batch (bad name, missing spec)."""


class ExecutionBackend(ABC):
    """One strategy for executing a batch workload."""

    #: registry name of the backend ("serial" / "thread" / "process" / ...)
    name: ClassVar[str] = ""

    @abstractmethod
    def run(self, session: "Session", queries: Sequence[str],
            workers: int) -> BatchReport:
        """Drain *queries* for *session* using up to *workers* workers.

        Results and per-query stats are reported in submission order, so
        reports from different backends are line-for-line comparable.
        """

    def close(self) -> None:
        """Release backend resources (worker pools, connections)."""


_FACTORIES: dict[str, Callable[[], ExecutionBackend]] = {}


def register_backend(name: str,
                     factory: Callable[[], ExecutionBackend]) -> None:
    """Register a backend *factory* under *name* (last writer wins).

    The name becomes valid everywhere a backend is selected —
    ``Session.batch(backend=name)``, ``repro batch --backend name``, and
    ``repro bench --backend name`` — with no further wiring; the three
    built-ins register themselves exactly this way when
    :mod:`repro.exec` is imported.
    """
    _FACTORIES[name] = factory


def backend_names() -> tuple[str, ...]:
    """All registered backend names, sorted."""
    return tuple(sorted(_FACTORIES))


def create_backend(name: str) -> ExecutionBackend:
    """Instantiate the backend registered under *name*."""
    if name not in _FACTORIES:
        raise BackendError(
            f"unknown execution backend {name!r}; available: "
            f"{', '.join(backend_names())}")
    return _FACTORIES[name]()

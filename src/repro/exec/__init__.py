"""Pluggable execution backends for batch workloads.

Importing this package registers the three built-in backends —
``serial``, ``thread``, and ``process`` — into the backend registry;
:meth:`repro.session.Session.batch` resolves its ``backend=`` argument
here.  See :mod:`repro.exec.base` for the protocol and the backend
matrix, and :mod:`repro.exec.process` for the GIL-breaking worker-lane
runtime.
"""

from repro.exec.base import (BackendError, ExecutionBackend, backend_names,
                             create_backend, register_backend)
from repro.exec.process import ProcessBackend, default_start_method
from repro.exec.serial import SerialBackend
from repro.exec.thread import ThreadBackend

__all__ = [
    "BackendError",
    "ExecutionBackend",
    "ProcessBackend",
    "SerialBackend",
    "ThreadBackend",
    "backend_names",
    "create_backend",
    "default_start_method",
    "register_backend",
]

"""The process backend: worker lanes that break the GIL wall.

Thread workers collapse to ~1.3x at 4 workers on 10k-row lakes because
the pure-Python table layer holds the GIL; this backend moves each
worker into its own process.  Design decisions, in the order they
matter:

**Shared-nothing workers.**  Each worker process rebuilds the lake from
the session's :class:`~repro.datasets.LakeSpec` in a per-process
initializer (fingerprint-checked against the parent) and owns a full
engine with *local* plan and answer caches.  Nothing heavier than JSON
payloads crosses the pipe: warm plans and answers go in at lane
creation, results come back as ``QueryResult.to_dict()`` plus cache-stat
deltas — and whatever the worker just learned (a synthesized plan, the
answers of fresh modality inference) — which the parent merges into one
:class:`~repro.core.batch.BatchReport` and its own caches, keeping
``--plan-cache-file`` / ``--answer-cache-file`` persistence complete
under every backend.

**Deterministic query→lane affinity.**  Workers are independent
single-process pools ("lanes"), and a query is pinned to the lane chosen
by its first-occurrence index in the workload.  Repeats of a query — the
whole point of warm benchmarking — always land on the lane that already
planned it and cached its modality answers, so per-lane caches behave
like the serial shared cache and warm passes stay warm.  Affinity is
also what makes process traces match serial traces (same hit pattern),
keeping reports line-for-line comparable.

**Per-query crash/timeout recovery.**  Engine-level failures come back
as ordinary error results.  A worker *crash* (non-Repro exception, a
worker killed mid-query, an initializer failure breaking the pool) or a
per-query *timeout* records a ``phase="worker"``
:class:`~repro.core.plan.ErrorEvent` and falls back to executing that
query in the parent process; the lane is torn down and lazily rebuilt,
and every other query still completes in submission order.

The pool start method defaults to ``fork`` where available (Linux —
instant, inherits imported modules) and ``spawn`` elsewhere; the
spec-based initializer makes both equivalent.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.core.batch import (BatchReport, _fold_cache_deltas, _fold_result)
from repro.core.plan import ErrorEvent, LogicalPlan, PlanTrace, QueryResult
from repro.data.datatypes import decode_scalar, encode_scalar
from repro.exec.base import BackendError, ExecutionBackend, register_backend
from repro.exec.procworker import initialize_worker, run_worker_query
from repro.obs import TraceContext

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.session import Session


def default_start_method() -> str:
    """``fork`` where the platform offers it, else ``spawn``."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def build_init_payload(session: "Session", spec: object,
                       content_fingerprint: str,
                       plan_fingerprint: str) -> dict:
    """What a fresh worker needs: spec, brain/roles, and warm caches.

    Plans and answers both ship as JSON-shaped payloads; answer keys
    are content fingerprints, so every lane can safely take the whole
    parent answer cache (e.g. one rehydrated from
    ``--answer-cache-file``).

    With a session *cache_url*, the warm payloads ship **empty** and
    the lane consults the shared tier lazily instead — the
    parent→worker pipe no longer scales with cache size, and a lane
    only pulls the entries its queries actually touch.

    Module-level because two lane owners share it: this backend and the
    serve layer's process-lane mode
    (:class:`repro.serve.jobs.JobManager`).
    """
    cache_url = getattr(session, "cache_url", None)
    if cache_url is not None:
        plans: list = []
        answers: list = []
    else:
        plans = []
        for (query, fp), plan in session.plan_cache.items():
            if fp == plan_fingerprint:
                plans.append({"query": query, "plan": plan.to_dict()})
        answers = [[key[0], key[1], key[2], encode_scalar(answer)]
                   for key, answer in session.answer_cache.items()]
    return {
        "cache_url": cache_url,
        "lake_spec": spec.to_dict(),
        "content_fingerprint": content_fingerprint,
        "brain": session.brain,
        "config": session.config,
        "planner": session.planner,
        "mapper": session.mapper,
        "executor": session.executor,
        "plan_cache_capacity": session.plan_cache.capacity,
        "answer_cache_capacity": session.answer_cache.capacity,
        "plans": plans,
        "answers": answers,
        "telemetry": session.telemetry,
    }


class _Lane:
    """One single-process executor with a deterministic query affinity.

    A lane is created lazily from its init payload and can be killed and
    rebuilt after a crash or timeout without touching the other lanes.
    """

    def __init__(self, index: int, start_method: str):
        self.index = index
        self._start_method = start_method
        self._executor: ProcessPoolExecutor | None = None

    @property
    def live(self) -> bool:
        return self._executor is not None

    def ensure(self, init_payload: dict) -> None:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=1,
                mp_context=multiprocessing.get_context(self._start_method),
                initializer=initialize_worker,
                initargs=(init_payload,))

    def submit(self, query: str, trace: dict | None = None):
        assert self._executor is not None
        return self._executor.submit(run_worker_query, query, trace)

    def kill(self) -> None:
        """Tear the lane down hard (terminates a stuck worker)."""
        executor = self._executor
        self._executor = None
        if executor is None:
            return
        # Terminate first: shutdown() alone joins, which would hang on a
        # worker stuck in a timed-out query.  _processes is stable across
        # the supported CPython versions; fall back to a plain shutdown
        # if it ever disappears.
        processes = getattr(executor, "_processes", None) or {}
        for process in list(processes.values()):
            process.terminate()
        executor.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        executor = self._executor
        self._executor = None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)


@dataclass
class _Task:
    """One submitted query: its workload position, lane, and future."""

    index: int
    query: str
    lane: _Lane
    #: the parent-minted :class:`~repro.obs.TraceContext` this query runs
    #: under — shipped across the pipe so the worker's spans join it, and
    #: reused by the in-parent fallback so a recovered query keeps its id.
    context: TraceContext | None = None
    future: object = field(default=None, repr=False)


class ProcessBackend(ExecutionBackend):
    """Drain the workload through single-process worker lanes.

    *start_method* overrides the multiprocessing start method;
    *timeout* bounds each query's wall-clock seconds in a worker (``None``
    = unbounded) — on expiry the lane is killed and the query re-runs in
    the parent.  Lanes persist across :meth:`run` calls of one session,
    so consecutive batches (a cold and a warm benchmark pass) reuse warm
    worker caches; they are rebuilt when the session's lake changes.
    """

    name = "process"

    def __init__(self, start_method: str | None = None,
                 timeout: float | None = None):
        self._start_method = start_method or default_start_method()
        self.timeout = timeout
        self._lanes: list[_Lane] = []
        self._lake_fingerprint: str | None = None   # content fingerprint
        self._plan_fingerprint: str | None = None   # shape fingerprint

    # ------------------------------------------------------------------
    # ExecutionBackend
    # ------------------------------------------------------------------

    def run(self, session: "Session", queries: Sequence[str],
            workers: int) -> BatchReport:
        spec = getattr(session.lake, "spec", None)
        if spec is None:
            raise BackendError(
                "the process backend needs a lake that knows its generation "
                "parameters (lake.spec is None); build the lake with "
                "repro.datasets.load_lake / LakeSpec.build, or use the "
                "thread backend for ad-hoc lakes")
        workload = list(queries)
        # Lane identity is the *content* fingerprint: two seeds of one
        # dataset share a shape fingerprint (by design — plans transfer)
        # but must never share warm worker lanes.
        content = session.lake.content_fingerprint()
        self._plan_fingerprint = session.lake.fingerprint()
        if self._lake_fingerprint not in (None, content):
            self.close()  # lake changed under the backend: rebuild lanes
        self._lake_fingerprint = content

        while len(self._lanes) < workers:
            self._lanes.append(_Lane(len(self._lanes), self._start_method))
        lanes = self._lanes[:workers]
        if any(not lane.live for lane in lanes):
            # Serializing both caches is only worth it when some lane
            # will actually consume the payload; warm lanes keep theirs.
            init_payload = self._init_payload(session, spec, content)
            for lane in lanes:
                if not lane.live:
                    lane.ensure(init_payload)

        report = BatchReport(workers=len(lanes), backend=self.name)
        plan_before = session.plan_cache.snapshot()
        answer_before = session.answer_cache.snapshot()
        worker_plan_delta = [0, 0, 0]
        worker_answer_delta = [0, 0, 0]

        started = time.perf_counter()
        # Deterministic affinity: a query's lane is fixed by the position
        # of its first occurrence in the workload, so repeats (and warm
        # re-runs of the same workload) always hit the same worker cache.
        first_seen: dict[str, int] = {}
        for query in workload:
            first_seen.setdefault(query, len(first_seen))
        tasks = []
        for index, query in enumerate(workload):
            lane = lanes[first_seen[query] % len(lanes)]
            # One distributed trace per query, minted in the parent and
            # shipped across the pipe with the submission.
            context = TraceContext.new()
            tasks.append(_Task(index=index, query=query, lane=lane,
                               context=context,
                               future=lane.submit(query,
                                                  context.to_dict())))

        results: list[QueryResult] = []
        for task in tasks:  # submission order == collection order
            result = self._collect(session, task, worker_plan_delta,
                                   worker_answer_delta)
            results.append(result)
        report.elapsed_seconds = time.perf_counter() - started

        for task, result in zip(tasks, results):
            _fold_result(report, task.query, result)
        # Cache accounting: the parent caches only move on fallbacks and
        # fresh-plan imports; per-worker deltas are summed on top so the
        # report reflects total cache activity across all processes.
        _fold_cache_deltas(report, session.plan_cache, session.answer_cache,
                           plan_before, answer_before)
        report.cache_hits += worker_plan_delta[0]
        report.cache_misses += worker_plan_delta[1]
        report.cache_evictions += worker_plan_delta[2]
        report.answer_hits += worker_answer_delta[0]
        report.answer_misses += worker_answer_delta[1]
        report.answer_evictions += worker_answer_delta[2]
        return report

    def close(self) -> None:
        for lane in self._lanes:
            lane.close()
        self._lanes = []
        self._lake_fingerprint = None

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _init_payload(self, session: "Session", spec: object,
                      content_fingerprint: str) -> dict:
        return build_init_payload(session, spec, content_fingerprint,
                                  self._plan_fingerprint)

    def _collect(self, session: "Session", task: _Task,
                 worker_plan_delta: list[int],
                 worker_answer_delta: list[int]) -> QueryResult:
        """Resolve one task into a QueryResult, recovering from failures."""
        try:
            payload = task.future.result(timeout=self.timeout)
        except FutureTimeoutError:
            task.lane.kill()
            event = ErrorEvent.worker_failure(
                f"worker query timed out after {self.timeout:g}s "
                f"(lane {task.lane.index}); lane killed",
                worker_id=task.lane.index)
            return self._fallback(session, task.query, event, task.context)
        except Exception as exc:  # noqa: BLE001 - BrokenProcessPool et al.
            # A broken pool also poisons every later future on the lane;
            # each one lands here and falls back individually.
            task.lane.kill()
            event = ErrorEvent.worker_failure(
                f"worker crashed (lane {task.lane.index}): "
                f"{type(exc).__name__}: {exc}",
                worker_id=task.lane.index)
            return self._fallback(session, task.query, event, task.context)

        for target, delta in ((worker_plan_delta, payload["plan_delta"]),
                              (worker_answer_delta,
                               payload["answer_delta"])):
            for i, value in enumerate(delta):
                target[i] += value
        session.metrics_registry.merge_delta(payload.get("metrics_delta"))
        if not payload["ok"]:
            # The engine crashed inside the worker but the process (and
            # pool) survived; re-run in the parent for a full trace.
            event = ErrorEvent.worker_failure(
                f"worker query crashed (lane {task.lane.index}): "
                f"{payload['error']}",
                worker_id=task.lane.index)
            return self._fallback(session, task.query, event, task.context)

        result = QueryResult.from_dict(payload["result"])
        fresh_plan = payload.get("fresh_plan")
        if fresh_plan is not None:
            # Ship worker-synthesized plans back into the parent cache so
            # plan persistence (--plan-cache-file) and later thread/serial
            # batches stay warm; put() does not touch hit/miss counters.
            session.plan_cache.put(
                (task.query, self._plan_fingerprint),
                LogicalPlan.from_dict(fresh_plan))
        for fingerprint, question, answer_type, answer in payload.get(
                "fresh_answers", []):
            # Same for freshly inferred modality answers: the traffic is
            # proportional to inference actually performed, so warm
            # queries ship nothing.
            session.answer_cache.put((fingerprint, question, answer_type),
                                     decode_scalar(answer))
        return result

    def _fallback(self, session: "Session", query: str, event: ErrorEvent,
                  context: TraceContext | None = None) -> QueryResult:
        """Re-run *query* in the parent, guarding against a second crash.

        The recovered run keeps the query's original trace context, so
        one trace id covers the failed lane attempt and the fallback.
        """
        session.metrics_registry.increment("worker_failures_total")
        engine = session.engine_pool(1)[0]
        engine.trace_context = context
        try:
            result = engine.query(query)
        except Exception as exc:  # noqa: BLE001 - the query is poisoned
            trace = PlanTrace(
                query=query,
                trace_id=context.trace_id if context else None)
            trace.errors.append(event)
            trace.errors.append(ErrorEvent(
                "execution", None,
                f"in-parent fallback crashed: {type(exc).__name__}: {exc}"))
            return QueryResult(kind="error", trace=trace,
                               error=f"worker and in-parent fallback both "
                                     f"failed: {exc}")
        finally:
            engine.trace_context = None
        event.recovered = True
        if result.trace is not None:
            result.trace.errors.insert(0, event)
        return result


register_backend(ProcessBackend.name, ProcessBackend)

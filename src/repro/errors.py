"""Exception hierarchy shared across the CAESURA reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without catching programming errors.
The planner-facing exceptions carry enough structure for the error handler
(:mod:`repro.core.error_handler`) to reason about *which phase* failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """A table, column, or datatype was used inconsistently."""


class UnknownColumnError(SchemaError):
    """A referenced column does not exist in the table."""

    def __init__(self, column: str, available: list[str] | None = None):
        self.column = column
        self.available = list(available or [])
        hint = f" (available: {', '.join(self.available)})" if self.available else ""
        super().__init__(f"unknown column {column!r}{hint}")


class UnknownTableError(SchemaError):
    """A referenced table does not exist in the data lake / context."""

    def __init__(self, table: str, available: list[str] | None = None):
        self.table = table
        self.available = list(available or [])
        hint = f" (available: {', '.join(self.available)})" if self.available else ""
        super().__init__(f"unknown table {table!r}{hint}")


class TypeMismatchError(SchemaError):
    """An operator received a column of an unsupported datatype."""


class ExpressionError(ReproError):
    """A predicate / scalar expression could not be parsed or evaluated."""


class SQLGuardError(ReproError):
    """Generated SQL was rejected by the SELECT-only security guard."""


class SQLExecutionError(ReproError):
    """sqlite3 failed to execute generated SQL."""


class SandboxViolationError(ReproError):
    """Generated Python UDF code used a forbidden construct."""


class CodeGenerationError(ReproError):
    """The UDF code generator could not produce code for a description."""


class OperatorError(ReproError):
    """A physical operator failed during execution.

    Attributes:
        operator: name of the failing operator (``"Visual Question Answering"``).
        step_index: 0-based index of the logical step being executed, if known.
    """

    def __init__(self, message: str, operator: str | None = None,
                 step_index: int | None = None):
        super().__init__(message)
        self.operator = operator
        self.step_index = step_index


class PlanParseError(ReproError):
    """An LLM response could not be parsed into a plan / operator choice."""


class PlanningError(ReproError):
    """The planning phase produced no usable logical plan."""


class MappingError(ReproError):
    """The mapping phase could not bind a logical step to an operator."""


class ExecutionError(ReproError):
    """Plan execution crashed and error handling could not recover it.

    Carries the trail of underlying errors for diagnostics.
    """

    def __init__(self, message: str, causes: list[Exception] | None = None):
        super().__init__(message)
        self.causes = list(causes or [])


class RetrievalError(ReproError):
    """The discovery phase could not retrieve any relevant data source."""


class LLMError(ReproError):
    """The (simulated) language model could not answer a prompt."""

"""Command-line entry point: answer one query, run a batch, or benchmark.

Examples::

    python -m repro.cli --dataset rotowire \\
        --query "How many players are taller than 200?"
    python -m repro.cli --dataset artwork --batch queries.txt --cache-size 64
    python -m repro.cli --dataset artwork --batch queries.txt --workers 4
    python -m repro.cli bench --dataset artwork --scale 10 --workers 1,2,4

Installed as the ``repro`` console script by ``setup.py``.  The ``bench``
subcommand forwards to :mod:`repro.benchmarks.harness`.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.batch import BatchRunner, ParallelBatchRunner
from repro.core.engine import EngineConfig, QueryEngine
from repro.core.plan import QueryResult
from repro.datasets import DATASET_NAMES, load_lake
from repro.plotting.ascii import render_plot


def _positive_int(text: str) -> int:
    value = int(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {text!r}")
    return value


def _positive_float(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"must be a positive number, got {text!r}")
    return value


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Answer natural-language queries over a multi-modal "
                    "data lake (CAESURA reproduction).",
        epilog="Benchmarking: 'repro bench --help' describes the benchmark "
               "harness.")
    parser.add_argument("--dataset", required=True, choices=DATASET_NAMES,
                        help="which synthetic dataset to load")
    parser.add_argument("--seed", type=int, default=None,
                        help="dataset generation seed (default: the "
                             "dataset's own default)")
    parser.add_argument("--scale", type=_positive_float, default=1.0,
                        help="lake scale factor, multiplies the dataset's "
                             "base cardinality (default: 1.0)")
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--query", help="one natural-language query")
    source.add_argument("--batch", metavar="FILE",
                        help="file with one query per line ('#' comments "
                             "and blank lines are skipped)")
    parser.add_argument("--cache-size", type=_positive_int, default=128,
                        help="LRU plan-cache capacity for batch mode "
                             "(default: 128)")
    parser.add_argument("--workers", type=_positive_int, default=1,
                        help="worker threads for batch mode; >1 runs the "
                             "batch through the parallel runner "
                             "(default: 1)")
    parser.add_argument("--no-discovery", action="store_true",
                        help="skip the discovery phase (no column hints)")
    parser.add_argument("--trace", action="store_true",
                        help="print the physical plan and per-phase timings")
    return parser


def read_batch_file(path: str) -> list[str]:
    queries = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            queries.append(line)
    return queries


def _print_result(result: QueryResult, trace: bool) -> None:
    print(result.describe())
    if result.kind == "table" and result.table is not None:
        print(result.table.to_display())
    elif result.kind == "plot" and result.plot is not None:
        print(render_plot(result.plot))
    if trace and result.trace is not None:
        print()
        print(f"replans: {result.trace.replans}, "
              f"errors: {len(result.trace.errors)}")
        for step in result.trace.physical_steps:
            print(f"  step {step.logical.index}: {step.operator} "
                  f"({'; '.join(step.arguments)})")
        for phase, seconds in sorted(result.trace.timings.items()):
            print(f"  {phase:<10s} {seconds:.3f}s")


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "bench":
        from repro.benchmarks.harness import main as bench_main
        return bench_main(argv[1:])

    args = build_arg_parser().parse_args(argv)
    lake = load_lake(args.dataset, seed=args.seed, scale=args.scale)
    config = EngineConfig(use_discovery=not args.no_discovery)

    if args.batch:
        try:
            queries = read_batch_file(args.batch)
        except OSError as exc:
            print(f"cannot read batch file: {exc}", file=sys.stderr)
            return 2
        if not queries:
            print(f"no queries found in {args.batch}", file=sys.stderr)
            return 2
        if args.workers > 1:
            runner: BatchRunner | ParallelBatchRunner = ParallelBatchRunner(
                lake, config=config, cache_size=args.cache_size,
                workers=args.workers)
        else:
            runner = BatchRunner(lake, config=config,
                                 cache_size=args.cache_size)
        report = runner.run(queries)
        print(report.render())
        return 0 if report.num_errors == 0 else 1

    engine = QueryEngine(lake, config=config)
    result = engine.answer(args.query)
    _print_result(result, trace=args.trace)
    return 0 if result.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())

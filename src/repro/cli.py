"""Command-line entry point: answer one query, run a batch, or benchmark.

Examples::

    repro query --dataset rotowire "How many players are taller than 200?"
    repro batch --dataset artwork queries.txt --workers 4 \\
        --plan-cache-file plans.json
    repro bench --dataset artwork --scale 10 --workers 1,2,4
    repro --version

Installed as the ``repro`` console script.  Every path drives the system
through :class:`repro.session.Session`; ``--plan-cache-file`` rehydrates
the plan cache before the run and persists it afterwards, so a repeated
batch plans nothing.  The ``bench`` subcommand forwards to
:mod:`repro.benchmarks.harness`.

The pre-subcommand spelling (``repro --dataset ... --query/--batch ...``)
keeps working but emits a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import argparse
import sys
import warnings
from pathlib import Path

from repro.cliargs import backend_name, positive_float, positive_int
from repro.core.engine import EngineConfig
from repro.core.plan import QueryResult
from repro.datasets import DATASET_NAMES, load_lake
from repro.exec import backend_names
from repro.obs import render_snapshot
from repro.plotting.ascii import render_plot
from repro.session import Session

def _add_lake_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", required=True, choices=DATASET_NAMES,
                        help="which synthetic dataset to load")
    parser.add_argument("--seed", type=int, default=None,
                        help="dataset generation seed (default: the "
                             "dataset's own default)")
    parser.add_argument("--scale", type=positive_float, default=1.0,
                        help="lake scale factor, multiplies the dataset's "
                             "base cardinality (default: 1.0)")
    parser.add_argument("--no-discovery", action="store_true",
                        help="skip the discovery phase (no column hints)")
    parser.add_argument("--plan-cache-file", metavar="PATH", default=None,
                        help="JSON file the plan cache is loaded from (if "
                             "present) before the run and saved to after "
                             "it, so plans survive across runs")
    parser.add_argument("--answer-cache-file", metavar="PATH", default=None,
                        help="JSON file the answer cache is loaded from (if "
                             "present) before the run and saved to after "
                             "it, so warm modality answers survive restarts")
    parser.add_argument("--cache-url", metavar="URL", default=None,
                        help="shared cache tier to warm from and feed "
                             "(tcp://host:port or unix:///path.sock, see "
                             "'repro cache-server'); a down tier degrades "
                             "to local caches")


def build_parser() -> argparse.ArgumentParser:
    """The subcommand-style parser (``repro query|batch|bench``)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Answer natural-language queries over a multi-modal "
                    "data lake (CAESURA reproduction).")
    parser.add_argument("--version", action="version",
                        version=f"repro {_version()}")
    subparsers = parser.add_subparsers(dest="command")

    query = subparsers.add_parser(
        "query", help="answer one natural-language query")
    _add_lake_arguments(query)
    query.add_argument("query", help="the natural-language query")
    query.add_argument("--trace", action="store_true",
                       help="print the stage/operator span tree (durations, "
                            "tokens, cost), the physical plan, and "
                            "per-phase timings")

    batch = subparsers.add_parser(
        "batch", help="run a file of queries (one per line)")
    _add_lake_arguments(batch)
    batch.add_argument("file", help="file with one query per line ('#' "
                                    "comments and blank lines are skipped)")
    batch.add_argument("--cache-size", type=positive_int, default=None,
                       help="LRU plan-cache capacity (default: 128, or "
                            "the capacity persisted in --plan-cache-file)")
    batch.add_argument("--workers", type=positive_int, default=1,
                       help="worker count for the thread/process backends "
                            "(default: 1)")
    batch.add_argument("--backend", type=backend_name, default=None,
                       metavar="{" + ",".join(backend_names()) + "}",
                       help="execution backend (default: serial at "
                            "--workers 1, thread above; process runs "
                            "GIL-free worker processes)")
    batch.add_argument("--metrics-file", metavar="PATH", default=None,
                       help="write the session metrics snapshot (counters, "
                            "latency histograms, derived rates) to this "
                            "JSON file after the batch")

    subparsers.add_parser(
        "bench", add_help=False,
        help="benchmark parallel batch execution ('repro bench --help')")
    subparsers.add_parser(
        "serve", add_help=False,
        help="serve the session over async HTTP ('repro serve --help')")
    subparsers.add_parser(
        "loadtest", add_help=False,
        help="load-test the query service ('repro loadtest --help')")
    subparsers.add_parser(
        "cache-server", add_help=False,
        help="serve the shared plan/answer cache tier "
             "('repro cache-server --help')")
    subparsers.add_parser(
        "cache-bench", add_help=False,
        help="benchmark cold-replica warm-up: shared tier vs files "
             "('repro cache-bench --help')")
    subparsers.add_parser(
        "trace", add_help=False,
        help="inspect exported trace records: span trees, recent "
             "traces, slowest queries ('repro trace --help')")
    subparsers.add_parser(
        "fuzz", add_help=False,
        help="differential query fuzzer: sqlite / columnar / native "
             "engines must agree byte-for-byte ('repro fuzz --help')")
    return parser


def build_legacy_parser() -> argparse.ArgumentParser:
    """The deprecated flag-style parser (``repro --dataset ... --query``)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Answer natural-language queries over a multi-modal "
                    "data lake (CAESURA reproduction).",
        epilog="This flag-style invocation is deprecated; use the 'repro "
               "query' / 'repro batch' subcommands.")
    _add_lake_arguments(parser)
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--query", help="one natural-language query")
    source.add_argument("--batch", metavar="FILE",
                        help="file with one query per line ('#' comments "
                             "and blank lines are skipped)")
    parser.add_argument("--cache-size", type=positive_int, default=None,
                        help="LRU plan-cache capacity for batch mode "
                             "(default: 128, or the capacity persisted "
                             "in --plan-cache-file)")
    parser.add_argument("--workers", type=positive_int, default=1,
                        help="worker threads for batch mode (default: 1)")
    parser.add_argument("--trace", action="store_true",
                        help="print the physical plan and per-phase timings")
    return parser


def _version() -> str:
    from repro import __version__
    return __version__


def read_batch_file(path: str) -> list[str]:
    queries = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            queries.append(line)
    return queries


def _print_result(result: QueryResult, trace: bool) -> None:
    print(result.describe())
    if result.kind == "table" and result.table is not None:
        print(result.table.to_display())
    elif result.kind == "plot" and result.plot is not None:
        print(render_plot(result.plot))
    if trace and result.trace is not None:
        print()
        print(result.telemetry.render_tree())
        print()
        print(f"replans: {result.trace.replans}, "
              f"errors: {len(result.trace.errors)}")
        for step in result.trace.physical_steps:
            print(f"  step {step.logical.index}: {step.operator} "
                  f"({'; '.join(step.arguments)})")
        for phase, seconds in sorted(result.trace.timings.items()):
            print(f"  {phase:<10s} {seconds:.3f}s")


def _build_session(args: argparse.Namespace,
                   cache_size: int | None = None) -> Session:
    lake = load_lake(args.dataset, seed=args.seed, scale=args.scale)
    config = EngineConfig(use_discovery=not args.no_discovery)
    session = Session(lake, config=config,
                      plan_cache_size=cache_size or 128,
                      cache_url=getattr(args, "cache_url", None))
    if args.plan_cache_file and Path(args.plan_cache_file).exists():
        # An explicit --cache-size wins over the capacity persisted in
        # the file; otherwise the file's own capacity is kept, so a
        # flag-less run never truncates a larger persisted cache.
        session.load_plan_cache(args.plan_cache_file, capacity=cache_size)
    answer_cache_file = getattr(args, "answer_cache_file", None)
    if answer_cache_file and Path(answer_cache_file).exists():
        session.load_answer_cache(answer_cache_file)
    return session


def _finish(session: Session, args: argparse.Namespace) -> None:
    if args.plan_cache_file:
        session.save_plan_cache(args.plan_cache_file)
    answer_cache_file = getattr(args, "answer_cache_file", None)
    if answer_cache_file:
        session.save_answer_cache(answer_cache_file)
    session.close()


def _run_query(args: argparse.Namespace) -> int:
    session = _build_session(args)
    result = session.query(args.query)
    _print_result(result, trace=args.trace)
    _finish(session, args)
    return 0 if result.ok else 1


def _run_batch(args: argparse.Namespace, path: str) -> int:
    try:
        queries = read_batch_file(path)
    except OSError as exc:
        print(f"cannot read batch file: {exc}", file=sys.stderr)
        return 2
    if not queries:
        print(f"no queries found in {path}", file=sys.stderr)
        return 2
    session = _build_session(args, cache_size=args.cache_size)
    report = session.batch(queries, workers=args.workers,
                           backend=getattr(args, "backend", None))
    print(report.render())
    metrics_file = getattr(args, "metrics_file", None)
    if metrics_file:
        # Same serialization as the service's GET /metrics endpoint
        # (repro.obs.render_snapshot), so dumps and scrapes diff cleanly;
        # the observability snapshot folds in the cache tier's STATS when
        # the session has a --cache-url.
        Path(metrics_file).write_text(
            render_snapshot(session.observability_snapshot()),
            encoding="utf-8")
    _finish(session, args)
    return 0 if report.num_errors == 0 else 1


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if not argv:
        build_parser().print_help()
        return 0
    if argv[0] == "bench":
        from repro.benchmarks.harness import main as bench_main
        return bench_main(argv[1:])
    if argv[0] == "serve":
        from repro.serve.app import main as serve_main
        return serve_main(argv[1:])
    if argv[0] == "loadtest":
        from repro.serve.loadtest import main as loadtest_main
        return loadtest_main(argv[1:])
    if argv[0] == "cache-server":
        from repro.cachenet.server import main as cache_server_main
        return cache_server_main(argv[1:])
    if argv[0] == "cache-bench":
        from repro.benchmarks.cachewarm import main as cache_bench_main
        return cache_bench_main(argv[1:])
    if argv[0] == "trace":
        from repro.obs.tracecli import main as trace_main
        return trace_main(argv[1:])
    if argv[0] == "fuzz":
        from repro.testing.fuzz import main as fuzz_main
        return fuzz_main(argv[1:])
    if argv[0].startswith("-") and argv[0] not in ("--version", "-h",
                                                   "--help"):
        # Flag-style invocation (repro --dataset ... --query/--batch ...)
        # is the deprecated pre-subcommand surface.
        warnings.warn(
            "flag-style invocation (repro --dataset ... --query/--batch) "
            "is deprecated; use the 'repro query' / 'repro batch' "
            "subcommands",
            DeprecationWarning, stacklevel=2)
        args = build_legacy_parser().parse_args(argv)
        if args.batch:
            return _run_batch(args, args.batch)
        return _run_query(args)

    # Subcommand style.  An unknown first word lands here too and gets
    # argparse's "invalid choice" error listing the real subcommands.
    args = build_parser().parse_args(argv)
    if args.command == "query":
        return _run_query(args)
    if args.command == "batch":
        return _run_batch(args, args.file)
    build_parser().print_help()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

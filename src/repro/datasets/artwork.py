"""The artwork dataset (tables + images), Wikidata-style.

Mirrors the paper's first dataset: a ``paintings_metadata`` table (title,
artist, inception, movement, genre, img_path) extracted "for all Wikidata
entities that are instances of 'painting'", plus a ``painting_images``
collection presented as a special two-column table (img_path, image).

The generator is fully synthetic and seeded.  Scene contents are drawn from
genre-correlated object pools, but titles are sampled *independently* of the
actual scene so that answering "what is depicted" from the title column is
genuinely wrong (the paper's *Data Misunderstanding* failure of
ChatGPT-3.5).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from datetime import date
from typing import Iterator

from repro.data import (ColumnSpec, DataLake, DataSource, DataType,
                        ForeignKey, Schema, SourceKind, Table)
from repro.datasets.streaming import DEFAULT_SHARD_ROWS, ShardedTableBuilder
from repro.vision import LazyImage, SceneSpec, build_scene

MOVEMENT_ERAS = {
    "Renaissance": (1420, 1600),
    "Baroque": (1600, 1750),
    "Romanticism": (1750, 1850),
    "Impressionism": (1850, 1900),
    "Expressionism": (1900, 1950),
}

GENRE_OBJECT_POOLS = {
    "religious art": ["madonna", "child", "halo", "cross", "angel"],
    "portrait": ["crown", "sword", "dog", "skull"],
    "landscape": ["tree", "mountain", "sun", "boat"],
    "still life": ["flower", "skull", "bird"],
    "history painting": ["sword", "horse", "crown", "boat"],
}

_TITLE_HEADS = ("Madonna", "Landscape", "Portrait", "Study", "Allegory",
                "Vision", "Scene", "Morning", "Evening", "The Garden",
                "The Battle", "Still Life", "The Harbor", "The Feast")
_TITLE_TAILS = ("of the Meadow", "with Saints", "at Dusk", "in Blue",
                "of a Nobleman", "of the North", "by the Sea", "in Spring",
                "of the Rocks", "with Flowers", "of Victory", "at the Gate")

_ARTIST_FIRST = ("Giovanni", "Pieter", "Claude", "Artemisia", "Diego",
                 "Élisabeth", "Caspar", "Berthe", "Edvard", "Sofonisba")
_ARTIST_LAST = ("Bellini", "Bruegel", "Moreau", "Gentileschi", "Velázquez",
                "Vigée", "Friedrich", "Morisot", "Munch", "Anguissola")


@dataclass
class ArtworkDataset:
    """Generated tables, images, and per-image ground-truth scenes."""

    metadata: Table
    images: Table
    scenes: dict[str, SceneSpec]
    seed: int

    def as_lake(self) -> DataLake:
        """Package both sources as a data lake (the planner's view)."""
        lake = DataLake(name="artwork")
        lake.add(DataSource(
            "paintings_metadata", self.metadata, kind=SourceKind.TABLE,
            description=("Metadata about paintings exhibited in the museum: "
                         "title, artist, inception date, art movement, genre "
                         "and the path of the painting's image.")))
        lake.add(DataSource(
            "painting_images", self.images, kind=SourceKind.IMAGE_COLLECTION,
            description=("Digitized images of the paintings; one row per "
                         "painting image.")))
        return lake

    def scene_of(self, img_path: str) -> SceneSpec:
        return self.scenes[img_path]


def _painting_stream(num_paintings: int, seed: int,
                     image_size: int) -> Iterator[tuple]:
    """Seeded per-painting row stream.

    Yields ``(title, artist, inception, movement, genre, img_path, scene)``
    one painting at a time — the RNG draw order per painting is frozen
    (old caches key on lake fingerprints), so extend only by appending
    draws at the end of the loop body.
    """
    rng = random.Random(seed)
    movements = list(MOVEMENT_ERAS)
    genres = list(GENRE_OBJECT_POOLS)
    for index in range(num_paintings):
        movement = rng.choice(movements)
        genre = rng.choice(genres)
        year_low, year_high = MOVEMENT_ERAS[movement]
        year = rng.randint(year_low, year_high - 1)
        month = rng.randint(1, 12)
        day = rng.randint(1, 28)
        inception = date(year, month, day).isoformat()

        # Title sampled independently of the scene (see module docstring).
        title = f"{rng.choice(_TITLE_HEADS)} {rng.choice(_TITLE_TAILS)}"
        artist = f"{rng.choice(_ARTIST_FIRST)} {rng.choice(_ARTIST_LAST)}"
        img_path = f"img/{index + 1}.png"

        pool = GENRE_OBJECT_POOLS[genre]
        object_counts: dict[str, int] = {}
        for category in rng.sample(pool, k=rng.randint(1, min(3, len(pool)))):
            object_counts[category] = rng.randint(1, 3)
        scene = build_scene(object_counts, seed=rng.randrange(2 ** 31),
                            width=image_size, height=image_size)
        yield (title, artist, inception, movement, genre, img_path, scene)


def generate_artwork_dataset(num_paintings: int = 120, seed: int = 7,
                             image_size: int = 64, scale: float = 1.0,
                             shard_rows: int = DEFAULT_SHARD_ROWS,
                             ) -> ArtworkDataset:
    """Generate a seeded artwork dataset of ``num_paintings * scale``
    paintings.

    *scale* is the stress-lake multiplier exposed as ``--scale`` on the CLI
    (``scale=100`` → 12,000 paintings).  Generation is deterministic in
    ``(seed, scale)``: the same pair always produces byte-identical tables
    and rasters.  It is also streaming: the seeded row stream feeds
    *shard_rows*-sized ingestion shards (packed into typed columnar
    storage as they fill), and each image cell is a
    :class:`~repro.vision.LazyImage` that rasterizes on first pixel
    access — a scale-1000 lake never materializes its rasters.
    *shard_rows* is a memory knob only; every value produces an identical
    dataset.
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    num_paintings = max(1, round(num_paintings * scale))

    metadata_schema = Schema(
        [ColumnSpec("title", DataType.STRING, "title of the painting"),
         ColumnSpec("artist", DataType.STRING, "name of the painter"),
         ColumnSpec("inception", DataType.STRING,
                    "date the painting was created, as YYYY-MM-DD"),
         ColumnSpec("movement", DataType.STRING,
                    "art movement the painting belongs to"),
         ColumnSpec("genre", DataType.STRING, "genre of the painting"),
         ColumnSpec("img_path", DataType.STRING,
                    "path of the painting's image file")],
        description="metadata of the paintings in the museum",
        foreign_keys=[ForeignKey("img_path", "painting_images", "img_path")])
    images_schema = Schema(
        [ColumnSpec("img_path", DataType.STRING, "path of the image file"),
         ColumnSpec("image", DataType.IMAGE, "the painting image")],
        description="images of the paintings",
        foreign_keys=[ForeignKey("img_path", "paintings_metadata",
                                 "img_path")])

    metadata_builder = ShardedTableBuilder(metadata_schema, shard_rows)
    images_builder = ShardedTableBuilder(images_schema, shard_rows)
    scenes: dict[str, SceneSpec] = {}
    for (title, artist, inception, movement, genre, img_path,
         scene) in _painting_stream(num_paintings, seed, image_size):
        scenes[img_path] = scene
        metadata_builder.add((title, artist, inception, movement, genre,
                              img_path))
        images_builder.add((img_path, LazyImage(scene, path=img_path)))
    return ArtworkDataset(metadata=metadata_builder.finish(),
                          images=images_builder.finish(), scenes=scenes,
                          seed=seed)

"""The rotowire dataset (tables + texts).

Mirrors the paper's second dataset: textual game reports of basketball games
"containing important statistics (e.g. the number of scored points) of
players and teams", extended by two Wikidata-style tables for teams and
players, plus link tables connecting teams/players to games (Figure 4 shows
``teams`` joined with ``teams_to_games`` joined with ``game_reports``).

The structured box scores are kept on the dataset object as ground truth for
the evaluation oracle; the data lake itself only exposes the reports as a
TEXT collection, so statistics must be extracted with the TextQA operator.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from datetime import date, timedelta

from repro.data import (ColumnSpec, DataLake, DataSource, DataType,
                        ForeignKey, Schema, SourceKind, Table)
from repro.datasets.streaming import DEFAULT_SHARD_ROWS, ShardedTableBuilder
from repro.text import GameBoxScore, PlayerLine, generate_report

TEAMS = [
    # (name, city, conference, division, founded)
    # Founding years are fixed constants (no RNG draw), so adding the
    # column never shifts the seeded generation stream of the other data.
    ("Heat", "Miami", "Eastern", "Southeast", 1988),
    ("Celtics", "Boston", "Eastern", "Atlantic", 1946),
    ("Knicks", "New York", "Eastern", "Atlantic", 1946),
    ("Bulls", "Chicago", "Eastern", "Central", 1966),
    ("Cavaliers", "Cleveland", "Eastern", "Central", 1970),
    ("Hawks", "Atlanta", "Eastern", "Southeast", 1946),
    ("Spurs", "San Antonio", "Western", "Southwest", 1967),
    ("Lakers", "Los Angeles", "Western", "Pacific", 1947),
    ("Warriors", "Golden State", "Western", "Pacific", 1946),
    ("Suns", "Phoenix", "Western", "Pacific", 1968),
    ("Jazz", "Salt Lake City", "Western", "Northwest", 1974),
    ("Rockets", "Houston", "Western", "Southwest", 1967),
]

#: Opening day of the synthetic season; game dates advance from here
#: deterministically in ``game_id`` alone (scale-stable, no RNG draw).
SEASON_START = date(2018, 10, 1)
_SEASON_DAYS = 170


def game_date(game_id: int) -> date:
    """The (deterministic) calendar date game *game_id* was played on."""
    return SEASON_START + timedelta(days=(game_id * 7) % _SEASON_DAYS)

_PLAYER_FIRST = ("Marcus", "Devin", "Jalen", "Andre", "Nikola", "Luka",
                 "Trae", "Kawhi", "Damian", "Pascal", "Rudy", "Klay",
                 "Jayson", "Jimmy", "Kyle", "Zach", "Fred", "Domas")
_PLAYER_LAST = ("Hartwell", "Okafor", "Petrov", "Sandoval", "Bright",
                "Kovac", "Mwangi", "Larsson", "Dubois", "Tanaka",
                "Ellison", "Moreau", "Banks", "Crowder", "Vesely", "Ng")
_NATIONALITIES = ("USA", "Canada", "France", "Serbia", "Spain", "Australia",
                  "Germany", "Nigeria", "Lithuania", "Japan")
_POSITIONS = ("Guard", "Forward", "Center")


@dataclass
class RotowireDataset:
    """Generated tables, reports, and box-score ground truth."""

    teams: Table
    players: Table
    teams_to_games: Table
    players_to_games: Table
    game_reports: Table
    box_scores: list[GameBoxScore]
    seed: int
    #: (team, game_id) → points; ground truth for the oracle only.
    team_points: dict[tuple[str, int], int] = field(default_factory=dict)
    #: (player, game_id) → (points, rebounds, assists).
    player_stats: dict[tuple[str, int], tuple[int, int, int]] = (
        field(default_factory=dict))

    def as_lake(self) -> DataLake:
        lake = DataLake(name="rotowire")
        lake.add(DataSource(
            "teams", self.teams, kind=SourceKind.TABLE,
            description=("General information about every basketball team: "
                         "name, city, conference, division and founding "
                         "year.")))
        lake.add(DataSource(
            "players", self.players, kind=SourceKind.TABLE,
            description=("General information about every player: name, "
                         "team, height, nationality and position.")))
        lake.add(DataSource(
            "teams_to_games", self.teams_to_games, kind=SourceKind.TABLE,
            description=("Link table listing which teams participated in "
                         "which games.")))
        lake.add(DataSource(
            "players_to_games", self.players_to_games, kind=SourceKind.TABLE,
            description=("Link table listing which players participated in "
                         "which games.")))
        lake.add(DataSource(
            "game_reports", self.game_reports,
            kind=SourceKind.TEXT_COLLECTION,
            description=("Textual game reports of basketball games (with "
                         "the date each game was played), containing the "
                         "important statistics of the teams and players "
                         "that participated in each game.")))
        return lake

    def games_of(self, team: str) -> list[int]:
        return [box.game_id for box in self.box_scores
                if team in (box.home_team, box.away_team)]

    def losses_of(self, team: str) -> int:
        return sum(1 for box in self.box_scores if box.loser == team)


def generate_rotowire_dataset(num_games: int = 30, seed: int = 11,
                              players_per_team: int = 4,
                              scale: float = 1.0,
                              shard_rows: int = DEFAULT_SHARD_ROWS,
                              ) -> RotowireDataset:
    """Generate a seeded rotowire dataset with ``num_games * scale`` games.

    *scale* is the stress-lake multiplier exposed as ``--scale`` on the CLI
    (``scale=34`` → 1,020 games).  Generation is deterministic in
    ``(seed, scale)``; the per-game row streams feed *shard_rows*-sized
    ingestion shards (a memory knob only — every value produces an
    identical dataset).
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    num_games = max(1, round(num_games * scale))
    rng = random.Random(seed)

    team_rows = [list(row) for row in TEAMS]
    team_names = [row[0] for row in team_rows]

    # Players: unique synthetic names, several per team.
    player_rows = []
    roster: dict[str, list[str]] = {name: [] for name in team_names}
    used_names: set[str] = set()
    for team in team_names:
        for _ in range(players_per_team):
            while True:
                name = f"{rng.choice(_PLAYER_FIRST)} {rng.choice(_PLAYER_LAST)}"
                if name not in used_names:
                    used_names.add(name)
                    break
            height = rng.randint(183, 222)
            player_rows.append([name, team, height,
                                rng.choice(_NATIONALITIES),
                                rng.choice(_POSITIONS)])
            roster[team].append(name)

    box_scores: list[GameBoxScore] = []
    team_points: dict[tuple[str, int], int] = {}
    player_stats: dict[tuple[str, int], tuple[int, int, int]] = {}
    teams_to_games = ShardedTableBuilder(_TEAMS_TO_GAMES_SCHEMA, shard_rows)
    players_to_games = ShardedTableBuilder(_PLAYERS_TO_GAMES_SCHEMA,
                                           shard_rows)
    game_reports = ShardedTableBuilder(_REPORTS_SCHEMA, shard_rows)

    for game_id in range(1, num_games + 1):
        home, away = rng.sample(team_names, 2)
        home_points = rng.randint(82, 128)
        away_points = rng.randint(82, 128)
        if away_points == home_points:
            away_points += 1

        lines = []
        for team in (home, away):
            total = home_points if team == home else away_points
            mentioned = rng.sample(roster[team], k=min(2, len(roster[team])))
            remaining = total
            for position, player in enumerate(mentioned):
                top = max(2, remaining // 2)
                points = rng.randint(2, min(40, top))
                remaining -= points
                rebounds = rng.randint(0, 14)
                assists = rng.randint(0, 12)
                lines.append(PlayerLine(player, team, points, rebounds,
                                        assists))
                player_stats[(player, game_id)] = (points, rebounds, assists)
                players_to_games.add([player, game_id])
        box = GameBoxScore(game_id, home, away, home_points, away_points,
                           lines)
        box_scores.append(box)
        team_points[(home, game_id)] = home_points
        team_points[(away, game_id)] = away_points
        teams_to_games.add([home, game_id])
        teams_to_games.add([away, game_id])
        game_reports.add([game_id, game_date(game_id),
                          generate_report(box, seed=seed + game_id)])

    return RotowireDataset(
        teams=Table.from_rows(_TEAMS_SCHEMA, team_rows),
        players=Table.from_rows(_PLAYERS_SCHEMA, player_rows),
        teams_to_games=teams_to_games.finish(),
        players_to_games=players_to_games.finish(),
        game_reports=game_reports.finish(),
        box_scores=box_scores,
        seed=seed,
        team_points=team_points,
        player_stats=player_stats,
    )


_TEAMS_SCHEMA = Schema(
        [ColumnSpec("name", DataType.STRING, "team name"),
         ColumnSpec("city", DataType.STRING, "home city of the team"),
         ColumnSpec("conference", DataType.STRING,
                    "conference the team plays in (Eastern or Western)"),
         ColumnSpec("division", DataType.STRING, "division of the team"),
         ColumnSpec("founded", DataType.INTEGER,
                    "year the team was founded")],
        description="general information for every team",
        foreign_keys=[ForeignKey("name", "teams_to_games", "name")],
        primary_key="name")
_PLAYERS_SCHEMA = Schema(
        [ColumnSpec("name", DataType.STRING, "player name"),
         ColumnSpec("team", DataType.STRING, "team the player plays for"),
         ColumnSpec("height_cm", DataType.INTEGER,
                    "height of the player in centimeters"),
         ColumnSpec("nationality", DataType.STRING,
                    "nationality of the player"),
         ColumnSpec("position", DataType.STRING, "playing position")],
        description="general information for every player",
        foreign_keys=[ForeignKey("team", "teams", "name"),
                      ForeignKey("name", "players_to_games", "name")],
        primary_key="name")
_TEAMS_TO_GAMES_SCHEMA = Schema(
        [ColumnSpec("name", DataType.STRING, "team name"),
         ColumnSpec("game_id", DataType.INTEGER, "identifier of the game")],
        description="which team participated in which game",
        foreign_keys=[ForeignKey("name", "teams", "name"),
                      ForeignKey("game_id", "game_reports", "game_id")])
_PLAYERS_TO_GAMES_SCHEMA = Schema(
        [ColumnSpec("name", DataType.STRING, "player name"),
         ColumnSpec("game_id", DataType.INTEGER, "identifier of the game")],
        description="which player participated in which game",
        foreign_keys=[ForeignKey("name", "players", "name"),
                      ForeignKey("game_id", "game_reports", "game_id")])
_REPORTS_SCHEMA = Schema(
        [ColumnSpec("game_id", DataType.INTEGER, "identifier of the game"),
         ColumnSpec("date", DataType.DATE,
                    "calendar date the game was played on"),
         ColumnSpec("report", DataType.TEXT,
                    "textual report of the game")],
        description="textual game reports",
        foreign_keys=[ForeignKey("game_id", "teams_to_games", "game_id")])


"""Synthetic multi-modal datasets mirroring the paper's two workloads."""

from dataclasses import dataclass

from repro.data.catalog import DataLake
from repro.datasets.artwork import (ArtworkDataset, GENRE_OBJECT_POOLS,
                                    MOVEMENT_ERAS, generate_artwork_dataset)
from repro.datasets.rotowire import (RotowireDataset, TEAMS,
                                     generate_rotowire_dataset)


_GENERATORS = {
    "artwork": generate_artwork_dataset,
    "rotowire": generate_rotowire_dataset,
}

DATASET_NAMES = tuple(sorted(_GENERATORS))


@dataclass(frozen=True)
class LakeSpec:
    """Picklable generation recipe for a lake: ``(dataset, seed, scale)``.

    Generation is deterministic in these three parameters, so a spec is a
    complete, tiny substitute for the lake itself.  The process execution
    backend sends a spec through the pipe and has each worker rebuild its
    own lake via :meth:`build` — 10k-row tables and rendered images never
    get pickled.  ``seed=None`` means the dataset's own default seed.
    """

    dataset: str
    seed: int | None = None
    scale: float = 1.0

    def build(self) -> DataLake:
        """Regenerate the lake this spec describes."""
        return load_lake(self.dataset, seed=self.seed, scale=self.scale)

    def to_dict(self) -> dict:
        return {"dataset": self.dataset, "seed": self.seed,
                "scale": self.scale}

    @classmethod
    def from_dict(cls, data: dict) -> "LakeSpec":
        return cls(dataset=data["dataset"], seed=data.get("seed"),
                   scale=data.get("scale", 1.0))


def load_lake(name: str, seed: int | None = None,
              scale: float = 1.0) -> DataLake:
    """Generate the named dataset and package it as a :class:`DataLake`.

    Entry point used by the CLI, the benchmark harness, and the test
    harness; *seed* of ``None`` means the dataset's default seed, *scale*
    multiplies the dataset's base cardinality (10k+ paintings / 1k+ games
    are a ``--scale`` flag away).  The returned lake carries its
    :class:`LakeSpec` in ``lake.spec``, which is what makes it eligible
    for the process execution backend (workers regenerate the lake from
    the spec instead of receiving it over the pipe).
    """
    if name not in _GENERATORS:
        raise KeyError(f"unknown dataset {name!r}; available: "
                       f"{', '.join(DATASET_NAMES)}")
    generator = _GENERATORS[name]
    kwargs: dict[str, object] = {"scale": scale}
    if seed is not None:
        kwargs["seed"] = seed
    lake = generator(**kwargs).as_lake()
    lake.spec = LakeSpec(dataset=name, seed=seed, scale=scale)
    return lake


__all__ = [
    "ArtworkDataset",
    "DATASET_NAMES",
    "GENRE_OBJECT_POOLS",
    "LakeSpec",
    "MOVEMENT_ERAS",
    "RotowireDataset",
    "TEAMS",
    "generate_artwork_dataset",
    "generate_rotowire_dataset",
    "load_lake",
]

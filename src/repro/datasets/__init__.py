"""Synthetic multi-modal datasets mirroring the paper's two workloads."""

from repro.data.catalog import DataLake
from repro.datasets.artwork import (ArtworkDataset, GENRE_OBJECT_POOLS,
                                    MOVEMENT_ERAS, generate_artwork_dataset)
from repro.datasets.rotowire import (RotowireDataset, TEAMS,
                                     generate_rotowire_dataset)


_GENERATORS = {
    "artwork": generate_artwork_dataset,
    "rotowire": generate_rotowire_dataset,
}

DATASET_NAMES = tuple(sorted(_GENERATORS))


def load_lake(name: str, seed: int | None = None,
              scale: float = 1.0) -> DataLake:
    """Generate the named dataset and package it as a :class:`DataLake`.

    Entry point used by the CLI, the benchmark harness, and the test
    harness; *seed* of ``None`` means the dataset's default seed, *scale*
    multiplies the dataset's base cardinality (10k+ paintings / 1k+ games
    are a ``--scale`` flag away).
    """
    if name not in _GENERATORS:
        raise KeyError(f"unknown dataset {name!r}; available: "
                       f"{', '.join(DATASET_NAMES)}")
    generator = _GENERATORS[name]
    kwargs: dict[str, object] = {"scale": scale}
    if seed is not None:
        kwargs["seed"] = seed
    return generator(**kwargs).as_lake()


__all__ = [
    "ArtworkDataset",
    "DATASET_NAMES",
    "GENRE_OBJECT_POOLS",
    "MOVEMENT_ERAS",
    "RotowireDataset",
    "TEAMS",
    "generate_artwork_dataset",
    "generate_rotowire_dataset",
    "load_lake",
]

"""Synthetic multi-modal datasets mirroring the paper's two workloads."""

from repro.datasets.artwork import (ArtworkDataset, GENRE_OBJECT_POOLS,
                                    MOVEMENT_ERAS, generate_artwork_dataset)
from repro.datasets.rotowire import (RotowireDataset, TEAMS,
                                     generate_rotowire_dataset)

__all__ = [
    "ArtworkDataset",
    "GENRE_OBJECT_POOLS",
    "MOVEMENT_ERAS",
    "RotowireDataset",
    "TEAMS",
    "generate_artwork_dataset",
    "generate_rotowire_dataset",
]

"""Sharded, generator-fed table ingestion for lake generation.

The dataset generators feed their seeded row streams through a
:class:`ShardedTableBuilder` instead of accumulating per-column Python
lists: every ``shard_rows`` rows the pending chunk is packed into the
typed column stores of :mod:`repro.data.columns` and appended to the
growing table, so a scale-1000 lake is never held as row objects.  The
shard size is a pure memory/packing knob — the finished table (values,
``fingerprint()``, ``content_fingerprint()``) is byte-identical for every
shard size, including the one-shot ``shard_rows >= num_rows`` case, which
is what makes the knob safe to tune.
"""

from __future__ import annotations

from typing import Sequence

from repro.data.schema import Schema
from repro.data.table import Table

#: Default rows per ingestion shard.  Large enough that the per-shard
#: packing overhead vanishes, small enough that a pending shard of the
#: widest lake table stays well under a megabyte.
DEFAULT_SHARD_ROWS = 4096


class ShardedTableBuilder:
    """Accumulate rows shard-by-shard into one :class:`Table`.

    ``add()`` buffers plain row tuples; every *shard_rows* rows the buffer
    is packed through :meth:`Table.from_rows` (typed columnar storage) and
    released.  ``finish()`` concatenates the packed shards in arrival
    order.  Peak transient memory is therefore one shard of row tuples
    plus the packed output — independent of the total row count.
    """

    def __init__(self, schema: Schema,
                 shard_rows: int = DEFAULT_SHARD_ROWS):
        if shard_rows <= 0:
            raise ValueError(f"shard_rows must be positive, got {shard_rows}")
        self.schema = schema
        self.shard_rows = shard_rows
        self._pending: list[Sequence[object]] = []
        self._shards: list[Table] = []

    def add(self, row: Sequence[object]) -> None:
        """Append one row (ordered like ``schema.columns``)."""
        self._pending.append(row)
        if len(self._pending) >= self.shard_rows:
            self._flush()

    def _flush(self) -> None:
        if self._pending:
            self._shards.append(Table.from_rows(self.schema, self._pending))
            self._pending = []

    def finish(self) -> Table:
        """The finished table; the builder is drained afterwards."""
        self._flush()
        shards, self._shards = self._shards, []
        if not shards:
            return Table.empty(self.schema)
        table = shards[0]
        for shard in shards[1:]:
            table = table.concat(shard)
        return table

"""A small SQL-like predicate / scalar expression language.

The mapping phase of CAESURA produces operator arguments such as selection
conditions (``madonna_depicted = 'yes' AND century >= 16``).  This module
parses those strings into an AST that can be evaluated row-by-row against a
:class:`repro.data.table.Table` row dict.

Grammar (recursive descent)::

    or_expr   := and_expr (OR and_expr)*
    and_expr  := not_expr (AND not_expr)*
    not_expr  := NOT not_expr | comparison
    comparison:= operand (cmp_op operand | IS [NOT] NULL
                  | [NOT] LIKE string | [NOT] IN '(' literal_list ')')?
    operand   := literal | column_ref | '(' or_expr ')'
    literal   := number | string | bool | NULL | DATE string
    column_ref:= IDENT ('.' IDENT)?

Typed date literals (``DATE '1880-01-01'``) evaluate to
:class:`datetime.date` objects; comparisons coerce ISO-formatted strings
(how the lake tables store dates) against them, so date-range predicates
like ``inception BETWEEN DATE '1880-01-01' AND DATE '1895-12-31'`` work
directly over string-typed date columns.  These are the same tagged date
scalars the plan-IR serde layer carries.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from datetime import date
from typing import Mapping

from repro.errors import ExpressionError

_TOKEN_RE = re.compile(
    r"""\s*(?:
        (?P<number>-?\d+\.\d+|-?\d+)
      | (?P<string>'(?:[^']|'')*'|"(?:[^"]|"")*")
      | (?P<op><>|!=|<=|>=|==|=|<|>)
      | (?P<lparen>\()
      | (?P<rparen>\))
      | (?P<comma>,)
      | (?P<ident>[A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z_][A-Za-z0-9_]*)?)
    )""",
    re.VERBOSE,
)

_KEYWORDS = {"and", "or", "not", "like", "in", "is", "null", "true", "false",
             "between"}


@dataclass(frozen=True)
class Token:
    kind: str
    value: str


def tokenize(text: str) -> list[Token]:
    """Split an expression string into tokens."""
    tokens: list[Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise ExpressionError(
                f"cannot tokenize expression at {remainder[:20]!r}")
        pos = match.end()
        for kind in ("number", "string", "op", "lparen", "rparen", "comma",
                     "ident"):
            value = match.group(kind)
            if value is not None:
                if kind == "ident" and value.lower() in _KEYWORDS:
                    tokens.append(Token("keyword", value.lower()))
                else:
                    tokens.append(Token(kind, value))
                break
    return tokens


# ----------------------------------------------------------------------
# AST nodes
# ----------------------------------------------------------------------


class Expr:
    """Base class of expression AST nodes."""

    def evaluate(self, row: Mapping[str, object]) -> object:
        raise NotImplementedError

    def referenced_columns(self) -> set[str]:
        raise NotImplementedError


@dataclass(frozen=True)
class Literal(Expr):
    value: object

    def evaluate(self, row: Mapping[str, object]) -> object:
        return self.value

    def referenced_columns(self) -> set[str]:
        return set()


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A column reference, optionally table-qualified (``p.year``)."""

    name: str

    @property
    def bare_name(self) -> str:
        return self.name.rsplit(".", 1)[-1]

    def evaluate(self, row: Mapping[str, object]) -> object:
        if self.name in row:
            return row[self.name]
        bare = self.bare_name
        if bare in row:
            return row[bare]
        raise ExpressionError(
            f"unknown column {self.name!r} in expression "
            f"(row has: {', '.join(sorted(map(str, row)))})")

    def referenced_columns(self) -> set[str]:
        return {self.bare_name}


def _as_date(value: object) -> date | None:
    """Coerce an ISO date string (or date) to ``date``; ``None`` on failure."""
    if isinstance(value, date):
        return value
    if isinstance(value, str):
        try:
            return date.fromisoformat(value.strip())
        except ValueError:
            return None
    return None


def _compare(op: str, left: object, right: object) -> bool:
    if left is None or right is None:
        return False  # SQL three-valued logic, collapsed to False
    # Typed date comparisons: when either side is a date, coerce the other
    # side from its ISO string form (how lake tables store dates).
    if isinstance(left, date) or isinstance(right, date):
        left_date, right_date = _as_date(left), _as_date(right)
        if left_date is None or right_date is None:
            return False
        left, right = left_date, right_date
    # Allow numeric comparison against numeric strings, as SQLite does.
    if isinstance(left, str) and isinstance(right, (int, float)):
        try:
            left = float(left)
        except ValueError:
            return False
    if isinstance(right, str) and isinstance(left, (int, float)):
        try:
            right = float(right)
        except ValueError:
            return False
    try:
        if op in ("=", "=="):
            return left == right
        if op in ("!=", "<>"):
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
    except TypeError as exc:
        raise ExpressionError(
            f"cannot compare {left!r} {op} {right!r}") from exc
    raise ExpressionError(f"unknown comparison operator {op!r}")


@dataclass(frozen=True)
class Comparison(Expr):
    op: str
    left: Expr
    right: Expr

    def evaluate(self, row: Mapping[str, object]) -> object:
        return _compare(self.op, self.left.evaluate(row),
                        self.right.evaluate(row))

    def referenced_columns(self) -> set[str]:
        return self.left.referenced_columns() | self.right.referenced_columns()


@dataclass(frozen=True)
class Between(Expr):
    operand: Expr
    low: Expr
    high: Expr

    def evaluate(self, row: Mapping[str, object]) -> object:
        value = self.operand.evaluate(row)
        return (_compare(">=", value, self.low.evaluate(row))
                and _compare("<=", value, self.high.evaluate(row)))

    def referenced_columns(self) -> set[str]:
        return (self.operand.referenced_columns()
                | self.low.referenced_columns()
                | self.high.referenced_columns())


@dataclass(frozen=True)
class Like(Expr):
    operand: Expr
    pattern: str
    negated: bool = False

    def evaluate(self, row: Mapping[str, object]) -> object:
        value = self.operand.evaluate(row)
        if value is None:
            return False
        regex = re.escape(self.pattern).replace(r"%", ".*").replace(r"_", ".")
        matched = re.fullmatch(regex, str(value), re.IGNORECASE) is not None
        return matched != self.negated

    def referenced_columns(self) -> set[str]:
        return self.operand.referenced_columns()


@dataclass(frozen=True)
class InList(Expr):
    operand: Expr
    values: tuple[object, ...]
    negated: bool = False

    def evaluate(self, row: Mapping[str, object]) -> object:
        value = self.operand.evaluate(row)
        if value is None:
            return False
        return (value in self.values) != self.negated

    def referenced_columns(self) -> set[str]:
        return self.operand.referenced_columns()


@dataclass(frozen=True)
class IsNull(Expr):
    operand: Expr
    negated: bool = False

    def evaluate(self, row: Mapping[str, object]) -> object:
        return (self.operand.evaluate(row) is None) != self.negated

    def referenced_columns(self) -> set[str]:
        return self.operand.referenced_columns()


@dataclass(frozen=True)
class BoolOp(Expr):
    op: str  # "and" | "or"
    operands: tuple[Expr, ...]

    def evaluate(self, row: Mapping[str, object]) -> object:
        if self.op == "and":
            return all(bool(o.evaluate(row)) for o in self.operands)
        return any(bool(o.evaluate(row)) for o in self.operands)

    def referenced_columns(self) -> set[str]:
        columns: set[str] = set()
        for operand in self.operands:
            columns |= operand.referenced_columns()
        return columns


@dataclass(frozen=True)
class Not(Expr):
    operand: Expr

    def evaluate(self, row: Mapping[str, object]) -> object:
        return not bool(self.operand.evaluate(row))

    def referenced_columns(self) -> set[str]:
        return self.operand.referenced_columns()


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------


class _Parser:
    def __init__(self, tokens: list[Token], source: str):
        self._tokens = tokens
        self._source = source
        self._pos = 0

    def _peek(self) -> Token | None:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _next(self) -> Token:
        token = self._peek()
        if token is None:
            raise ExpressionError(
                f"unexpected end of expression: {self._source!r}")
        self._pos += 1
        return token

    def _accept(self, kind: str, value: str | None = None) -> Token | None:
        token = self._peek()
        if token and token.kind == kind and (value is None
                                             or token.value == value):
            return self._next()
        return None

    def _expect(self, kind: str, value: str | None = None) -> Token:
        token = self._accept(kind, value)
        if token is None:
            found = self._peek()
            raise ExpressionError(
                f"expected {value or kind} but found "
                f"{found.value if found else 'end'} in {self._source!r}")
        return token

    def parse(self) -> Expr:
        expr = self._or_expr()
        if self._peek() is not None:
            raise ExpressionError(
                f"trailing tokens after expression in {self._source!r}")
        return expr

    def _or_expr(self) -> Expr:
        operands = [self._and_expr()]
        while self._accept("keyword", "or"):
            operands.append(self._and_expr())
        if len(operands) == 1:
            return operands[0]
        return BoolOp("or", tuple(operands))

    def _and_expr(self) -> Expr:
        operands = [self._not_expr()]
        while self._accept("keyword", "and"):
            operands.append(self._not_expr())
        if len(operands) == 1:
            return operands[0]
        return BoolOp("and", tuple(operands))

    def _not_expr(self) -> Expr:
        if self._accept("keyword", "not"):
            return Not(self._not_expr())
        return self._comparison()

    def _comparison(self) -> Expr:
        left = self._operand()
        token = self._peek()
        if token is None:
            return left
        if token.kind == "op":
            op = self._next().value
            return Comparison(op, left, self._operand())
        if token.kind == "keyword":
            if token.value == "is":
                self._next()
                negated = self._accept("keyword", "not") is not None
                self._expect("keyword", "null")
                return IsNull(left, negated=negated)
            if token.value == "between":
                self._next()
                low = self._operand()
                self._expect("keyword", "and")
                high = self._operand()
                return Between(left, low, high)
            negated = False
            if token.value == "not":
                self._next()
                negated = True
                token = self._peek()
                if token is None or token.kind != "keyword":
                    raise ExpressionError(
                        f"expected LIKE or IN after NOT in {self._source!r}")
            if token.value == "like":
                self._next()
                pattern = self._expect("string").value
                return Like(left, _unquote(pattern), negated=negated)
            if token.value == "in":
                self._next()
                self._expect("lparen")
                values = [self._literal_value()]
                while self._accept("comma"):
                    values.append(self._literal_value())
                self._expect("rparen")
                return InList(left, tuple(values), negated=negated)
            if negated:
                raise ExpressionError(
                    f"expected LIKE or IN after NOT in {self._source!r}")
        return left

    def _date_literal(self) -> Expr | None:
        """``DATE '<iso>'`` when the next tokens spell one, else ``None``."""
        token = self._peek()
        if (token is None or token.kind != "ident"
                or token.value.lower() != "date"):
            return None
        following = (self._tokens[self._pos + 1]
                     if self._pos + 1 < len(self._tokens) else None)
        if following is None or following.kind != "string":
            return None  # a column named 'date', not a literal
        self._next()
        text = _unquote(self._next().value)
        try:
            return Literal(date.fromisoformat(text.strip()))
        except ValueError as exc:
            raise ExpressionError(
                f"invalid DATE literal {text!r} in {self._source!r}") from exc

    def _literal_value(self) -> object:
        date_literal = self._date_literal()
        if date_literal is not None:
            return date_literal.value
        token = self._next()
        if token.kind == "number":
            return _parse_number(token.value)
        if token.kind == "string":
            return _unquote(token.value)
        if token.kind == "keyword" and token.value in ("true", "false"):
            return token.value == "true"
        raise ExpressionError(
            f"expected literal but found {token.value!r} in {self._source!r}")

    def _operand(self) -> Expr:
        date_literal = self._date_literal()
        if date_literal is not None:
            return date_literal
        token = self._peek()
        if token is None:
            raise ExpressionError(
                f"unexpected end of expression: {self._source!r}")
        if token.kind == "lparen":
            self._next()
            inner = self._or_expr()
            self._expect("rparen")
            return inner
        if token.kind == "number":
            self._next()
            return Literal(_parse_number(token.value))
        if token.kind == "string":
            self._next()
            return Literal(_unquote(token.value))
        if token.kind == "keyword" and token.value in ("true", "false"):
            self._next()
            return Literal(token.value == "true")
        if token.kind == "keyword" and token.value == "null":
            self._next()
            return Literal(None)
        if token.kind == "ident":
            self._next()
            return ColumnRef(token.value)
        raise ExpressionError(
            f"unexpected token {token.value!r} in {self._source!r}")


def _parse_number(text: str) -> object:
    if "." in text:
        return float(text)
    return int(text)


def _unquote(text: str) -> str:
    quote = text[0]
    body = text[1:-1]
    return body.replace(quote * 2, quote)


def parse_expression(text: str) -> Expr:
    """Parse *text* into an expression AST.

    Raises :class:`repro.errors.ExpressionError` on malformed input.
    """
    stripped = text.strip()
    if not stripped:
        raise ExpressionError("empty expression")
    return _Parser(tokenize(stripped), stripped).parse()


def evaluate_predicate(text: str, row: Mapping[str, object]) -> bool:
    """Parse and evaluate a predicate against one row."""
    return bool(parse_expression(text).evaluate(row))

"""SELECT-only SQL guard (Section 5, "Security").

The paper: *"we limit e.g. generated SQL code to only SELECT statements and
prevent running UPDATE, INSERT or DELETE statements that could maliciously
manipulate data."*

The guard strips string literals and comments, then checks that the statement
is a single ``SELECT`` (or ``WITH ... SELECT``) and contains no mutating or
escape-hatch keyword anywhere.
"""

from __future__ import annotations

import re

from repro.errors import SQLGuardError

_FORBIDDEN_KEYWORDS = frozenset({
    "insert", "update", "delete", "replace", "drop", "alter", "create",
    "attach", "detach", "pragma", "vacuum", "reindex", "analyze", "grant",
    "revoke", "truncate", "merge", "load_extension",
})

_STRING_OR_COMMENT_RE = re.compile(
    r"""
      '(?:[^']|'')*'          # single-quoted string
    | "(?:[^"]|"")*"          # double-quoted identifier
    | --[^\n]*                # line comment
    | /\*.*?\*/               # block comment
    """,
    re.VERBOSE | re.DOTALL,
)


def _strip_strings_and_comments(sql: str) -> str:
    return _STRING_OR_COMMENT_RE.sub(" ", sql)


def validate_select_only(sql: str) -> str:
    """Validate that *sql* is one read-only SELECT statement.

    Returns the statement with a trailing semicolon removed, ready to be
    handed to sqlite3.  Raises :class:`SQLGuardError` otherwise.
    """
    if not sql or not sql.strip():
        raise SQLGuardError("empty SQL statement")
    stripped = _strip_strings_and_comments(sql).strip()
    if not stripped:
        raise SQLGuardError("SQL contains only comments")

    # A single statement: at most one semicolon, and only at the very end.
    body = stripped.rstrip()
    if body.endswith(";"):
        body = body[:-1]
    if ";" in body:
        raise SQLGuardError("multiple SQL statements are not allowed")

    first_word_match = re.match(r"\s*([A-Za-z_]+)", body)
    if first_word_match is None:
        raise SQLGuardError(f"cannot parse SQL statement: {sql[:50]!r}")
    first_word = first_word_match.group(1).lower()
    if first_word not in ("select", "with"):
        raise SQLGuardError(
            f"only SELECT statements are allowed, got {first_word.upper()!r}")

    words = set(re.findall(r"[A-Za-z_]+", body.lower()))
    banned = sorted(words & _FORBIDDEN_KEYWORDS)
    if banned:
        raise SQLGuardError(
            f"forbidden SQL keyword(s): {', '.join(k.upper() for k in banned)}")

    cleaned = sql.strip()
    if cleaned.endswith(";"):
        cleaned = cleaned[:-1]
    return cleaned

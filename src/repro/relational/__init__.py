"""Relational engine: expressions, native operators, SQL guard, sqlite bridge."""

from repro.relational.expressions import (Expr, evaluate_predicate,
                                          parse_expression)
from repro.relational.guard import validate_select_only
from repro.relational.ops import (AGGREGATES, distinct, group_aggregate, join,
                                  limit, normalize_aggregate, project, rename,
                                  select, sort, union_all)
from repro.relational.sqlexec import ObjectStore, SQLExecutor, run_sql

__all__ = [
    "AGGREGATES",
    "Expr",
    "ObjectStore",
    "SQLExecutor",
    "distinct",
    "evaluate_predicate",
    "group_aggregate",
    "join",
    "limit",
    "normalize_aggregate",
    "parse_expression",
    "project",
    "rename",
    "run_sql",
    "select",
    "sort",
    "union_all",
    "validate_select_only",
]

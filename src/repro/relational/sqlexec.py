"""sqlite3 bridge: run guarded SELECT statements over multi-modal tables.

The paper's prototype "has access to all relational operators supported by
SQLite".  Modality values (IMAGE / TEXT objects) cannot live inside sqlite,
so the bridge swaps each object for an opaque token (``obj://<n>``) held in
an :class:`ObjectStore`, runs the query, and resolves tokens in the result
back into objects — restoring the modality datatype of any result column
whose values are all tokens of one modality.  This is what lets an image
column flow through a regular SQL join (Figure 4).
"""

from __future__ import annotations

import re
import sqlite3
from dataclasses import dataclass, field
from datetime import date
from typing import Sequence

from repro.data.datatypes import DataType
from repro.data.schema import ColumnSpec, Schema
from repro.data.table import Table
from repro.errors import SQLExecutionError
from repro.relational.guard import validate_select_only

_TOKEN_RE = re.compile(r"^obj://(\d+)$")


@dataclass
class ObjectStore:
    """Maps modality objects to opaque string tokens and back."""

    _objects: list[tuple[object, DataType]] = field(default_factory=list)

    def put(self, obj: object, dtype: DataType) -> str:
        self._objects.append((obj, dtype))
        return f"obj://{len(self._objects) - 1}"

    def get(self, token: str) -> tuple[object, DataType]:
        match = _TOKEN_RE.match(token)
        if match is None:
            raise SQLExecutionError(f"not an object token: {token!r}")
        return self._objects[int(match.group(1))]

    def is_token(self, value: object) -> bool:
        return isinstance(value, str) and _TOKEN_RE.match(value) is not None


def _quote_ident(name: str) -> str:
    return '"' + name.replace('"', '""') + '"'


def _adapt_cell(value: object) -> object:
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, date):
        return value.isoformat()
    return value


class SQLExecutor:
    """Executes SELECT-only SQL over registered :class:`Table` values.

    *check_same_thread* is forwarded to :func:`sqlite3.connect`; pass
    ``False`` for executors that outlive one query and may be driven from
    different (but never concurrent) threads, like :class:`SQLBridge`.
    """

    def __init__(self, check_same_thread: bool = True) -> None:
        self._connection = sqlite3.connect(
            ":memory:", check_same_thread=check_same_thread)
        self._store = ObjectStore()
        self._registered: dict[str, Table] = {}

    def close(self) -> None:
        self._connection.close()

    def __enter__(self) -> "SQLExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def registered_tables(self) -> list[str]:
        return list(self._registered)

    def register(self, name: str, table: Table) -> None:
        """(Re-)register *table* under *name* in the sqlite database."""
        if not re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", name):
            raise SQLExecutionError(f"invalid table name {name!r}")
        cursor = self._connection.cursor()
        cursor.execute(f"DROP TABLE IF EXISTS {_quote_ident(name)}")
        column_defs = ", ".join(
            f"{_quote_ident(spec.name)} {spec.dtype.sqlite_affinity}"
            for spec in table.schema.columns)
        cursor.execute(f"CREATE TABLE {_quote_ident(name)} ({column_defs})")

        modality = {spec.name: spec.dtype
                    for spec in table.schema.modality_columns}
        placeholders = ", ".join("?" for _ in table.column_names)
        insert_sql = (f"INSERT INTO {_quote_ident(name)} "
                      f"VALUES ({placeholders})")
        # Column-wise cell preparation: the register hot path dominates batch
        # execution on large lakes, so per-row dict building is avoided and
        # columns that need no conversion are passed through untouched.
        prepared: list[Sequence[object]] = []
        for column in table.column_names:
            values = table.column(column)
            if column in modality:
                store = self._store
                dtype = modality[column]
                prepared.append([None if v is None else store.put(v, dtype)
                                 for v in values])
            elif any(isinstance(v, (date, bool)) for v in values):
                prepared.append([_adapt_cell(v) for v in values])
            else:
                prepared.append(values)
        cursor.executemany(insert_sql, zip(*prepared) if prepared else [])
        self._connection.commit()
        self._registered[name] = table

    def unregister(self, name: str) -> None:
        """Drop *name* from the sqlite database (no-op when absent)."""
        if name not in self._registered:
            return
        self._connection.execute(f"DROP TABLE IF EXISTS {_quote_ident(name)}")
        self._connection.commit()
        del self._registered[name]

    def execute(self, sql: str) -> Table:
        """Run one guarded SELECT and return the result as a :class:`Table`."""
        cleaned = validate_select_only(sql)
        cursor = self._connection.cursor()
        try:
            cursor.execute(cleaned)
        except sqlite3.Error as exc:
            raise SQLExecutionError(f"SQL failed: {exc} (query: {sql})") from exc
        if cursor.description is None:
            raise SQLExecutionError("statement returned no result set")
        names = [d[0] for d in cursor.description]
        raw_rows = cursor.fetchall()
        # sqlite can return duplicate column names; make them unique.
        unique_names: list[str] = []
        counts: dict[str, int] = {}
        for name in names:
            counts[name] = counts.get(name, 0) + 1
            if counts[name] > 1:
                unique_names.append(f"{name}_{counts[name]}")
            else:
                unique_names.append(name)
        columns = {n: [] for n in unique_names}
        for raw in raw_rows:
            for name, value in zip(unique_names, raw):
                columns[name].append(value)
        return self._to_table(unique_names, columns)

    def _to_table(self, names: list[str],
                  columns: dict[str, list[object]]) -> Table:
        specs = []
        resolved: dict[str, list[object]] = {}
        for name in names:
            values = columns[name]
            tokens = [v for v in values if v is not None]
            if tokens and all(self._store.is_token(v) for v in tokens):
                dtypes = set()
                objects = []
                for value in values:
                    if value is None:
                        objects.append(None)
                        continue
                    obj, dtype = self._store.get(value)
                    objects.append(obj)
                    dtypes.add(dtype)
                dtype = dtypes.pop() if len(dtypes) == 1 else DataType.STRING
                specs.append(ColumnSpec(name, dtype))
                resolved[name] = objects
                continue
            resolved[name] = values
            specs.append(ColumnSpec(name, _infer_sql_dtype(values)))
        return Table(Schema(specs), resolved)


def _infer_sql_dtype(values: list[object]) -> DataType:
    kinds = {type(v) for v in values if v is not None}
    if not kinds:
        return DataType.STRING
    if kinds <= {int}:
        return DataType.INTEGER
    if kinds <= {int, float}:
        return DataType.FLOAT
    return DataType.STRING


def build_join_sql(left_name: str, right_name: str,
                   left_on: str, right_on: str,
                   left_columns: Sequence[str],
                   right_columns: Sequence[str]) -> str:
    """One SELECT implementing an equi-join with cross-column keys.

    Produces exactly the shape of :func:`repro.relational.ops.join`:
    left columns first, then right columns with clashes ``_right``-suffixed
    (a same-name key is merged).  ``CROSS JOIN ... ON`` is used instead of
    plain ``JOIN`` because SQLite treats them as semantic equivalents but
    never reorders a CROSS JOIN — rows therefore come back in
    left-row-major order, matching the native hash join, which keeps
    results byte-identical whichever path executes the step.
    """
    from repro.relational.ops import join_renames

    renames = join_renames(left_columns, right_columns, left_on, right_on)
    select_parts = [f"{_quote_ident(left_name)}.{_quote_ident(name)}"
                    for name in left_columns]
    for name in right_columns:
        if name == right_on and right_on == left_on:
            continue  # merged into the single left-side key column
        source = f"{_quote_ident(right_name)}.{_quote_ident(name)}"
        if name in renames:
            select_parts.append(f"{source} AS {_quote_ident(renames[name])}")
        else:
            select_parts.append(source)
    return (f"SELECT {', '.join(select_parts)} "
            f"FROM {_quote_ident(left_name)} "
            f"CROSS JOIN {_quote_ident(right_name)} "
            f"ON {_quote_ident(left_name)}.{_quote_ident(left_on)} = "
            f"{_quote_ident(right_name)}.{_quote_ident(right_on)}")


class SQLBridge:
    """A connection-lifetime sqlite bridge that memoizes registrations.

    :meth:`SQLExecutor.register` copies every row into sqlite, which
    dominates batch execution on large lakes when each SQL step rebuilds
    the database from scratch.  A bridge keeps one connection alive across
    queries and re-registers a table only when its content fingerprint
    (:meth:`repro.data.table.Table.fingerprint`) changed under its name —
    the immutable lake tables of a warmed-up engine are therefore copied
    into sqlite exactly once per engine, not once per SQL step.

    One bridge belongs to one engine (one in-flight query at a time); the
    connection is opened with ``check_same_thread=False`` because the
    thread backend may run consecutive queries of the same engine on
    different pool threads.  Concurrent use of a single bridge is not
    supported — engines are never shared by two in-flight queries.
    """

    def __init__(self) -> None:
        self._executor = SQLExecutor(check_same_thread=False)
        self._fingerprints: dict[str, str] = {}
        #: diagnostic counters: sqlite registrations actually performed vs.
        #: registrations skipped because the fingerprint matched.
        self.registrations = 0
        self.reuses = 0

    def close(self) -> None:
        self._executor.close()
        self._fingerprints.clear()

    def __enter__(self) -> "SQLBridge":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def sync(self, tables: dict[str, Table],
             known: dict[str, Table] | None = None) -> None:
        """Bring the sqlite database up to date with *tables*.

        *known* is the full set of currently valid table names (defaults
        to *tables*); registrations whose name is no longer valid are
        dropped, so a statement can never be answered from a table that a
        previous query bound and this one does not know about.
        """
        valid = known if known is not None else tables
        for name in [n for n in self._fingerprints if n not in valid]:
            self._executor.unregister(name)
            del self._fingerprints[name]
        for name, table in tables.items():
            fingerprint = table.fingerprint()
            if self._fingerprints.get(name) == fingerprint:
                self.reuses += 1
                continue
            self._executor.register(name, table)
            self._fingerprints[name] = fingerprint
            self.registrations += 1

    def execute(self, sql: str, tables: dict[str, Table],
                known: dict[str, Table] | None = None) -> Table:
        """Sync *tables* (pruning against *known*) and run one SELECT."""
        self.sync(tables, known=known)
        return self._executor.execute(sql)


def run_sql(sql: str, tables: dict[str, Table]) -> Table:
    """One-shot convenience: register *tables*, execute *sql*, return result."""
    with SQLExecutor() as executor:
        for name, table in tables.items():
            executor.register(name, table)
        return executor.execute(sql)

"""Native relational operators over multi-modal tables.

These implement the relational algebra CAESURA needs (selection, projection,
equi-join, grouping/aggregation, sorting, limiting, distinct) directly on
:class:`repro.data.table.Table`, *including* modality columns — an image
column survives a join untouched, exactly as in Figure 4 of the paper.

The :class:`repro.operators.sql_ops` physical operators can execute either
through this engine or through the sqlite3 bridge
(:mod:`repro.relational.sqlexec`).
"""

from __future__ import annotations

import sqlite3
from typing import Callable, Sequence

from repro.data.datatypes import DataType
from repro.data.schema import ColumnSpec, Schema
from repro.data.table import Table
from repro.errors import ExpressionError, SchemaError, UnknownColumnError
from repro.relational.expressions import Expr, parse_expression


def select(table: Table, predicate: str | Expr) -> Table:
    """Rows of *table* satisfying *predicate*."""
    expr = (parse_expression(predicate)
            if isinstance(predicate, str) else predicate)
    for column in expr.referenced_columns():
        if column not in table:
            raise UnknownColumnError(column, table.column_names)
    mask = [bool(expr.evaluate(row)) for row in table.rows()]
    return table.filter(mask)


def project(table: Table, columns: Sequence[str]) -> Table:
    """Keep only *columns*, in the given order."""
    return table.project(list(columns))


def rename(table: Table, mapping: dict[str, str]) -> Table:
    return table.rename(mapping)


def join_renames(left_columns: Sequence[str], right_columns: Sequence[str],
                 left_on: str, right_on: str) -> dict[str, str]:
    """Right-side rename map for an equi-join's name clashes.

    Clashing right-side columns get a ``_right`` suffix, except a
    same-name join key, which is merged into a single key column.  This is
    the single naming rule shared by the native :func:`join` and the SQL
    join statement builder (:func:`repro.relational.sqlexec.build_join_sql`),
    so both execution paths produce identically-shaped tables.
    """
    renames: dict[str, str] = {}
    for name in right_columns:
        if name not in left_columns:
            continue
        if name == right_on and right_on == left_on:
            continue  # merged into a single key column
        renames[name] = f"{name}_right"
    return renames


def join(left: Table, right: Table, left_on: str, right_on: str,
         how: str = "inner") -> Table:
    """Hash equi-join, supporting cross-column keys (``team = name``).

    *left_on* / *right_on* name the key column on each side; they may
    differ (a cross-column foreign key like ``players.team = teams.name``).
    Right-side name clashes get a ``_right`` suffix (:func:`join_renames`);
    modality columns (IMAGE / TEXT) survive untouched, exactly as in
    Figure 4 of the paper.  ``how`` is ``"inner"`` or ``"left"``.
    """
    if how not in ("inner", "left"):
        raise SchemaError(f"unsupported join type {how!r}")
    if left_on not in left:
        raise UnknownColumnError(left_on, left.column_names)
    if right_on not in right:
        raise UnknownColumnError(right_on, right.column_names)

    renames = join_renames(left.column_names, right.column_names,
                           left_on, right_on)
    renamed_right = right.rename(renames) if renames else right
    right_key = renames.get(right_on, right_on)

    index: dict[object, list[int]] = {}
    for i, key in enumerate(renamed_right.column(right_key)):
        if key is None:
            continue
        index.setdefault(key, []).append(i)

    left_indices: list[int] = []
    right_indices: list[int | None] = []
    for i, key in enumerate(left.column(left_on)):
        matches = index.get(key, []) if key is not None else []
        if matches:
            for j in matches:
                left_indices.append(i)
                right_indices.append(j)
        elif how == "left":
            left_indices.append(i)
            right_indices.append(None)

    out_left = left.take(left_indices)
    right_columns = [name for name in renamed_right.column_names
                     if not (name == right_key and right_on == left_on)]
    result = out_left
    for name in right_columns:
        values = renamed_right.column(name)
        picked = [values[j] if j is not None else None for j in right_indices]
        result = result.with_column(name, renamed_right.dtype(name), picked)
    return result


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------


def _numeric(values: list[object], agg: str) -> list[float]:
    numbers = []
    for value in values:
        if value is None:
            continue
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            try:
                value = float(value)
            except (TypeError, ValueError) as exc:
                raise ExpressionError(
                    f"aggregate {agg} needs numeric values, got {value!r}"
                ) from exc
        numbers.append(value)
    return numbers


def sqlite_float_sum(numbers: Sequence[float]) -> float:
    """Sum *numbers* exactly the way the host sqlite's ``SUM()`` does.

    sqlite accumulates floating-point sums naively (in row order) before
    3.44 and with Kahan-Babuska compensation from 3.44 on.  Matching the
    linked library keeps native/columnar aggregates byte-identical with
    the sqlite bridge on every platform, which the differential fuzzer
    asserts.
    """
    if sqlite3.sqlite_version_info < (3, 44, 0):
        total = 0.0
        for number in numbers:
            total += number
        return total
    total = 0.0
    error = 0.0
    for number in numbers:
        new_total = total + number
        if abs(total) > abs(number):
            error += (total - new_total) + number
        else:
            error += (number - new_total) + total
        total = new_total
    return total + error


def _agg_count(values: list[object]) -> int:
    return sum(1 for v in values if v is not None)


def _agg_count_distinct(values: list[object]) -> int:
    return len({v for v in values if v is not None})


def _agg_sum(values: list[object]) -> object:
    numbers = _numeric(values, "sum")
    if not numbers:
        return None
    if all(type(n) is int for n in numbers):
        return sum(numbers)
    return sqlite_float_sum(numbers)


def _agg_avg(values: list[object]) -> object:
    numbers = _numeric(values, "avg")
    if not numbers:
        return None
    if all(type(n) is int for n in numbers):
        return sum(numbers) / len(numbers)
    return sqlite_float_sum(numbers) / len(numbers)


def _agg_min(values: list[object]) -> object:
    kept = [v for v in values if v is not None]
    return min(kept) if kept else None


def _agg_max(values: list[object]) -> object:
    kept = [v for v in values if v is not None]
    return max(kept) if kept else None


AGGREGATES: dict[str, Callable[[list[object]], object]] = {
    "count": _agg_count,
    "count_distinct": _agg_count_distinct,
    "sum": _agg_sum,
    "avg": _agg_avg,
    "mean": _agg_avg,
    "min": _agg_min,
    "max": _agg_max,
}

_AGG_DTYPES = {
    "count": DataType.INTEGER,
    "count_distinct": DataType.INTEGER,
    "sum": DataType.FLOAT,
    "avg": DataType.FLOAT,
    "mean": DataType.FLOAT,
}


def normalize_aggregate(name: str) -> str:
    """Map natural-language aggregate names onto engine names."""
    lowered = name.strip().lower()
    synonyms = {
        "number": "count", "number of": "count", "amount": "count",
        "maximum": "max", "highest": "max", "largest": "max", "most": "max",
        "minimum": "min", "lowest": "min", "smallest": "min",
        "earliest": "min", "latest": "max",
        "average": "avg", "total": "sum",
    }
    lowered = synonyms.get(lowered, lowered)
    if lowered not in AGGREGATES:
        raise ExpressionError(f"unknown aggregate function {name!r}")
    return lowered


def group_aggregate(table: Table, keys: Sequence[str],
                    aggregations: Sequence[tuple[str, str, str]]) -> Table:
    """GROUP BY *keys* with ``(function, input_column, output_column)`` specs.

    With empty *keys*, aggregates the whole table into one row.
    ``count`` over the pseudo-column ``"*"`` counts rows.
    """
    for key in keys:
        if key not in table:
            raise UnknownColumnError(key, table.column_names)
    normalized = []
    for func, column, output in aggregations:
        func = normalize_aggregate(func)
        if column != "*" and column not in table:
            raise UnknownColumnError(column, table.column_names)
        normalized.append((func, column, output))

    groups: dict[tuple[object, ...], list[int]] = {}
    order: list[tuple[object, ...]] = []
    if keys:
        key_columns = [table.column(k) for k in keys]
        for i in range(table.num_rows):
            group_key = tuple(col[i] for col in key_columns)
            if group_key not in groups:
                groups[group_key] = []
                order.append(group_key)
            groups[group_key].append(i)
    else:
        groups[()] = list(range(table.num_rows))
        order.append(())

    specs = [ColumnSpec(k, table.dtype(k)) for k in keys]
    for func, column, output in normalized:
        if func in _AGG_DTYPES:
            dtype = _AGG_DTYPES[func]
        elif column == "*":
            dtype = DataType.INTEGER
        else:
            dtype = table.dtype(column)
        specs.append(ColumnSpec(output, dtype))
    schema = Schema(specs, description=table.schema.description)

    rows = []
    for group_key in order:
        indices = groups[group_key]
        row: list[object] = list(group_key)
        for func, column, _output in normalized:
            if column == "*":
                row.append(len(indices))
                continue
            values = [table.column(column)[i] for i in indices]
            row.append(AGGREGATES[func](values))
        rows.append(row)
    return Table.from_rows(schema, rows)


def sort(table: Table, by: Sequence[str],
         descending: bool | Sequence[bool] = False) -> Table:
    """Stable multi-key sort; ``None`` sorts last on ascending keys."""
    if isinstance(descending, bool):
        flags = [descending] * len(by)
    else:
        flags = list(descending)
        if len(flags) != len(by):
            raise SchemaError("descending flags must match sort keys")
    for key in by:
        if key not in table:
            raise UnknownColumnError(key, table.column_names)
    indices = list(range(table.num_rows))
    for key, desc in reversed(list(zip(by, flags))):
        values = table.column(key)

        def sort_key(i: int, values=values) -> tuple[bool, object]:
            value = values[i]
            return (value is None, value)

        indices.sort(key=sort_key, reverse=desc)
    return table.take(indices)


def limit(table: Table, n: int) -> Table:
    return table.head(n)


def distinct(table: Table, columns: Sequence[str] | None = None) -> Table:
    """Distinct rows (over *columns* if given, else all relational columns)."""
    if columns is None:
        columns = [c.name for c in table.schema.relational_columns]
    keep: list[int] = []
    seen: set[tuple[object, ...]] = set()
    value_columns = [table.column(c) for c in columns]
    for i in range(table.num_rows):
        key = tuple(col[i] for col in value_columns)
        if key not in seen:
            seen.add(key)
            keep.append(i)
    return table.take(keep)


def union_all(left: Table, right: Table) -> Table:
    return left.concat(right)

"""Columnar SQL execution: run the engine's SELECT dialect without sqlite.

The mapping phase emits SQL from a closed grammar (single-table filters,
USING / ON equi-joins, grouped and whole-table aggregates, ORDER BY +
LIMIT superlatives, DISTINCT projections).  This module parses that
dialect and executes it directly over :class:`repro.data.table.Table`
column storage — vectorized numpy kernels over the typed buffers of
:mod:`repro.data.columns`, dictionary-coded string predicates — without
copying a single row into sqlite.

Byte-identical output is the contract.  Results reproduce the sqlite
bridge exactly: the same cell values (dates as ISO strings, bools as
ints), the same inferred result dtypes, the same row order (sqlite's
left-row-major joins, NULLs-first ascending sorts, first-occurrence
DISTINCT), the same duplicate-name suffixing.  Any statement — or data
shape — outside the envelope where that equivalence is *proven* raises
:class:`UnsupportedSQL` and the caller falls back to the bridge, so
correctness never depends on this module being clever enough.

Two execution engines share the parser and the guards:

``columnar``
    Filters via numpy masks over typed column buffers; aggregates and
    ordering over adapted (sqlite-representation) values.

``native``
    The same parsed statement routed through the row-wise operators in
    :mod:`repro.relational.ops` (``select`` / ``join`` /
    ``group_aggregate`` / ``distinct``), then adapted.  This is the
    third corner of the differential fuzzer's triangle.
"""

from __future__ import annotations

import operator
import re
from array import array
from dataclasses import dataclass
from datetime import date
from typing import Callable, Sequence

import numpy as np

from repro.data.columns import (BoolColumn, Column, DateColumn, FloatColumn,
                                IntColumn, StringColumn)
from repro.data.datatypes import DataType
from repro.data.schema import ColumnSpec, Schema
from repro.data.table import Table
from repro.relational import ops
from repro.relational.expressions import (Between, BoolOp, ColumnRef,
                                          Comparison, Expr, InList, IsNull,
                                          Like, Literal)
from repro.relational.sqlexec import _adapt_cell, _infer_sql_dtype

_INT64_MIN = -(2 ** 63)
_INT64_MAX = 2 ** 63 - 1
# Above 2**53 a float cannot represent every integer, so Python's exact
# int arithmetic and sqlite's double-based AVG start disagreeing.
_EXACT_FLOAT_INT = 2 ** 53


class UnsupportedSQL(Exception):
    """Statement (or data shape) outside the columnar executor's envelope."""


# ----------------------------------------------------------------------
# Tokenizer
# ----------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""\s*(?:
        (?P<number>-?\d+\.\d+|-?\d+)
      | (?P<string>'(?:[^']|'')*')
      | (?P<ident>"(?:[^"]|"")*")
      | (?P<op><>|!=|<=|>=|=|<|>)
      | (?P<punct>[(),.*])
      | (?P<word>[A-Za-z_][A-Za-z0-9_]*)
    )""",
    re.VERBOSE,
)

_KEYWORDS = frozenset({
    "select", "distinct", "from", "where", "group", "by", "order", "limit",
    "asc", "desc", "join", "cross", "on", "using", "as", "and", "or", "not",
    "between", "like", "in", "is", "null",
    "count", "sum", "avg", "min", "max",
})

_AGG_FUNCS = ("count", "sum", "avg", "min", "max")


def _tokenize(sql: str) -> list[tuple[str, object]]:
    tokens: list[tuple[str, object]] = []
    pos = 0
    text = sql.strip().rstrip(";").rstrip()
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            if not text[pos:].strip():
                break
            raise UnsupportedSQL(f"cannot tokenize SQL at {text[pos:pos+20]!r}")
        pos = match.end()
        if match.group("number") is not None:
            raw = match.group("number")
            tokens.append(("num", float(raw) if "." in raw else int(raw)))
        elif match.group("string") is not None:
            tokens.append(("str", match.group("string")[1:-1].replace("''", "'")))
        elif match.group("ident") is not None:
            tokens.append(("ident", match.group("ident")[1:-1].replace('""', '"')))
        elif match.group("op") is not None:
            tokens.append(("op", match.group("op")))
        elif match.group("punct") is not None:
            tokens.append(("punct", match.group("punct")))
        else:
            tokens.append(("word", match.group("word")))
    return tokens


# ----------------------------------------------------------------------
# Statement IR
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class AggItem:
    func: str                      # count | sum | avg | min | max
    column: tuple[str | None, str] | None  # (qualifier, name); None = COUNT(*)
    distinct: bool
    alias: str


@dataclass(frozen=True)
class ColItem:
    qualifier: str | None
    name: str
    alias: str | None

    @property
    def output_name(self) -> str:
        return self.alias if self.alias is not None else self.name


@dataclass(frozen=True)
class JoinClause:
    right: str
    using: str | None = None
    # ON form: <left_qual>.<left_col> = <right_qual>.<right_col>
    on: tuple[str, str, str, str] | None = None


@dataclass(frozen=True)
class SelectStatement:
    table: str
    join: JoinClause | None
    star: bool
    items: tuple[object, ...]      # ColItem | AggItem, empty when star
    distinct: bool
    where: Expr | None
    group_by: tuple[str | None, str] | None
    order_by: tuple[str | None, str, bool] | None  # (qual, name, descending)
    limit: int | None


class _Parser:
    def __init__(self, tokens: list[tuple[str, object]], source: str):
        self._tokens = tokens
        self._source = source
        self._pos = 0

    def _fail(self, why: str) -> UnsupportedSQL:
        return UnsupportedSQL(f"{why} (query: {self._source})")

    def _peek(self, ahead: int = 0) -> tuple[str, object] | None:
        index = self._pos + ahead
        return self._tokens[index] if index < len(self._tokens) else None

    def _next(self) -> tuple[str, object]:
        token = self._peek()
        if token is None:
            raise self._fail("unexpected end of statement")
        self._pos += 1
        return token

    def _accept_word(self, word: str) -> bool:
        token = self._peek()
        if token and token[0] == "word" and str(token[1]).lower() == word:
            self._pos += 1
            return True
        return False

    def _expect_word(self, word: str) -> None:
        if not self._accept_word(word):
            raise self._fail(f"expected {word.upper()}")

    def _accept_punct(self, punct: str) -> bool:
        token = self._peek()
        if token and token == ("punct", punct):
            self._pos += 1
            return True
        return False

    def _expect_punct(self, punct: str) -> None:
        if not self._accept_punct(punct):
            raise self._fail(f"expected {punct!r}")

    def _ident(self) -> str:
        token = self._next()
        if token[0] == "ident":
            return str(token[1])
        if token[0] == "word" and str(token[1]).lower() not in _KEYWORDS:
            return str(token[1])
        raise self._fail(f"expected identifier, found {token[1]!r}")

    def _colref(self) -> tuple[str | None, str]:
        first = self._ident()
        if self._accept_punct("."):
            return first, self._ident()
        return None, first

    def _alias(self, required: bool) -> str | None:
        if self._accept_word("as"):
            return self._ident()
        if required:
            raise self._fail("aggregate items need an AS alias")
        return None

    # -- select list ----------------------------------------------------

    def _select_item(self) -> object:
        token = self._peek()
        following = self._peek(1)
        if (token is not None and token[0] == "word"
                and str(token[1]).lower() in _AGG_FUNCS
                and following == ("punct", "(")):
            func = str(self._next()[1]).lower()
            self._expect_punct("(")
            distinct = False
            column: tuple[str | None, str] | None
            if func == "count" and self._accept_punct("*"):
                column = None
            else:
                distinct = self._accept_word("distinct")
                if distinct and func != "count":
                    raise self._fail("DISTINCT only supported inside COUNT")
                column = self._colref()
            self._expect_punct(")")
            alias = self._alias(required=True)
            return AggItem(func, column, distinct, alias)
        qualifier, name = self._colref()
        return ColItem(qualifier, name, self._alias(required=False))

    # -- WHERE expressions ----------------------------------------------

    def _literal(self) -> object:
        token = self._next()
        if token[0] in ("num", "str"):
            return token[1]
        raise self._fail(f"expected literal, found {token[1]!r}")

    def _predicate(self) -> Expr:
        if self._accept_punct("("):
            inner = self._or_expr()
            self._expect_punct(")")
            return inner
        token = self._peek()
        if token is not None and (
                token[0] in ("num", "str")
                or (token[0] == "word"
                    and str(token[1]).lower() in ("not", "null"))):
            raise self._fail("only <column> <op> <literal> predicates "
                             "are supported")
        qualifier, name = self._colref()
        if qualifier is not None:
            raise self._fail("qualified columns in WHERE are not supported")
        column = ColumnRef(name)
        token = self._peek()
        if token is None:
            raise self._fail("dangling column reference in WHERE")
        if token[0] == "op":
            op = str(self._next()[1])
            return Comparison(op, column, Literal(self._literal()))
        if token[0] == "word":
            word = str(token[1]).lower()
            if word == "between":
                self._next()
                low = self._literal()
                self._expect_word("and")
                return Between(column, Literal(low),
                               Literal(self._literal()))
            if word == "is":
                self._next()
                negated = self._accept_word("not")
                self._expect_word("null")
                return IsNull(column, negated=negated)
            negated = False
            if word == "not":
                self._next()
                token = self._peek()
                word = (str(token[1]).lower()
                        if token and token[0] == "word" else "")
                negated = True
            if word == "like":
                self._next()
                pattern = self._next()
                if pattern[0] != "str":
                    raise self._fail("LIKE needs a string pattern")
                return Like(column, str(pattern[1]), negated=negated)
            if word == "in":
                self._next()
                self._expect_punct("(")
                values = [self._literal()]
                while self._accept_punct(","):
                    values.append(self._literal())
                self._expect_punct(")")
                return InList(column, tuple(values), negated=negated)
        raise self._fail("unsupported predicate shape")

    def _and_expr(self) -> Expr:
        operands = [self._predicate()]
        while self._accept_word("and"):
            operands.append(self._predicate())
        return operands[0] if len(operands) == 1 else BoolOp("and",
                                                             tuple(operands))

    def _or_expr(self) -> Expr:
        operands = [self._and_expr()]
        while self._accept_word("or"):
            operands.append(self._and_expr())
        return operands[0] if len(operands) == 1 else BoolOp("or",
                                                             tuple(operands))

    # -- the statement --------------------------------------------------

    def parse(self) -> SelectStatement:
        self._expect_word("select")
        distinct = self._accept_word("distinct")
        star = False
        items: list[object] = []
        if self._accept_punct("*"):
            star = True
        else:
            items.append(self._select_item())
            while self._accept_punct(","):
                items.append(self._select_item())
        self._expect_word("from")
        table = self._ident()

        join: JoinClause | None = None
        if self._accept_word("join"):
            right = self._ident()
            self._expect_word("using")
            self._expect_punct("(")
            key = self._ident()
            self._expect_punct(")")
            join = JoinClause(right, using=key)
        elif self._accept_word("cross"):
            self._expect_word("join")
            right = self._ident()
            self._expect_word("on")
            left_qual, left_col = self._colref()
            token = self._next()
            if token != ("op", "="):
                raise self._fail("join ON only supports equality")
            right_qual, right_col = self._colref()
            if left_qual is None or right_qual is None:
                raise self._fail("join ON needs qualified columns")
            join = JoinClause(right, on=(left_qual, left_col,
                                         right_qual, right_col))

        where = self._or_expr() if self._accept_word("where") else None

        group_by: tuple[str | None, str] | None = None
        if self._accept_word("group"):
            self._expect_word("by")
            group_by = self._colref()
            if self._peek() == ("punct", ","):
                raise self._fail("multi-column GROUP BY is not supported")

        order_by: tuple[str | None, str, bool] | None = None
        if self._accept_word("order"):
            self._expect_word("by")
            qualifier, name = self._colref()
            descending = False
            if self._accept_word("desc"):
                descending = True
            else:
                self._accept_word("asc")
            order_by = (qualifier, name, descending)
            if self._peek() == ("punct", ","):
                raise self._fail("multi-column ORDER BY is not supported")

        limit: int | None = None
        if self._accept_word("limit"):
            token = self._next()
            if token[0] != "num" or not isinstance(token[1], int) \
                    or token[1] < 0:
                raise self._fail("LIMIT needs a non-negative integer")
            limit = token[1]

        if self._peek() is not None:
            raise self._fail(f"trailing tokens from {self._peek()[1]!r}")
        if distinct and order_by is not None:
            raise self._fail("DISTINCT with ORDER BY is not supported")
        return SelectStatement(table, join, star, tuple(items), distinct,
                               where, group_by, order_by, limit)


def parse_select(sql: str) -> SelectStatement:
    """Parse *sql*; raises :class:`UnsupportedSQL` outside the dialect."""
    return _Parser(_tokenize(sql), sql).parse()


# ----------------------------------------------------------------------
# Adapted column access (sqlite cell representation)
# ----------------------------------------------------------------------

_SCALARS = (int, float, str)


def _adapted_column(table: Table, name: str) -> list[object]:
    """The column in sqlite's cell representation (bool→int, date→ISO).

    For int / float / string columns the memoized ``materialize()`` list
    *is* the adapted form, so repeated queries over a warm lake pay
    nothing.  Bool / date / object adaptations are memoized on the table
    (immutable once built) for the same reason.  Raises
    :class:`UnsupportedSQL` for object cells sqlite could not have bound
    either.
    """
    storage = table.storage(name)
    if isinstance(storage, (IntColumn, FloatColumn, StringColumn)):
        return storage.materialize()
    cache = getattr(table, "_sql_adapted", None)
    if cache is None:
        cache = table._sql_adapted = {}
    cached = cache.get(name)
    if cached is not None:
        return cached
    if isinstance(storage, BoolColumn):
        adapted = [None if v is None else int(v)
                   for v in storage.iter_values()]
    elif isinstance(storage, DateColumn):
        adapted = [None if v is None else v.isoformat()
                   for v in storage.iter_values()]
    else:
        adapted = []
        for value in storage.materialize():
            if value is None or type(value) in _SCALARS:
                adapted.append(value)
            elif isinstance(value, (bool, date)):
                adapted.append(_adapt_cell(value))
            else:
                raise UnsupportedSQL(
                    f"column {name!r} holds non-SQL values "
                    f"({type(value).__name__})")
    cache[name] = adapted
    return adapted


def _column_kind(values: Sequence[object]) -> str:
    """``num`` / ``str`` / ``empty`` over adapted values."""
    kinds = {type(v) for v in values if v is not None}
    if not kinds:
        return "empty"
    if kinds <= {int, float}:
        return "num"
    if kinds == {str}:
        return "str"
    return "other"


def _strict_iso_date(text: str) -> date | None:
    """Parse *text* as a zero-padded ISO date, else ``None``.

    Only for exact ISO literals is ordinal comparison equivalent to the
    lexicographic TEXT comparison sqlite performs on stored date strings.
    """
    try:
        parsed = date.fromisoformat(text)
    except (ValueError, TypeError):
        return None
    return parsed if parsed.isoformat() == text else None


# ----------------------------------------------------------------------
# Predicate guards
# ----------------------------------------------------------------------


def _literal_class(value: object) -> str:
    if type(value) in (int, float):
        return "num"
    if type(value) is str:
        return "str"
    raise UnsupportedSQL(f"unsupported literal {value!r}")


class _Source:
    """One statement's source table plus per-column adapted caches."""

    def __init__(self, table: Table):
        self.table = table
        self._adapted: dict[str, list[object]] = {}
        self._kinds: dict[str, str] = {}

    def adapted(self, name: str) -> list[object]:
        cached = self._adapted.get(name)
        if cached is None:
            cached = _adapted_column(self.table, name)
            self._adapted[name] = cached
        return cached

    def kind(self, name: str) -> str:
        cached = self._kinds.get(name)
        if cached is None:
            storage = self.table.storage(name)
            if isinstance(storage, (IntColumn, FloatColumn, BoolColumn)):
                cached = "num"
            elif isinstance(storage, (StringColumn, DateColumn)):
                cached = "str"
            else:
                cached = _column_kind(self.adapted(name))
            if len(storage) == 0:
                cached = "empty"
            self._kinds[name] = cached
        return cached

    def is_date(self, name: str) -> bool:
        return self.table.dtype(name) == DataType.DATE


def _predicate_column(source: _Source, expr: Expr) -> str:
    operand = getattr(expr, "operand", None) or getattr(expr, "left", None)
    if not isinstance(operand, ColumnRef):
        raise UnsupportedSQL("predicates must compare a column")
    name = operand.name
    if name not in source.table:
        raise UnsupportedSQL(f"unknown column {name!r} in WHERE")
    if source.table.dtype(name).is_modality and not isinstance(expr, IsNull):
        raise UnsupportedSQL(f"cannot compare modality column {name!r}")
    return name


def _guard_predicate(source: _Source, expr: Expr, engine: str) -> None:
    """Reject predicate / data combinations whose native or columnar
    evaluation is not provably identical to sqlite's."""
    if isinstance(expr, BoolOp):
        for operand in expr.operands:
            _guard_predicate(source, operand, engine)
        return
    if isinstance(expr, IsNull):
        _predicate_column(source, expr)
        return
    name = _predicate_column(source, expr)
    kind = source.kind(name)
    if kind == "other":
        raise UnsupportedSQL(f"mixed-type column {name!r} in WHERE")

    def check_literal(value: object) -> None:
        cls = _literal_class(value)
        if kind != "empty" and cls != kind:
            # sqlite orders across storage classes; the native engine
            # coerces. Type-mismatched comparisons leave the envelope.
            raise UnsupportedSQL(
                f"{cls} literal against {kind} column {name!r}")
        if (engine == "native" and source.is_date(name) and cls == "str"
                and _strict_iso_date(str(value)) is None):
            # Raw dates vs. a non-ISO string: expressions._compare
            # collapses to False where sqlite compares text.
            raise UnsupportedSQL(
                f"non-ISO literal {value!r} against date column {name!r}")

    if isinstance(expr, Comparison):
        if not isinstance(expr.right, Literal):
            raise UnsupportedSQL("comparison needs a literal right side")
        check_literal(expr.right.value)
    elif isinstance(expr, Between):
        for bound in (expr.low, expr.high):
            if not isinstance(bound, Literal):
                raise UnsupportedSQL("BETWEEN needs literal bounds")
            check_literal(bound.value)
    elif isinstance(expr, InList):
        for value in expr.values:
            check_literal(value)
        if engine == "native" and source.is_date(name):
            # InList membership tests raw dates against strings.
            raise UnsupportedSQL("IN over a date column (native)")
    elif isinstance(expr, Like):
        if kind not in ("str", "empty"):
            raise UnsupportedSQL(f"LIKE over non-text column {name!r}")
    else:
        raise UnsupportedSQL(f"unsupported predicate {type(expr).__name__}")


# ----------------------------------------------------------------------
# Columnar filter kernels
# ----------------------------------------------------------------------

_PY_OPS: dict[str, Callable[[object, object], object]] = {
    "=": operator.eq, "==": operator.eq,
    "!=": operator.ne, "<>": operator.ne,
    "<": operator.lt, "<=": operator.le,
    ">": operator.gt, ">=": operator.ge,
}


def _like_regex(pattern: str) -> re.Pattern:
    regex = re.escape(pattern).replace(r"%", ".*").replace(r"_", ".")
    return re.compile(regex, re.IGNORECASE)


def _numeric_buffer(storage: object) -> tuple[np.ndarray, np.ndarray]:
    """(values, notnull) numpy views over a typed column's buffers."""
    if isinstance(storage, IntColumn):
        values = np.frombuffer(storage.data, dtype=np.int64)
    elif isinstance(storage, DateColumn):
        values = np.frombuffer(storage.data, dtype=np.int64)
    elif isinstance(storage, FloatColumn):
        values = np.frombuffer(storage.data, dtype=np.float64)
    else:  # BoolColumn
        values = np.frombuffer(bytes(storage.data), dtype=np.uint8)
    notnull = np.frombuffer(bytes(storage.nulls), dtype=np.uint8) == 0
    return values, notnull


def _string_codes(storage: StringColumn) -> np.ndarray:
    return np.frombuffer(storage.codes, dtype=np.int32)


def _pool_matches(storage: StringColumn,
                  predicate: Callable[[str], bool]) -> np.ndarray:
    allowed = np.array([i for i, text in enumerate(storage.pool)
                        if predicate(text)], dtype=np.int32)
    return np.isin(_string_codes(storage), allowed)


# Pool → numpy unicode array, memoized.  Pools are immutable once their
# column is inside a table and are shared across takes/joins, so one
# conversion serves every later predicate.  ``None`` marks a pool whose
# strings contain NULs: numpy pads with U+0000, so code-point ordering
# is only identical to Python's for NUL-free strings.  Entries hold the
# pool itself, which both pins ``id()`` and lets staleness be detected.
_POOL_ARRAYS: dict[int, tuple[list[str], np.ndarray | None]] = {}


def _pool_array(pool: list[str]) -> np.ndarray | None:
    entry = _POOL_ARRAYS.get(id(pool))
    if entry is not None and entry[0] is pool \
            and (entry[1] is None or len(entry[1]) == len(pool)):
        return entry[1]
    if len(_POOL_ARRAYS) > 64:
        _POOL_ARRAYS.clear()
    converted = None
    if not any("\x00" in text for text in pool):
        converted = np.array(pool, dtype=str) if pool else \
            np.empty(0, dtype=str)
    _POOL_ARRAYS[id(pool)] = (pool, converted)
    return converted


# Pool → lexicographic rank of each entry, memoized like _POOL_ARRAYS.
# ``ranks[code]`` orders codes the way Python orders the strings, so
# string min/max reduce to integer argmin/argmax instead of sorting the
# kept texts on every aggregate.
_POOL_RANKS: dict[int, tuple[list[str], np.ndarray]] = {}


def _pool_ranks(pool: list[str]) -> np.ndarray | None:
    entry = _POOL_RANKS.get(id(pool))
    if entry is not None and entry[0] is pool \
            and len(entry[1]) == len(pool):
        return entry[1]
    pool_array = _pool_array(pool)
    if pool_array is None:
        return None  # NUL-bearing pool: numpy ordering diverges
    if len(_POOL_RANKS) > 64:
        _POOL_RANKS.clear()
    ranks = np.empty(len(pool), dtype=np.int64)
    ranks[np.argsort(pool_array, kind="stable")] = np.arange(len(pool))
    _POOL_RANKS[id(pool)] = (pool, ranks)
    return ranks


def _comparison_mask(source: _Source, name: str, op: str,
                     literal: object) -> np.ndarray | None:
    storage = source.table.storage(name)
    apply_op = _PY_OPS[op]
    if isinstance(storage, (IntColumn, FloatColumn, BoolColumn)):
        if not isinstance(literal, (int, float)) or isinstance(literal, bool) \
                or (isinstance(literal, int)
                    and not _INT64_MIN <= literal <= _INT64_MAX):
            return None  # adapted row fallback
        values, notnull = _numeric_buffer(storage)
        return apply_op(values, literal) & notnull
    if isinstance(storage, DateColumn):
        parsed = _strict_iso_date(str(literal)) \
            if isinstance(literal, str) else None
        if parsed is None:
            return None  # lexicographic comparison: adapted row fallback
        values, notnull = _numeric_buffer(storage)
        return apply_op(values, parsed.toordinal()) & notnull
    if isinstance(storage, StringColumn):
        if not isinstance(literal, str):
            return None
        if op in ("=", "==", "!=", "<>"):
            # Dictionary-encoded equality: one index probe plus a vector
            # compare on the codes, no pool scan.
            codes = _string_codes(storage)
            code = storage.code_of(literal)
            if op in ("=", "=="):
                return (codes == code if code is not None
                        else np.zeros(len(codes), dtype=bool))
            notnull = codes >= 0
            return notnull if code is None else notnull & (codes != code)
        # Ordered comparisons (< <= > >=): numpy's unicode compare is the
        # same code-point ordering as Python's, so the pool scan runs
        # vectorized instead of through a per-entry lambda.  NUL-bearing
        # pools or literals take the exact per-entry path.
        pool_array = _pool_array(storage.pool)
        if pool_array is not None and "\x00" not in literal:
            allowed = np.flatnonzero(apply_op(pool_array, literal)) \
                .astype(np.int32)
            return np.isin(_string_codes(storage), allowed)
        return _pool_matches(storage,
                             lambda text: bool(apply_op(text, literal)))
    return None


def _compile_mask(source: _Source, expr: Expr) -> np.ndarray | None:
    """A numpy boolean mask for *expr*, or ``None`` when a referenced
    column has no typed kernel (the caller falls back to row evaluation;
    the guards already proved that fallback matches sqlite)."""
    if isinstance(expr, BoolOp):
        masks = []
        for operand in expr.operands:
            mask = _compile_mask(source, operand)
            if mask is None:
                return None
            masks.append(mask)
        combined = masks[0]
        for mask in masks[1:]:
            combined = (combined & mask if expr.op == "and"
                        else combined | mask)
        return combined
    if isinstance(expr, Comparison):
        name = expr.left.name  # type: ignore[union-attr]
        return _comparison_mask(source, name, expr.op,
                                expr.right.value)  # type: ignore[union-attr]
    if isinstance(expr, Between):
        name = expr.operand.name  # type: ignore[union-attr]
        low = _comparison_mask(source, name, ">=",
                               expr.low.value)  # type: ignore[union-attr]
        high = _comparison_mask(source, name, "<=",
                                expr.high.value)  # type: ignore[union-attr]
        if low is None or high is None:
            return None
        return low & high
    if isinstance(expr, InList):
        name = expr.operand.name  # type: ignore[union-attr]
        storage = source.table.storage(name)
        if isinstance(storage, StringColumn):
            # Only string members can equal a pool text; map them to
            # dictionary codes instead of scanning the pool.
            allowed = np.array(
                sorted({code for value in expr.values
                        if isinstance(value, str)
                        and (code := storage.code_of(value)) is not None}),
                dtype=np.int32)
            base = np.isin(_string_codes(storage), allowed)
        else:
            base = None
            for value in expr.values:
                mask = _comparison_mask(source, name, "=", value)
                if mask is None:
                    return None
                base = mask if base is None else base | mask
            if base is None:
                base = np.zeros(source.table.num_rows, dtype=bool)
        if expr.negated:
            return _notnull_mask(source, name) & ~base
        return base
    if isinstance(expr, Like):
        name = expr.operand.name  # type: ignore[union-attr]
        storage = source.table.storage(name)
        if not isinstance(storage, StringColumn):
            return None
        regex = _like_regex(expr.pattern)
        base = _pool_matches(
            storage, lambda text: regex.fullmatch(text) is not None)
        if expr.negated:
            return _notnull_mask(source, name) & ~base
        return base
    if isinstance(expr, IsNull):
        notnull = _notnull_mask(source, expr.operand.name)  # type: ignore[union-attr]
        if notnull is None:
            return None
        return notnull if expr.negated else ~notnull
    return None


def _notnull_mask(source: _Source, name: str) -> np.ndarray | None:
    storage = source.table.storage(name)
    if isinstance(storage, (IntColumn, FloatColumn, BoolColumn, DateColumn)):
        return np.frombuffer(bytes(storage.nulls), dtype=np.uint8) == 0
    if isinstance(storage, StringColumn):
        return _string_codes(storage) >= 0
    return None


def _filter_indices(source: _Source, expr: Expr) -> list[int]:
    mask = _compile_mask(source, expr)
    if mask is not None:
        return np.flatnonzero(mask).tolist()
    columns = {}
    for name in expr.referenced_columns():
        if source.table.dtype(name).is_modality:
            # Only IS NULL can reference modality columns (guarded), and
            # it needs the raw objects, not adapted cells.
            columns[name] = source.table.storage(name).materialize()
        else:
            columns[name] = source.adapted(name)
    indices = []
    for i in range(source.table.num_rows):
        row = {name: values[i] for name, values in columns.items()}
        if expr.evaluate(row):
            indices.append(i)
    return indices


# ----------------------------------------------------------------------
# Ordering / aggregation primitives (sqlite semantics)
# ----------------------------------------------------------------------


def _order_indices(indices: Sequence[int], values: Sequence[object],
                   descending: bool) -> list[int]:
    """Stable sort of *indices* by *values*, with sqlite NULL placement:
    NULLs first ascending, last descending."""
    nulls = [i for i in indices if values[i] is None]
    rest = [i for i in indices if values[i] is not None]
    try:
        rest.sort(key=lambda i: values[i], reverse=descending)
    except TypeError as exc:
        raise UnsupportedSQL("mixed-type ORDER BY column") from exc
    return rest + nulls if descending else nulls + rest


def _ordered_group_keys(keys: Sequence[object],
                        descending: bool) -> list[object]:
    """Group keys in sqlite output order: sorted, NULL group first
    ascending / last descending."""
    has_null = any(k is None for k in keys)
    rest = [k for k in keys if k is not None]
    try:
        rest.sort(reverse=descending)
    except TypeError as exc:
        raise UnsupportedSQL("mixed-type GROUP BY column") from exc
    if not has_null:
        return rest
    return rest + [None] if descending else [None] + rest


def _int_sum_bound(values: Sequence[object], func: str) -> None:
    """Decline integer SUM / AVG whose group sums could leave the range
    where Python and sqlite provably agree (int64 overflow errors for
    SUM, double rounding for AVG)."""
    magnitude = sum(abs(v) for v in values if v is not None)
    limit = _EXACT_FLOAT_INT if func == "avg" else _INT64_MAX
    if magnitude > limit:
        raise UnsupportedSQL(f"{func} beyond exact integer range")


def _agg_over(func: str, distinct: bool, values: list[object]) -> object:
    """One aggregate over adapted *values*, with sqlite's semantics."""
    kept = [v for v in values if v is not None]
    if func == "count":
        return len(set(kept)) if distinct else len(kept)
    if not kept:
        return None
    if func in ("sum", "avg"):
        if all(type(v) is int for v in kept):
            total = sum(kept)
            return total if func == "sum" else total / len(kept)
        if all(type(v) is float for v in kept):
            total = ops.sqlite_float_sum(kept)
            return total if func == "sum" else total / len(kept)
        raise UnsupportedSQL(f"{func} over mixed-type values")
    # min / max
    kinds = {type(v) for v in kept}
    if not (kinds <= {int, float} or kinds == {str}):
        raise UnsupportedSQL(f"{func} over mixed-type values")
    return min(kept) if func == "min" else max(kept)


_AGG_MISS = object()


def _masked_int64(storage: IntColumn | DateColumn,
                  members: Sequence[int]) -> tuple[np.ndarray, np.ndarray]:
    """(raw int64 values, notnull) gathered at *members*."""
    values = np.frombuffer(storage.data, dtype=np.int64)[members]
    notnull = np.frombuffer(bytes(storage.nulls),
                            dtype=np.uint8)[members] == 0
    return values, notnull


def _agg_fast(table: Table, column: str, func: str, distinct: bool,
              members: Sequence[int]) -> object:
    """One aggregate straight off typed storage, or ``_AGG_MISS``.

    Only cases provably identical to :func:`_agg_over` over the adapted
    values run here: counts are non-null counts, int64 min/max/sum are
    exact, date min/max maps through ordinals (ISO strings order the
    same way), and int sums stay well inside the range the guard already
    proved.  Everything else — distinct, floats (NaN ordering, sequential
    rounding), promoted columns — falls back to the adapted-value path.
    """
    if distinct:
        return _AGG_MISS
    storage = table.storage(column)
    if isinstance(storage, (IntColumn, DateColumn)):
        values, notnull = _masked_int64(storage, members)
        if func == "count":
            return int(notnull.sum())
        kept = values[notnull]
        if kept.size == 0:
            return None
        if func in ("min", "max"):
            winner = int(kept.min() if func == "min" else kept.max())
            if isinstance(storage, DateColumn):
                return date.fromordinal(winner).isoformat()
            return winner
        if isinstance(storage, DateColumn):
            return _AGG_MISS  # sum/avg over ISO strings: mixed-type error
        # The guard bounded |sum| well below int64, so numpy's wrapping
        # arithmetic cannot actually wrap here.
        total = int(kept.sum(dtype=np.int64))
        return total if func == "sum" else total / int(kept.size)
    if isinstance(storage, StringColumn):
        codes = _string_codes(storage)[members]
        kept = codes[codes >= 0]
        if func == "count":
            return int(kept.size)
        if func in ("min", "max"):
            if kept.size == 0:
                return None
            ranks = _pool_ranks(storage.pool)
            if ranks is None:
                return _AGG_MISS  # NUL-bearing pool: exact path
            # min/max have no unicode ufunc, but the cached per-pool
            # rank table orders codes like Python orders the strings, so
            # one integer argmin/argmax does it.  Plain str, not
            # np.str_: cell reprs feed the fingerprint.
            kept_ranks = ranks[kept]
            winner = int(np.argmin(kept_ranks) if func == "min"
                         else np.argmax(kept_ranks))
            return str(storage.pool[int(kept[winner])])
        return _AGG_MISS
    if func == "count" and isinstance(storage, (FloatColumn, BoolColumn)):
        notnull = np.frombuffer(bytes(storage.nulls),
                                dtype=np.uint8)[members] == 0
        return int(notnull.sum())
    return _AGG_MISS


def _build_groups(source: _Source, key: str,
                  indices: Sequence[int]) -> dict[object, Sequence[int]]:
    """Group *indices* by the adapted key values, members ascending —
    exactly the dict produced by a setdefault loop over the adapted
    column, built with one stable sort over the typed buffers.

    Float (NaN grouping follows object identity in the dict path) and
    object-promoted keys fall back to that loop.
    """
    storage = source.table.storage(key)
    vectorized = isinstance(storage, (IntColumn, DateColumn, BoolColumn,
                                      StringColumn))
    if vectorized:
        idx = np.asarray(indices, dtype=np.intp)
        if idx.size == 0:
            return {}
        if isinstance(storage, StringColumn):
            raw = _string_codes(storage)[idx].astype(np.int64)
            isnull = raw < 0
        elif isinstance(storage, BoolColumn):
            raw = np.frombuffer(bytes(storage.data),
                                dtype=np.uint8)[idx].astype(np.int64)
            isnull = np.frombuffer(bytes(storage.nulls),
                                   dtype=np.uint8)[idx] == 1
            raw[isnull] = 0
        else:
            raw, notnull = _masked_int64(storage, idx)
            isnull = ~notnull
        # Stored null sentinels are uniform per store (code -1 / raw 0),
        # so (isnull, raw) pairs split the sort into exact groups.
        order = np.lexsort((raw, isnull))
        sorted_raw = raw[order]
        sorted_null = isnull[order]
        breaks = np.flatnonzero((sorted_raw[1:] != sorted_raw[:-1])
                                | (sorted_null[1:] != sorted_null[:-1])) + 1
        groups: dict[object, Sequence[int]] = {}
        for chunk in np.split(order, breaks):
            first = chunk[0]
            if isnull[first]:
                group_key: object = None
            elif isinstance(storage, StringColumn):
                group_key = storage.pool[int(raw[first])]
            elif isinstance(storage, DateColumn):
                group_key = date.fromordinal(int(raw[first])).isoformat()
            else:
                group_key = int(raw[first])
            groups[group_key] = idx[chunk]
        return groups
    key_values = source.adapted(key)
    fallback: dict[object, list[int]] = {}
    for i in indices:
        fallback.setdefault(key_values[i], []).append(i)
    return fallback


def _guard_aggregate(source: _Source, item: AggItem,
                     resolve: Callable[[tuple[str | None, str]], str],
                     selected: Callable[[str], list[object]],
                     indices: Sequence[int] | None = None) -> str | None:
    """Validate one aggregate item; returns the resolved source column
    (``None`` for ``COUNT(*)``).  *indices* (columnar path only) lets
    the int SUM/AVG range check run vectorized on the typed buffers."""
    if item.column is None:
        return None
    name = resolve(item.column)
    dtype = source.table.dtype(name)
    if dtype.is_modality:
        # Tokens are unique per cell, so sqlite's COUNT and
        # COUNT(DISTINCT) both equal the non-null count; every other
        # aggregate would order by token text.
        if item.func != "count":
            raise UnsupportedSQL(f"{item.func} over modality column {name!r}")
        return name
    if item.func in ("sum", "avg"):
        storage = source.table.storage(name)
        if isinstance(storage, FloatColumn):
            return name  # pure floats by construction
        if isinstance(storage, IntColumn) and indices is not None:
            values, notnull = _masked_int64(storage, indices)
            magnitude = float(np.abs(values[notnull]
                                     .astype(np.float64)).sum())
            limit = _EXACT_FLOAT_INT if item.func == "avg" else _INT64_MAX
            if magnitude < limit * 0.99:
                return name  # provably inside the exact range
            # Near the boundary the float approximation cannot decide;
            # the exact integer check does.
            _int_sum_bound(selected(name), item.func)
            return name
        values_list = selected(name)
        kinds = {type(v) for v in values_list if v is not None}
        if kinds and not (kinds == {int} or kinds == {float}):
            raise UnsupportedSQL(
                f"{item.func} needs a pure int or float column")
        if kinds == {int}:
            _int_sum_bound(values_list, item.func)
    return name


# ----------------------------------------------------------------------
# Output assembly
# ----------------------------------------------------------------------


def _dedup_names(names: Sequence[str]) -> list[str]:
    unique: list[str] = []
    counts: dict[str, int] = {}
    for name in names:
        counts[name] = counts.get(name, 0) + 1
        unique.append(f"{name}_{counts[name]}" if counts[name] > 1 else name)
    return unique


def _take_sql_column(storage: object, indices: Sequence[int] | None
                     ) -> tuple[Column, DataType] | None:
    """Gather a projected result column straight from typed storage.

    Only stores whose adapted form equals the raw values qualify (int /
    float / dictionary-encoded strings); the returned dtype is exactly
    what :func:`_infer_sql_dtype` would assign to the gathered list, so
    result assembly can skip the per-cell builder path without changing
    the result's schema, values, or fingerprint.  ``indices=None`` is
    the identity projection: the storage itself is shared (columns are
    immutable once inside a table).
    """
    if indices is None:
        if isinstance(storage, StringColumn):
            return storage, DataType.STRING
        if isinstance(storage, (IntColumn, FloatColumn)):
            typed = (DataType.INTEGER if isinstance(storage, IntColumn)
                     else DataType.FLOAT)
            return storage, (typed if 0 in storage.nulls
                             else DataType.STRING)
        return None
    if isinstance(storage, StringColumn):
        idx = np.asarray(indices, dtype=np.intp)
        codes = array("i")
        codes.frombytes(
            np.frombuffer(storage.codes, dtype=np.int32)[idx].tobytes())
        return StringColumn(codes, storage.pool), DataType.STRING
    if isinstance(storage, (IntColumn, FloatColumn)):
        idx = np.asarray(indices, dtype=np.intp)
        np_dtype = np.int64 if isinstance(storage, IntColumn) else np.float64
        data = array("q" if isinstance(storage, IntColumn) else "d")
        data.frombytes(
            np.frombuffer(storage.data, dtype=np_dtype)[idx].tobytes())
        nulls = bytearray(
            bytes(np.frombuffer(bytes(storage.nulls), dtype=np.uint8)[idx]))
        # _infer_sql_dtype over {int|float, None}: typed if any value
        # survives, STRING for an all-null (or empty) projection.
        if isinstance(storage, IntColumn):
            dtype = DataType.INTEGER if 0 in nulls else DataType.STRING
            return IntColumn(data, nulls), dtype
        dtype = DataType.FLOAT if 0 in nulls else DataType.STRING
        return FloatColumn(data, nulls), dtype
    return None


def _build_result(named_columns: list[tuple[str, object,
                                            DataType | None]]) -> Table:
    """Assemble the result table exactly like the sqlite bridge does:
    dtypes are re-inferred from the (adapted) result values, except
    modality columns, which keep their dtype when any object survived.
    A :class:`Column` entry is the :func:`_take_sql_column` fast path:
    its dtype is precomputed and the packed column goes straight into
    the table."""
    names = _dedup_names([name for name, _, _ in named_columns])
    specs = []
    columns = {}
    for unique, (_, values, modality) in zip(names, named_columns):
        if isinstance(values, Column):
            specs.append(ColumnSpec(unique, modality))
        elif modality is not None and any(v is not None for v in values):
            specs.append(ColumnSpec(unique, modality))
        else:
            specs.append(ColumnSpec(unique, _infer_sql_dtype(values)))
        columns[unique] = values
    return Table(Schema(specs), columns)


def sqliteize(table: Table) -> Table:
    """*table* in the sqlite bridge's result representation."""
    named = []
    for name in table.column_names:
        dtype = table.dtype(name)
        if dtype.is_modality:
            named.append((name, table.column(name), dtype))
        else:
            named.append((name, [_adapt_cell(v) for v in table.column(name)],
                          None))
    return _build_result(named)


# ----------------------------------------------------------------------
# Joins (sqlite plan order)
# ----------------------------------------------------------------------


def _index_sort_key(value: object) -> tuple[int, object]:
    """sqlite BINARY index ordering over adapted cells:
    NULL < numeric < text."""
    if value is None:
        return (0, 0)
    if isinstance(value, (int, float)):
        return (1, value)
    return (2, value)


def _sqlite_join(left: Table, right: Table,
                 left_on: str, right_on: str) -> Table:
    """An equi-join with :func:`repro.relational.ops.join`'s shape but
    sqlite's row order for the bridge's join statements.

    sqlite scans the FROM-order left table and probes an automatic
    covering index on the right (verified stable across table sizes), so
    rows are left-row-major and the matches of one key follow the index
    sort: (key, remaining referenced right columns in table order,
    rowid).  Keys match by sqlite value equality (adapted cells), so
    e.g. a bool key equals an int key.
    """
    renames = ops.join_renames(left.column_names, right.column_names,
                               left_on, right_on)
    left_keys = _adapted_column(left, left_on)
    right_keys = _adapted_column(right, right_on)

    order_columns: list[list[object]] = []
    modality_right = False
    for name in right.column_names:
        if name == right_on:
            continue
        if right.dtype(name).is_modality:
            modality_right = True
        else:
            order_columns.append(_adapted_column(right, name))

    index: dict[object, list[int]] = {}
    for j, key in enumerate(right_keys):
        if key is None:
            continue
        index.setdefault(key, []).append(j)
    if modality_right and any(len(rows) > 1 for rows in index.values()):
        # The covering index would order duplicate-key matches by token
        # text, which depends on the executor's registration history.
        raise UnsupportedSQL("join with duplicate keys into a table "
                             "with modality columns")
    for rows in index.values():
        if len(rows) > 1:
            rows.sort(key=lambda j: tuple(_index_sort_key(values[j])
                                          for values in order_columns))

    left_indices: list[int] = []
    right_indices: list[int] = []
    for i, key in enumerate(left_keys):
        if key is None:
            continue
        for j in index.get(key, ()):
            left_indices.append(i)
            right_indices.append(j)

    result = left.take(left_indices)
    for name in right.column_names:
        if name == right_on and right_on == left_on:
            continue  # merged into the single left-side key column
        values = right.column(name)
        picked = [values[j] for j in right_indices]
        result = result.with_column(renames.get(name, name),
                                    right.dtype(name), picked)
    return result


# ----------------------------------------------------------------------
# Statement execution
# ----------------------------------------------------------------------


def _resolve_source(statement: SelectStatement,
                    tables: dict[str, Table]) -> tuple[
                        Table, Callable[[tuple[str | None, str]], str]]:
    """The (possibly joined) source table and a qualified-name resolver."""
    if statement.table not in tables:
        raise UnsupportedSQL(f"unknown table {statement.table!r}")
    left = tables[statement.table]
    join = statement.join
    if join is None:
        def resolve(ref: tuple[str | None, str],
                    _valid=(statement.table,), _table=left) -> str:
            qualifier, name = ref
            if qualifier is not None and qualifier not in _valid:
                raise UnsupportedSQL(f"unknown qualifier {qualifier!r}")
            if name not in _table:
                raise UnsupportedSQL(f"unknown column {name!r}")
            return name
        return left, resolve

    if join.right not in tables:
        raise UnsupportedSQL(f"unknown table {join.right!r}")
    right = tables[join.right]
    if join.using is not None:
        left_on = right_on = join.using
    else:
        left_qual, left_on, right_qual, right_on = join.on  # type: ignore[misc]
        if (left_qual, right_qual) == (join.right, statement.table):
            left_on, right_on = right_on, left_on
        elif (left_qual, right_qual) != (statement.table, join.right):
            raise UnsupportedSQL("join ON qualifiers must name the "
                                 "joined tables")
    if left_on not in left or right_on not in right:
        raise UnsupportedSQL("unknown join key")
    if (left.dtype(left_on).is_modality
            or right.dtype(right_on).is_modality):
        raise UnsupportedSQL("cannot join on a modality column")
    renames = ops.join_renames(left.column_names, right.column_names,
                               left_on, right_on)
    if join.using is not None and renames:
        # sqlite suffixes clashes _2 / _3; ops.join suffixes _right.
        raise UnsupportedSQL("USING join with non-key name clashes")
    if join.using is None and statement.star:
        # SELECT * over ON joins keeps both key columns in sqlite.
        raise UnsupportedSQL("SELECT * over an ON join")
    if statement.where is not None:
        # sqlite's planner picks the outer table from the WHERE clause: a
        # predicate over right-side columns flips the scan to the right
        # table (SCAN right / SEARCH left), reordering the result.  Only
        # predicates confined to left-side (or merged-key) columns are
        # proven to keep the FROM-order plan this join replicates.
        right_side = {renames.get(name, name) for name in right.column_names
                      if not (name == right_on and right_on == left_on)}
        for name in statement.where.referenced_columns():
            if name in right_side:
                raise UnsupportedSQL(
                    "join WHERE over right-side columns: planner-dependent "
                    "row order")
    joined = _sqlite_join(left, right, left_on, right_on)

    mapping: dict[tuple[str | None, str], str] = {}
    for name in left.column_names:
        mapping[(statement.table, name)] = name
    for name in right.column_names:
        if name == right_on and right_on == left_on:
            mapping[(join.right, name)] = left_on
        else:
            mapping[(join.right, name)] = renames.get(name, name)

    if not statement.star:
        # The join's row order is only proven when sqlite's automatic
        # covering index spans every right column, i.e. when the select
        # list references them all (as the bridge's join statements do).
        selected: set[str] = set()
        for item in statement.items:
            ref = (item.column if isinstance(item, AggItem)
                   else (item.qualifier, item.name))
            if ref is None:
                continue
            qualifier, name = ref
            resolved = (mapping.get((qualifier, name))
                        if qualifier is not None else name)
            if resolved is not None:
                selected.add(resolved)
        required = {mapping[(join.right, name)]
                    for name in right.column_names}
        if not required <= selected:
            raise UnsupportedSQL("join select list must reference every "
                                 "right-side column")

    def resolve(ref: tuple[str | None, str], _mapping=mapping,
                _table=joined) -> str:
        qualifier, name = ref
        if qualifier is None:
            if name not in _table:
                raise UnsupportedSQL(f"unknown column {name!r}")
            return name
        resolved = _mapping.get((qualifier, name))
        if resolved is None:
            raise UnsupportedSQL(f"unknown column {qualifier}.{name}")
        return resolved

    return joined, resolve


def _output_items(statement: SelectStatement,
                  source: Table) -> list[object]:
    if statement.star:
        return [ColItem(None, name, None) for name in source.column_names]
    return list(statement.items)


def _split_items(items: list[object]) -> tuple[list[ColItem], list[AggItem]]:
    columns = [item for item in items if isinstance(item, ColItem)]
    aggregates = [item for item in items if isinstance(item, AggItem)]
    return columns, aggregates


def _group_plan(statement: SelectStatement, items: list[object],
                resolve: Callable[[tuple[str | None, str]], str],
                source_table: Table) -> tuple[str, ColItem, list[AggItem],
                                              bool]:
    """Validate a grouped statement; returns (key column, key item,
    aggregate items, descending)."""
    key = resolve(statement.group_by)  # type: ignore[arg-type]
    if source_table.dtype(key).is_modality:
        raise UnsupportedSQL("GROUP BY over a modality column")
    columns, aggregates = _split_items(items)
    if statement.star or len(columns) != 1 or not aggregates:
        raise UnsupportedSQL("grouped select must be key + aggregates")
    key_item = columns[0]
    if items[0] is not key_item or resolve(
            (key_item.qualifier, key_item.name)) != key:
        raise UnsupportedSQL("grouped select key must lead the select list")
    descending = False
    if statement.order_by is not None:
        qualifier, name, descending = statement.order_by
        ordered_on = (name if name == key_item.output_name
                      else resolve((qualifier, name)))
        if ordered_on not in (key, key_item.output_name):
            raise UnsupportedSQL("grouped ORDER BY must use the group key")
    if statement.distinct:
        raise UnsupportedSQL("DISTINCT over a grouped select")
    return key, key_item, aggregates, descending


def _execute_columnar(statement: SelectStatement, table: Table,
                      resolve: Callable[[tuple[str | None, str]], str]
                      ) -> Table:
    source = _Source(table)
    if statement.where is not None:
        _guard_predicate(source, statement.where, "columnar")
        indices = _filter_indices(source, statement.where)
    else:
        indices = list(range(table.num_rows))

    items = _output_items(statement, table)
    names = [item.output_name if isinstance(item, ColItem) else item.alias
             for item in items]
    if len(set(names)) != len(names) and not statement.star:
        raise UnsupportedSQL("duplicate output names")

    def selected(name: str) -> list[object]:
        values = source.adapted(name)
        return [values[i] for i in indices]

    if statement.group_by is not None:
        key, key_item, aggregates, descending = _group_plan(
            statement, items, resolve, table)
        groups = _build_groups(source, key, indices)
        for item in aggregates:
            _guard_aggregate(source, item, resolve, selected, indices)
        ordered_keys = _ordered_group_keys(list(groups), descending)
        if statement.limit is not None:
            ordered_keys = ordered_keys[:statement.limit]
        named: list[tuple[str, list[object], DataType | None]] = [
            (key_item.output_name, ordered_keys, None)]
        for item in aggregates:
            column = None if item.column is None else resolve(item.column)
            out: list[object] = []
            for group_key in ordered_keys:
                members = groups[group_key]
                if column is None:
                    out.append(len(members))
                elif table.dtype(column).is_modality:
                    values = table.storage(column).materialize()
                    out.append(sum(1 for i in members
                                   if values[i] is not None))
                else:
                    value = _agg_fast(table, column, item.func,
                                      item.distinct, members)
                    if value is _AGG_MISS:
                        values = source.adapted(column)
                        value = _agg_over(item.func, item.distinct,
                                          [values[i] for i in members])
                    out.append(value)
            named.append((item.alias, out, None))
        return _build_result(named)

    columns, aggregates = _split_items(items)
    if aggregates:
        if columns or statement.distinct or statement.order_by is not None:
            raise UnsupportedSQL("aggregates mix only with GROUP BY")
        named = []
        for item in aggregates:
            column = _guard_aggregate(source, item, resolve, selected,
                                      indices)
            if item.column is None:
                value: object = len(indices)
            elif table.dtype(column).is_modality:
                values = table.storage(column).materialize()
                value = sum(1 for i in indices if values[i] is not None)
            else:
                value = _agg_fast(table, column, item.func, item.distinct,
                                  indices)
                if value is _AGG_MISS:
                    value = _agg_over(item.func, item.distinct,
                                      selected(column))
            named.append((item.alias, [value], None))
        result = _build_result(named)
        if statement.limit is not None:
            result = result.head(statement.limit)
        return result

    if statement.order_by is not None:
        qualifier, name, descending = statement.order_by
        order_column = resolve((qualifier, name))
        if table.dtype(order_column).is_modality:
            raise UnsupportedSQL("ORDER BY over a modality column")
        indices = _order_indices(indices, source.adapted(order_column),
                                 descending)
    if statement.limit is not None and not statement.distinct:
        indices = indices[:statement.limit]

    identity = (statement.where is None and statement.order_by is None
                and (statement.limit is None
                     or statement.limit >= table.num_rows))
    named = []
    for item in columns:
        column = resolve((item.qualifier, item.name))
        dtype = table.dtype(column)
        if dtype.is_modality:
            values = table.storage(column).materialize()
            named.append((item.output_name,
                          [values[i] for i in indices], dtype))
            continue
        if not statement.distinct:
            taken = _take_sql_column(table.storage(column),
                                     None if identity else indices)
            if taken is not None:
                named.append((item.output_name, taken[0], taken[1]))
                continue
        values = source.adapted(column)
        named.append((item.output_name,
                      [values[i] for i in indices], None))

    if statement.distinct:
        if any(modality is not None for _, _, modality in named):
            raise UnsupportedSQL("DISTINCT over a modality column")
        seen: set[tuple[object, ...]] = set()
        keep: list[int] = []
        for row_index in range(len(indices)):
            row_key = tuple(values[row_index] for _, values, _ in named)
            try:
                fresh = row_key not in seen
            except TypeError as exc:
                raise UnsupportedSQL("unhashable DISTINCT values") from exc
            if fresh:
                seen.add(row_key)
                keep.append(row_index)
        if statement.limit is not None:
            keep = keep[:statement.limit]
        named = [(name, [values[i] for i in keep], modality)
                 for name, values, modality in named]
    return _build_result(named)


def _execute_native(statement: SelectStatement, table: Table,
                    resolve: Callable[[tuple[str | None, str]], str]
                    ) -> Table:
    source = _Source(table)
    working = table
    if statement.where is not None:
        _guard_predicate(source, statement.where, "native")
        working = ops.select(working, statement.where)

    items = _output_items(statement, table)
    names = [item.output_name if isinstance(item, ColItem) else item.alias
             for item in items]
    if len(set(names)) != len(names) and not statement.star:
        raise UnsupportedSQL("duplicate output names")

    def selected(name: str) -> list[object]:
        return [_adapt_cell(v) for v in working.column(name)]

    if statement.group_by is not None:
        key, key_item, aggregates, descending = _group_plan(
            statement, items, resolve, table)
        specs = []
        for item in aggregates:
            column = _guard_aggregate(source, item, resolve, selected)
            if column is None:
                specs.append(("count", "*", item.alias))
            elif table.dtype(column).is_modality or not item.distinct:
                specs.append(("count" if item.func == "count" else item.func,
                              column, item.alias))
            else:
                specs.append(("count_distinct", column, item.alias))
        grouped = ops.group_aggregate(working, [key], specs)
        order = _order_indices(range(grouped.num_rows),
                               [_adapt_cell(v) for v in grouped.column(key)],
                               descending)
        if statement.limit is not None:
            order = order[:statement.limit]
        grouped = grouped.take(order)
        if key_item.output_name != key:
            grouped = grouped.rename({key: key_item.output_name})
        return sqliteize(grouped)

    columns, aggregates = _split_items(items)
    if aggregates:
        if columns or statement.distinct or statement.order_by is not None:
            raise UnsupportedSQL("aggregates mix only with GROUP BY")
        specs = []
        for item in aggregates:
            column = _guard_aggregate(source, item, resolve, selected)
            if column is None:
                specs.append(("count", "*", item.alias))
            elif table.dtype(column).is_modality or not item.distinct:
                specs.append(("count" if item.func == "count" else item.func,
                              column, item.alias))
            else:
                specs.append(("count_distinct", column, item.alias))
        result = ops.group_aggregate(working, [], specs)
        if statement.limit is not None:
            result = ops.limit(result, statement.limit)
        return sqliteize(result)

    if statement.order_by is not None:
        qualifier, name, descending = statement.order_by
        order_column = resolve((qualifier, name))
        if table.dtype(order_column).is_modality:
            raise UnsupportedSQL("ORDER BY over a modality column")
        order = _order_indices(range(working.num_rows),
                               selected(order_column), descending)
        working = working.take(order)
    if statement.limit is not None and not statement.distinct:
        working = ops.limit(working, statement.limit)

    named_raw: list[tuple[str, str]] = []  # (output name, source column)
    for item in columns:
        column = resolve((item.qualifier, item.name))
        if not table.dtype(column).is_modality:
            source.adapted(column)  # reject values sqlite could not bind
        named_raw.append((item.output_name, column))
    unique = _dedup_names([name for name, _ in named_raw])
    specs_out = []
    out_columns = {}
    for out_name, (_, column) in zip(unique, named_raw):
        specs_out.append(ColumnSpec(out_name, working.dtype(column)))
        out_columns[out_name] = working.column(column)
    projected = Table(Schema(specs_out), out_columns)

    if statement.distinct:
        for name in projected.column_names:
            if projected.dtype(name).is_modality:
                raise UnsupportedSQL("DISTINCT over a modality column")
            if _column_kind([_adapt_cell(v)
                             for v in projected.column(name)]) == "other":
                raise UnsupportedSQL("mixed-type DISTINCT column")
        projected = ops.distinct(projected, projected.column_names)
        if statement.limit is not None:
            projected = ops.limit(projected, statement.limit)
    return sqliteize(projected)


def execute(sql: str, tables: dict[str, Table],
            engine: str = "columnar") -> Table:
    """Execute *sql* over *tables* without sqlite.

    *engine* is ``"columnar"`` (vectorized kernels) or ``"native"``
    (row-wise :mod:`repro.relational.ops`).  Raises
    :class:`UnsupportedSQL` when the statement — or the data it touches —
    falls outside the envelope proven byte-identical to the sqlite
    bridge; callers fall back to the bridge.
    """
    statement = parse_select(sql)
    table, resolve = _resolve_source(statement, tables)
    if engine == "native":
        return _execute_native(statement, table, resolve)
    return _execute_columnar(statement, table, resolve)


def join_tables(left: Table, right: Table,
                left_on: str, right_on: str) -> Table:
    """An equi-join with the sqlite bridge's result representation —
    the non-sqlite engines' replacement for ``build_join_sql``."""
    if left_on not in left or right_on not in right:
        raise UnsupportedSQL("unknown join key")
    if left.dtype(left_on).is_modality or right.dtype(right_on).is_modality:
        raise UnsupportedSQL("cannot join on a modality column")
    return sqliteize(_sqlite_join(left, right, left_on, right_on))

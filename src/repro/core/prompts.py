"""Prompt construction for every phase (Figure 3 of the paper).

Each prompt contains all the information the model needs: (1) a description
of the data, (2) the capabilities / available operators, (3) an output
format description, and (4) the user query / current instruction.  The
planning prompt additionally carries few-shot example translations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.catalog import DataLake
from repro.data.table import Table
from repro.llm.interface import ChatMessage, human, system
from repro.operators.base import OperatorCard

PLANNING_MARKER = "you generate plans to retrieve data from databases"
MAPPING_MARKER = "you map steps in an informal query plan to concrete operators"
ERROR_MARKER = "you analyze errors that occurred while executing a query plan"
DISCOVERY_MARKER = "you identify which columns are relevant"

CAPABILITIES_TEXT = """\
You have the following capabilities:
You are able to look at images (columns of type IMAGE). For example, you are able to do things like:
 - Recognize the objects depicted in images and count them.
 - Decide whether something is depicted in an image (answered with 'yes' or 'no').
 - Select only the rows whose image matches a description.
You are able to read text documents (columns of type TEXT). For example, you are able to do things like:
 - Extract numbers or facts stated in the text (e.g. how many points a team scored).
 - Decide questions that the text answers (e.g. whether a team won).
You are able to run relational operations on tables:
 - Join tables on key columns, select rows by a condition, group and aggregate (count, sum, avg, min, max), sort and limit.
You are able to transform relational columns with generated Python code (e.g. extract the century from a date string).
You are able to plot a result table (bar, line, scatter or hist)."""

PLANNING_FORMAT = """\
Use the following format:
Request: The user request you must satisfy by using your capabilities
Thought: You should always think what to do.
Step 1: Description of the step.
Input: List of tables passed as input.
Output: Name of the output table.
New Columns: The new columns that have been added to the dataset.
... (this can repeat N times)
Step N: Plan completed."""

MAPPING_FORMAT = """\
Use the following output format:
Step <i>: What to do in this step?
Reasoning: Reason about which operator should be used for this step. Take datatypes into account.
Operator: The operator to use, should be one of [{operator_names}]
Arguments: The arguments to call the operator, separated by ';'. Should be (arg_1; ...; arg_n)"""

FEW_SHOT_EXAMPLES = """\
Here are example translations from request to plan:

Example request (museum domain): How many paintings depict a boat?
Thought: I need to look at the images, so I join the metadata with the images, decide for each image whether a boat is depicted, keep only those, and count them.
Step 1: Join the 'paintings_metadata' and the 'painting_images' tables on the 'img_path' column.
Input: ['paintings_metadata', 'painting_images']
Output: joined_table
New Columns: []
Step 2: Extract whether a boat is depicted from the 'image' column in the 'joined_table' table.
Input: ['joined_table']
Output: depicted_table
New Columns: ['boat_depicted']
Step 3: Select only the rows of the 'depicted_table' table where the 'boat_depicted' column equals 'yes'.
Input: ['depicted_table']
Output: selected_table
New Columns: []
Step 4: Count the number of rows of the 'selected_table' table.
Input: ['selected_table']
Output: result_table
New Columns: ['count']
Step 5: Plan completed.

Example request (sports domain): Plot the average number of points scored by each team.
Thought: The points are stated in the game reports, so I join teams with their games and the reports, extract the points, aggregate, and plot.
Step 1: Join the 'teams' and the 'teams_to_games' tables on the 'name' column.
Input: ['teams', 'teams_to_games']
Output: joined_team_table
New Columns: []
Step 2: Join the 'joined_team_table' and the 'game_reports' tables on the 'game_id' column.
Input: ['joined_team_table', 'game_reports']
Output: final_joined_table
New Columns: []
Step 3: Extract the number of points scored by each team from the 'report' column in the 'final_joined_table' table.
Input: ['final_joined_table']
Output: extracted_table
New Columns: ['points_scored']
Step 4: Group the 'extracted_table' table by 'name' and compute the avg of 'points_scored'.
Input: ['extracted_table']
Output: result_table
New Columns: ['avg_points_scored']
Step 5: Plot the 'result_table' table in a bar plot. The 'name' should be on the X-axis and the 'avg_points_scored' on the Y-axis.
Input: ['result_table']
Output: plot
New Columns: []
Step 6: Plan completed."""


@dataclass
class ColumnHint:
    """A relevant column identified during discovery, with example values."""

    table: str
    column: str
    examples: list[object] = field(default_factory=list)

    def render(self) -> str:
        text = (f"- The '{self.column}' column of the '{self.table}' table "
                "might be relevant.")
        if self.examples:
            rendered = ", ".join(repr(e) for e in self.examples)
            text += (" These are some relevant values for the column: "
                     f"[{rendered}]")
        return text


def render_hints(hints: list[ColumnHint]) -> str:
    if not hints:
        return ""
    return ("These columns are potentially relevant:\n"
            + "\n".join(h.render() for h in hints))


def build_planning_prompt(lake: DataLake, query: str,
                          hints: list[ColumnHint],
                          few_shot: bool = True,
                          error_feedback: str = "") -> list[ChatMessage]:
    """The Planning Phase prompt (Figure 3, left).

    *error_feedback* carries the failure that triggered a replan, so the
    model can avoid repeating the flawed plan (Section 3.2 backtracking).
    """
    sections = []
    if few_shot:
        sections.append(FEW_SHOT_EXAMPLES)
    sections.append(f"You are CAESURA and {PLANNING_MARKER}:")
    sections.append("The database contains the following tables:\n"
                    + lake.prompt_repr())
    sections.append(CAPABILITIES_TEXT)
    sections.append(PLANNING_FORMAT)
    body = f"My request is: {query}"
    hint_text = render_hints(hints)
    if hint_text:
        body += "\n" + hint_text
    if error_feedback:
        body += (f"\nA previous plan failed with this error: "
                 f"{error_feedback}\nProduce a plan that avoids it.")
    return [system("\n\n".join(sections)), human(body)]


def context_prompt_repr(tables: dict[str, Table]) -> str:
    """Schema lines for the *current execution context* tables."""
    return "\n".join(
        f" - {table.schema.prompt_repr(name, table.num_rows)}"
        for name, table in tables.items())


def build_mapping_prompt(tables: dict[str, Table], cards: list[OperatorCard],
                         step_text: str, hints: list[ColumnHint],
                         observations: list[str],
                         error_feedback: str = "") -> list[ChatMessage]:
    """The Mapping Phase prompt (Figure 3, right) for *one* logical step.

    *tables* is the current execution context, so the model sees every
    intermediate table (and the columns added by previous operators) —
    this is what interleaved execution buys us.
    """
    sections = [f"You are CAESURA, and {MAPPING_MARKER}:"]
    sections.append("The database contains the following tables:\n"
                    + context_prompt_repr(tables))
    operator_list = "\n".join(f"{card.prompt_repr()}" for card in cards)
    sections.append("You can use the following operators:\n" + operator_list)
    sections.append(MAPPING_FORMAT.format(
        operator_names=", ".join(card.name for card in cards)))

    body_parts = ["Map the steps one by one."]
    hint_text = render_hints(hints)
    if hint_text:
        body_parts.append(hint_text)
    for observation in observations:
        body_parts.append(f"Observation: {observation}")
    if error_feedback:
        body_parts.append(f"The previous attempt failed: {error_feedback}\n"
                          "Choose the operator and arguments again, avoiding "
                          "this error.")
    body_parts.append(step_text)
    return [system("\n\n".join(sections)), human("\n\n".join(body_parts))]


ERROR_QUESTIONS = """\
Answer the following questions about the error:
(1) What are the potential causes of this error?
(2) Explain in detail how this error could be fixed.
(3) Is there a flaw in my plan (Yes/No)?
(4) Is there a more suitable alternative plan (Yes/No)?
(5) Should a different tool be selected for any step (Yes/No)?
(6) Do the input arguments of some of the steps need to be updated (Yes/No)?

Use the following output format:
Answer 1: ...
Answer 2: ...
Answer 3: Yes/No
Answer 4: Yes/No
Answer 5: Yes/No
Answer 6: Yes/No"""


def build_error_prompt(query: str, plan_text: str, step_text: str,
                       error_message: str) -> list[ChatMessage]:
    """The error-handling prompt (Section 3.2)."""
    sections = [f"You are CAESURA, and {ERROR_MARKER}.",
                ERROR_QUESTIONS]
    body = (f"My request was: {query}\n\n"
            f"The plan was:\n{plan_text}\n\n"
            f"While executing:\n{step_text}\n\n"
            f"This error occurred: {error_message}")
    return [system("\n\n".join(sections)), human(body)]


def build_discovery_prompt(lake: DataLake, query: str) -> list[ChatMessage]:
    """Prompt asking the model which columns are relevant to the query."""
    sections = [f"You are CAESURA, and {DISCOVERY_MARKER} to a user request.",
                "The database contains the following tables:\n"
                + lake.prompt_repr(),
                "Use the following output format:\n"
                "Relevant Columns: ['table.column', ...]"]
    return [system("\n\n".join(sections)),
            human(f"My request is: {query}\nWhich columns are relevant?")]

"""The CAESURA driver: the interleaved plan → map → execute loop (Figure 2).

:class:`Engine` answers one natural-language query against a
:class:`~repro.data.catalog.DataLake`.  It is a thin driver composed of
three pluggable parts (:mod:`repro.core.interfaces`):

- a :class:`~repro.core.interfaces.Planner` (default:
  :class:`~repro.core.interfaces.PromptPlanner` over a
  :class:`~repro.llm.brain.SimulatedBrain`),
- a :class:`~repro.core.interfaces.Mapper` (default:
  :class:`~repro.core.interfaces.PromptMapper` over the same model), and
- an :class:`~repro.core.interfaces.Executor` (default:
  :class:`~repro.core.interfaces.RegistryExecutor` over the built-in
  operator registry).

Flow per query:

1. *Discovery*: ask the planner which columns are relevant.
2. *Planning*: ask for a logical plan (or reuse one from the plan cache).
3. For each logical step, interleaved: *Mapping* (bind the step to a
   physical operator + arguments) then *Execution* (run the operator over
   the shared :class:`~repro.operators.base.ExecutionContext`).  Each
   operator's observation is fed into the next mapping prompt.
4. On failure the planner's error analysis decides between retrying the
   step with feedback and backtracking to planning (bounded by
   ``max_replans``).

Every prompt/response pair is recorded in ``last_transcript``; everything
that happened lands in the returned :class:`~repro.core.plan.QueryResult`'s
:class:`~repro.core.plan.PlanTrace`, including per-phase wall-clock timings.

:class:`QueryEngine` is the pre-Session spelling of this class and is kept
as a deprecated shim; new code goes through :class:`repro.session.Session`.
"""

from __future__ import annotations

import os
import time
import warnings
from dataclasses import dataclass, field

from repro.core.interfaces import (Executor, Mapper, Planner, PromptMapper,
                                   PromptPlanner, RegistryExecutor)
from repro.core.plan import (ErrorEvent, LogicalPlan, Observation,
                             PhysicalStep, PlanTrace, QueryResult)
from repro.core.prompts import ColumnHint
from repro.data.catalog import DataLake
from repro.data.table import Table
from repro.errors import ReproError
from repro.llm.brain import SimulatedBrain
from repro.llm.interface import LanguageModel, Transcript
from repro.obs import (MetricsRegistry, StageTrace, TelemetryConfig,
                       TraceContext, pop_trace, push_trace,
                       resolve_cost_model)
from repro.operators.base import ExecutionContext
from repro.plotting.spec import PlotSpec
from repro.relational.sqlexec import SQLBridge


@dataclass
class EngineConfig:
    """Tunables of the execution loop."""

    max_replans: int = 2          # bounded backtracking to the planning phase
    max_step_retries: int = 2     # mapping retries per step, with feedback
    use_discovery: bool = True    # run the discovery prompt for column hints
    few_shot: bool = True         # include few-shot examples when planning
    max_observations: int = 6     # observations fed into each mapping prompt
    #: which relational engine executes SQL / Join steps: ``"columnar"``
    #: (vectorized kernels over column storage, sqlite fallback),
    #: ``"native"`` (row-wise repro.relational.ops, sqlite fallback), or
    #: ``"sqlite"`` (always the bridge).  All three are byte-identical —
    #: the differential fuzzer (repro.testing.fuzz) asserts it.
    relational_engine: str = field(default_factory=lambda: os.environ.get(
        "REPRO_RELATIONAL_ENGINE", "columnar"))


@dataclass
class _StepFailure:
    """Outcome of a step that could not be completed."""

    event: ErrorEvent
    should_replan: bool


class Engine:
    """Answers queries end-to-end over one data lake.

    Internal driver — :class:`repro.session.Session` is the public facade.
    ``planner``/``mapper``/``executor`` default to the prompt-driven
    implementations over *model* (itself defaulting to
    :class:`~repro.llm.brain.SimulatedBrain`); pass explicit instances to
    swap any of the three roles.
    """

    def __init__(self, lake: DataLake, model: LanguageModel | None = None,
                 config: EngineConfig | None = None,
                 planner: Planner | None = None,
                 mapper: Mapper | None = None,
                 executor: Executor | None = None,
                 plan_cache=None, answer_cache=None,
                 metrics: MetricsRegistry | None = None,
                 telemetry: TelemetryConfig | None = None):
        self.lake = lake
        if model is None and (planner is None or mapper is None):
            model = SimulatedBrain()
        self.model = model
        self.planner = planner if planner is not None else PromptPlanner(model)
        self.mapper = mapper if mapper is not None else PromptMapper(model)
        self.executor = (executor if executor is not None
                         else RegistryExecutor())
        self.config = config or EngineConfig()
        #: optional :class:`repro.core.batch.PlanCache`; shared across
        #: engines by the batch layer.
        self.plan_cache = plan_cache
        #: optional :class:`repro.core.answer_cache.AnswerCache`; handed to
        #: every :class:`~repro.operators.base.ExecutionContext` so the
        #: modality operators memoize (object, question) answers.  Shared
        #: across engines by the batch layer.
        self.answer_cache = answer_cache
        #: engine-lifetime sqlite bridge: tables are registered into sqlite
        #: once per content fingerprint instead of once per SQL step (the
        #: registration copy dominated warm batches on 10k-row lakes).
        self.sql_bridge = SQLBridge()
        self.last_transcript = Transcript()
        #: optional per-span hook called with each
        #: :class:`~repro.obs.StageTrace` the moment it is recorded —
        #: the query service's event stream
        #: (:mod:`repro.serve.jobs`) attaches here to push spans to
        #: clients while the query is still executing.  Only fires when
        #: telemetry is enabled; exceptions are swallowed so a broken
        #: listener can never fail a query.
        self.span_listener = None
        #: optional :class:`~repro.obs.TraceContext` the next query runs
        #: under — set by a caller that already owns a trace (the serve
        #: layer, a process-backend parent) before calling :meth:`query`;
        #: when ``None`` the engine mints a fresh root context, so every
        #: query has a trace id.
        self.trace_context = None
        #: optional session-level :class:`~repro.obs.MetricsRegistry`;
        #: every finished query records counters and latencies into it.
        self.metrics = metrics
        self.telemetry_config = telemetry or TelemetryConfig()
        self.cost_model = resolve_cost_model(
            model, override=self.telemetry_config.cost_model)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def query(self, query: str) -> QueryResult:
        """Answer *query*, returning a :class:`QueryResult` with full trace."""
        context = self.trace_context or TraceContext.new()
        trace = PlanTrace(query=query, trace_id=context.trace_id)
        transcript = Transcript()
        self.last_transcript = transcript
        started = time.perf_counter()
        # Activate the trace on this thread so components below the
        # engine (cachenet RPCs) attach their spans to this query.
        activated = self.telemetry_config.enabled
        if activated:
            push_trace(context, trace.telemetry)
        try:
            result = self._answer(query, trace, transcript)
        finally:
            if activated:
                pop_trace()
            self._tick(trace, "total", started)
        self._record_metrics(trace, result.ok)
        return result

    @property
    def fingerprint(self) -> str:
        """Fingerprint of the lake, used as part of the plan-cache key.

        Recomputed per access (it is a handful of sha256 updates), so a
        lake mutated through ``DataLake.add`` after engine construction
        never reuses stale cache keys.
        """
        return self.lake.fingerprint()

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------

    def _answer(self, query: str, trace: PlanTrace,
                transcript: Transcript) -> QueryResult:
        hints: list[ColumnHint] = []
        if self.config.use_discovery:
            hints = self._discover(query, trace, transcript)

        replans = 0
        planning_feedback = ""
        while True:
            try:
                plan, from_cache = self._plan(query, hints, trace, transcript,
                                              error_feedback=planning_feedback)
            except ReproError as exc:
                trace.errors.append(ErrorEvent("planning", None, str(exc)))
                return QueryResult(kind="error", error=str(exc), trace=trace)
            trace.logical_plan = plan
            trace.telemetry.mark_plan_cache(from_cache)
            trace.physical_steps = []
            trace.observations = []
            outcome = self._run_plan(query, plan, hints, trace, transcript)
            if isinstance(outcome, QueryResult):
                if (outcome.ok and self.plan_cache is not None
                        and not from_cache):
                    self.plan_cache.put((query, self.fingerprint), plan)
                return outcome
            # _StepFailure
            if outcome.should_replan and replans < self.config.max_replans:
                outcome.event.recovered = True
                replans += 1
                trace.replans = replans
                planning_feedback = outcome.event.message
                continue
            return QueryResult(kind="error", error=outcome.event.message,
                               trace=trace)

    def _discover(self, query: str, trace: PlanTrace,
                  transcript: Transcript) -> list[ColumnHint]:
        started = time.perf_counter()
        mark = len(transcript.entries)
        try:
            return self.planner.discover(self.lake, query, transcript)
        except ReproError as exc:
            trace.errors.append(ErrorEvent(
                "planning", None, f"discovery failed: {exc}", recovered=True))
            return []
        finally:
            self._tick(trace, "discovery", started)
            self._span(trace, transcript, "discovery", started, mark)

    def _plan(self, query: str, hints: list[ColumnHint], trace: PlanTrace,
              transcript: Transcript,
              error_feedback: str = "") -> tuple[LogicalPlan, bool]:
        started = time.perf_counter()
        mark = len(transcript.entries)
        try:
            # A replan must not reuse the plan that just failed: bypass the
            # cache whenever error feedback is present.
            if self.plan_cache is not None and not error_feedback:
                cached = self.plan_cache.get((query, self.fingerprint))
                if cached is not None:
                    return cached, True
            plan = self.planner.plan(self.lake, query, hints, transcript,
                                     few_shot=self.config.few_shot,
                                     error_feedback=error_feedback)
            return plan, False
        finally:
            self._tick(trace, "planning", started)
            self._span(trace, transcript, "planning", started, mark)

    def _run_plan(self, query: str, plan: LogicalPlan,
                  hints: list[ColumnHint], trace: PlanTrace,
                  transcript: Transcript) -> QueryResult | _StepFailure:
        context = ExecutionContext(
            tables={name: self.lake.table(name)
                    for name in self.lake.source_names},
            answer_cache=self.answer_cache,
            sql_bridge=self.sql_bridge,
            telemetry=trace.telemetry,
            relational_engine=self.config.relational_engine)
        cards = self.executor.cards()
        observations: list[str] = []
        last_table: Table | None = None
        last_plot: PlotSpec | None = None

        for step in plan:
            feedback = ""
            step_events: list[ErrorEvent] = []
            succeeded = False
            for _attempt in range(self.config.max_step_retries + 1):
                phase = "mapping"
                started = time.perf_counter()
                mark = len(transcript.entries)
                try:
                    window = observations[-self.config.max_observations:]
                    decision = self.mapper.map_step(
                        context.tables, cards, step, hints, window,
                        transcript, error_feedback=feedback)
                    self._tick(trace, "mapping", started)
                    self._span(trace, transcript, "mapping", started, mark,
                               step_index=step.index)
                    phase = "execution"
                    started = time.perf_counter()
                    mark = len(transcript.entries)
                    execution = self.executor.execute(decision, context)
                    result = execution.result
                    self._tick(trace, "execution", started)
                    self._span(trace, transcript,
                               f"operator:{execution.operator}", started,
                               mark, step_index=step.index)
                except ReproError as exc:
                    self._tick(trace, phase, started)
                    event = ErrorEvent(phase, step.index, str(exc))
                    trace.errors.append(event)
                    step_events.append(event)
                    analysis = self.planner.analyze_error(query, plan, step,
                                                          exc, transcript)
                    # The span of a failed attempt covers the error-analysis
                    # prompt too — those tokens were spent on this attempt.
                    self._span(trace, transcript, phase, started, mark,
                               step_index=step.index,
                               notes={"error": str(exc)[:200]})
                    if analysis is not None and analysis.backtrack_to_planning:
                        return _StepFailure(event, should_replan=True)
                    feedback = str(exc)
                    continue
                # Success: earlier failures of this step were recovered.
                for event in step_events:
                    event.recovered = True
                trace.physical_steps.append(PhysicalStep(
                    logical=step, operator=execution.operator,
                    arguments=decision.arguments,
                    reasoning=decision.reasoning))
                observation = (result.observation
                               or f"Step {step.index} produced no output.")
                observations.append(observation)
                trace.observations.append(Observation(step.index,
                                                      observation))
                if result.plot is not None:
                    last_plot = result.plot
                if result.table is not None:
                    last_table = result.table
                    if step.output and step.output != "plot":
                        context.bind(step.output, result.table)
                succeeded = True
                break
            if not succeeded:
                return _StepFailure(step_events[-1], should_replan=False)
        return self._finalize(trace, last_table, last_plot)

    def _finalize(self, trace: PlanTrace, table: Table | None,
                  plot: PlotSpec | None) -> QueryResult:
        if plot is not None:
            return QueryResult(kind="plot", plot=plot, table=table,
                               trace=trace)
        if table is None:
            trace.errors.append(ErrorEvent(
                "execution", None, "plan produced no result table"))
            return QueryResult(kind="error",
                               error="plan produced no result table",
                               trace=trace)
        if table.num_rows == 1 and table.num_columns == 1:
            value = table.column(table.column_names[0])[0]
            return QueryResult(kind="value", value=value, table=table,
                               trace=trace)
        return QueryResult(kind="table", table=table, trace=trace)

    @staticmethod
    def _tick(trace: PlanTrace, phase: str, started: float) -> None:
        elapsed = time.perf_counter() - started
        trace.timings[phase] = trace.timings.get(phase, 0.0) + elapsed

    def _span(self, trace: PlanTrace, transcript: Transcript, stage: str,
              started: float, mark: int, step_index: int | None = None,
              notes: dict | None = None) -> None:
        """Emit one :class:`~repro.obs.StageTrace` onto the query telemetry.

        Token traffic is attributed by transcript window: *mark* is the
        transcript length when the stage began, so every prompt/response
        recorded since then belongs to this span.
        """
        if not self.telemetry_config.enabled:
            return
        token_in = token_out = 0
        for entry in transcript.entries[mark:]:
            t_in, t_out = self.cost_model.usage(entry.messages,
                                                entry.response)
            token_in += t_in
            token_out += t_out
        span = StageTrace(
            stage=stage,
            duration_ms=(time.perf_counter() - started) * 1000.0,
            token_in=token_in, token_out=token_out,
            cost_usd=self.cost_model.cost_usd(token_in, token_out),
            step_index=step_index, notes=dict(notes or {}))
        trace.telemetry.add_span(span)
        listener = self.span_listener
        if listener is not None:
            try:
                listener(span)
            except Exception:  # noqa: BLE001 - listeners must never fail a query
                pass

    def _record_metrics(self, trace: PlanTrace, ok: bool) -> None:
        """Fold one finished query into the session metrics registry."""
        if self.metrics is None:
            return
        metrics = self.metrics
        metrics.increment("queries_total")
        metrics.increment("queries_ok" if ok else "queries_error")
        telemetry = trace.telemetry
        for name in ("plan_cache_hits", "plan_cache_misses",
                     "answer_cache_hits", "answer_cache_misses"):
            value = telemetry.counters.get(name)
            if value:
                metrics.increment(name, value)
        if trace.replans:
            metrics.increment("replans_total", trace.replans)
        if telemetry.spans:
            metrics.increment("spans_total", len(telemetry.spans))
            metrics.increment("token_in_total", telemetry.token_in)
            metrics.increment("token_out_total", telemetry.token_out)
            metrics.increment("cost_usd_total", telemetry.cost_usd)
        for phase, seconds in trace.timings.items():
            metrics.observe(f"latency_{phase}", seconds)


class QueryEngine(Engine):
    """Deprecated pre-Session engine entry point.

    Construction emits one :class:`DeprecationWarning`; behaviour is
    identical to :class:`Engine` plus the historical :meth:`answer`
    spelling.  Use :class:`repro.session.Session` instead.
    """

    def __init__(self, lake: DataLake, model: LanguageModel | None = None,
                 config: EngineConfig | None = None, plan_cache=None,
                 answer_cache=None):
        warnings.warn(
            "QueryEngine is deprecated; use repro.session.Session "
            "(e.g. Session(lake).query(...))",
            DeprecationWarning, stacklevel=2)
        super().__init__(lake, model=model, config=config,
                         plan_cache=plan_cache, answer_cache=answer_cache)

    def answer(self, query: str) -> QueryResult:
        """Historical name of :meth:`Engine.query`."""
        return self.query(query)

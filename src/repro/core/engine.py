"""The CAESURA driver: the interleaved plan → map → execute loop (Figure 2).

:class:`QueryEngine` answers one natural-language query against a
:class:`~repro.data.catalog.DataLake`.  It talks to the planner model
exclusively through rendered chat prompts (:mod:`repro.core.prompts`) and
parses the responses with :mod:`repro.core.parsing` — the same contract as a
remote GPT-4 endpoint, which is what lets :class:`~repro.llm.brain.
SimulatedBrain` (or any other :class:`~repro.llm.interface.LanguageModel`)
be plugged in.

Flow per query:

1. *Discovery*: ask which columns are relevant, turn them into
   :class:`~repro.core.prompts.ColumnHint`s with example values.
2. *Planning*: ask for a logical plan (or reuse one from the plan cache).
3. For each logical step, interleaved: *Mapping* (bind the step to a
   physical operator + arguments) then *Execution* (run the operator over
   the shared :class:`~repro.operators.base.ExecutionContext`).  Each
   operator's observation is fed into the next mapping prompt.
4. On failure the error-analysis prompt decides between retrying the step
   with feedback and backtracking to planning (bounded by
   ``max_replans``).

Every prompt/response pair is recorded in ``last_transcript``; everything
that happened lands in the returned :class:`~repro.core.plan.QueryResult`'s
:class:`~repro.core.plan.PlanTrace`, including per-phase wall-clock timings.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.parsing import (ErrorAnalysis, parse_error_analysis,
                                parse_logical_plan, parse_mapping_response,
                                parse_relevant_columns)
from repro.core.plan import (ErrorEvent, LogicalPlan, LogicalStep,
                             Observation, PhysicalStep, PlanTrace,
                             QueryResult)
from repro.core.prompts import (ColumnHint, build_discovery_prompt,
                                build_error_prompt, build_mapping_prompt,
                                build_planning_prompt)
from repro.data.catalog import DataLake
from repro.data.table import Table
from repro.errors import ReproError
from repro.llm.brain import SimulatedBrain
from repro.llm.interface import LanguageModel, Transcript
from repro.operators.base import ExecutionContext, all_cards, build_operator
from repro.plotting.spec import PlotSpec


@dataclass
class EngineConfig:
    """Tunables of the execution loop."""

    max_replans: int = 2          # bounded backtracking to the planning phase
    max_step_retries: int = 2     # mapping retries per step, with feedback
    use_discovery: bool = True    # run the discovery prompt for column hints
    few_shot: bool = True         # include few-shot examples when planning
    max_observations: int = 6     # observations fed into each mapping prompt


@dataclass
class _StepFailure:
    """Outcome of a step that could not be completed."""

    event: ErrorEvent
    should_replan: bool


class QueryEngine:
    """Answers queries end-to-end over one data lake."""

    def __init__(self, lake: DataLake, model: LanguageModel | None = None,
                 config: EngineConfig | None = None, plan_cache=None,
                 answer_cache=None):
        self.lake = lake
        self.model = model if model is not None else SimulatedBrain()
        self.config = config or EngineConfig()
        #: optional :class:`repro.core.batch.PlanCache`; shared across
        #: engines by the batch runners.
        self.plan_cache = plan_cache
        #: optional :class:`repro.core.answer_cache.AnswerCache`; handed to
        #: every :class:`~repro.operators.base.ExecutionContext` so the
        #: modality operators memoize (object, question) answers.  Shared
        #: across engines by the batch runners.
        self.answer_cache = answer_cache
        self.last_transcript = Transcript()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def answer(self, query: str) -> QueryResult:
        """Answer *query*, returning a :class:`QueryResult` with full trace."""
        trace = PlanTrace(query=query)
        transcript = Transcript()
        self.last_transcript = transcript
        started = time.perf_counter()
        try:
            result = self._answer(query, trace, transcript)
        finally:
            self._tick(trace, "total", started)
        return result

    @property
    def fingerprint(self) -> str:
        """Fingerprint of the lake, used as part of the plan-cache key.

        Recomputed per access (it is a handful of sha256 updates), so a
        lake mutated through ``DataLake.add`` after engine construction
        never reuses stale cache keys.
        """
        return self.lake.fingerprint()

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------

    def _answer(self, query: str, trace: PlanTrace,
                transcript: Transcript) -> QueryResult:
        hints: list[ColumnHint] = []
        if self.config.use_discovery:
            hints = self._discover(query, trace, transcript)

        replans = 0
        planning_feedback = ""
        while True:
            try:
                plan, from_cache = self._plan(query, hints, trace, transcript,
                                              error_feedback=planning_feedback)
            except ReproError as exc:
                trace.errors.append(ErrorEvent("planning", None, str(exc)))
                return QueryResult(kind="error", error=str(exc), trace=trace)
            trace.logical_plan = plan
            trace.plan_cache_hit = from_cache
            trace.physical_steps = []
            trace.observations = []
            outcome = self._run_plan(query, plan, hints, trace, transcript)
            if isinstance(outcome, QueryResult):
                if (outcome.ok and self.plan_cache is not None
                        and not from_cache):
                    self.plan_cache.put((query, self.fingerprint), plan)
                return outcome
            # _StepFailure
            if outcome.should_replan and replans < self.config.max_replans:
                outcome.event.recovered = True
                replans += 1
                trace.replans = replans
                planning_feedback = outcome.event.message
                continue
            return QueryResult(kind="error", error=outcome.event.message,
                               trace=trace)

    def _discover(self, query: str, trace: PlanTrace,
                  transcript: Transcript) -> list[ColumnHint]:
        started = time.perf_counter()
        try:
            messages = build_discovery_prompt(self.lake, query)
            response = self.model.complete(messages)
            transcript.record("discovery", messages, response)
            pairs = parse_relevant_columns(response)
            hints = []
            for table_name, column in pairs:
                if table_name not in self.lake:
                    continue
                table = self.lake.table(table_name)
                if column not in table.column_names:
                    continue
                hints.append(ColumnHint(table_name, column,
                                        table.sample_values(column)))
            return hints
        except ReproError as exc:
            trace.errors.append(ErrorEvent(
                "planning", None, f"discovery failed: {exc}", recovered=True))
            return []
        finally:
            self._tick(trace, "discovery", started)

    def _plan(self, query: str, hints: list[ColumnHint], trace: PlanTrace,
              transcript: Transcript,
              error_feedback: str = "") -> tuple[LogicalPlan, bool]:
        started = time.perf_counter()
        try:
            # A replan must not reuse the plan that just failed: bypass the
            # cache whenever error feedback is present.
            if self.plan_cache is not None and not error_feedback:
                cached = self.plan_cache.get((query, self.fingerprint))
                if cached is not None:
                    return cached, True
            messages = build_planning_prompt(self.lake, query, hints,
                                             few_shot=self.config.few_shot,
                                             error_feedback=error_feedback)
            response = self.model.complete(messages)
            transcript.record("planning", messages, response)
            return parse_logical_plan(response), False
        finally:
            self._tick(trace, "planning", started)

    def _run_plan(self, query: str, plan: LogicalPlan,
                  hints: list[ColumnHint], trace: PlanTrace,
                  transcript: Transcript) -> QueryResult | _StepFailure:
        context = ExecutionContext(
            tables={name: self.lake.table(name)
                    for name in self.lake.source_names},
            answer_cache=self.answer_cache)
        cards = all_cards()
        observations: list[str] = []
        last_table: Table | None = None
        last_plot: PlotSpec | None = None

        for step in plan:
            feedback = ""
            step_events: list[ErrorEvent] = []
            succeeded = False
            for _attempt in range(self.config.max_step_retries + 1):
                phase = "mapping"
                started = time.perf_counter()
                try:
                    window = observations[-self.config.max_observations:]
                    messages = build_mapping_prompt(
                        context.tables, cards, step.render(), hints, window,
                        error_feedback=feedback)
                    response = self.model.complete(messages)
                    transcript.record(f"mapping:{step.index}", messages,
                                      response)
                    decision = parse_mapping_response(response)
                    operator = build_operator(decision.operator)
                    self._tick(trace, "mapping", started)
                    phase = "execution"
                    started = time.perf_counter()
                    result = operator.run(context, decision.arguments)
                    self._tick(trace, "execution", started)
                except ReproError as exc:
                    self._tick(trace, phase, started)
                    event = ErrorEvent(phase, step.index, str(exc))
                    trace.errors.append(event)
                    step_events.append(event)
                    analysis = self._analyze_error(query, plan, step, exc,
                                                   transcript)
                    if analysis is not None and analysis.backtrack_to_planning:
                        return _StepFailure(event, should_replan=True)
                    feedback = str(exc)
                    continue
                # Success: earlier failures of this step were recovered.
                for event in step_events:
                    event.recovered = True
                trace.physical_steps.append(PhysicalStep(
                    logical=step, operator=operator.name,
                    arguments=decision.arguments,
                    reasoning=decision.reasoning))
                observation = (result.observation
                               or f"Step {step.index} produced no output.")
                observations.append(observation)
                trace.observations.append(Observation(step.index,
                                                      observation))
                if result.plot is not None:
                    last_plot = result.plot
                if result.table is not None:
                    last_table = result.table
                    if step.output and step.output != "plot":
                        context.bind(step.output, result.table)
                succeeded = True
                break
            if not succeeded:
                return _StepFailure(step_events[-1], should_replan=False)
        return self._finalize(trace, last_table, last_plot)

    def _analyze_error(self, query: str, plan: LogicalPlan,
                       step: LogicalStep, error: Exception,
                       transcript: Transcript) -> ErrorAnalysis | None:
        try:
            messages = build_error_prompt(query, plan.render(), step.render(),
                                          str(error))
            response = self.model.complete(messages)
            transcript.record(f"error:{step.index}", messages, response)
            return parse_error_analysis(response)
        except ReproError:
            return None

    def _finalize(self, trace: PlanTrace, table: Table | None,
                  plot: PlotSpec | None) -> QueryResult:
        if plot is not None:
            return QueryResult(kind="plot", plot=plot, table=table,
                               trace=trace)
        if table is None:
            trace.errors.append(ErrorEvent(
                "execution", None, "plan produced no result table"))
            return QueryResult(kind="error",
                               error="plan produced no result table",
                               trace=trace)
        if table.num_rows == 1 and table.num_columns == 1:
            value = table.column(table.column_names[0])[0]
            return QueryResult(kind="value", value=value, table=table,
                               trace=trace)
        return QueryResult(kind="table", table=table, trace=trace)

    @staticmethod
    def _tick(trace: PlanTrace, phase: str, started: float) -> None:
        elapsed = time.perf_counter() - started
        trace.timings[phase] = trace.timings.get(phase, 0.0) + elapsed

"""Pluggable engine parts: the Planner / Mapper / Executor protocols.

The CAESURA loop (:class:`repro.core.engine.Engine`) is a thin driver over
three swappable roles:

- a :class:`Planner` proposes relevant columns, logical plans, and error
  verdicts (backtrack vs. retry);
- a :class:`Mapper` binds one logical step to a physical operator and its
  arguments, given the tables produced so far and prior observations;
- an :class:`Executor` resolves that decision against an operator registry
  and runs it over the shared execution context.

The default implementations — :class:`PromptPlanner`, :class:`PromptMapper`,
:class:`RegistryExecutor` — reproduce the paper's setup: planner and mapper
talk to a :class:`~repro.llm.interface.LanguageModel` exclusively through
rendered chat prompts (the same contract as a remote GPT-4 endpoint), and
the executor dispatches over :data:`repro.operators.base.DEFAULT_REGISTRY`.
Any of the three can be replaced independently: a learned mapper, a process
-pool executor, or a planner that replays serialized plans all compose with
the same driver.

Every method takes the per-query :class:`~repro.llm.interface.Transcript`
explicitly, so implementations stay stateless and thread-safe — the batch
layer shares one planner/mapper/executor triple across worker engines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.core.parsing import (ErrorAnalysis, MappingDecision,
                                parse_error_analysis, parse_logical_plan,
                                parse_mapping_response,
                                parse_relevant_columns)
from repro.core.plan import LogicalPlan, LogicalStep
from repro.core.prompts import (ColumnHint, build_discovery_prompt,
                                build_error_prompt, build_mapping_prompt,
                                build_planning_prompt)
from repro.data.catalog import DataLake
from repro.data.table import Table
from repro.errors import ReproError
from repro.llm.interface import LanguageModel, Transcript
from repro.operators.base import (DEFAULT_REGISTRY, ExecutionContext,
                                  OperatorCard, OperatorRegistry,
                                  OperatorResult)


@dataclass
class StepExecution:
    """Outcome of executing one mapping decision."""

    operator: str               # resolved operator name (registry spelling)
    result: OperatorResult


@runtime_checkable
class Planner(Protocol):
    """Produces logical plans (and plan-level judgements) for a query."""

    def discover(self, lake: DataLake, query: str,
                 transcript: Transcript) -> list[ColumnHint]:
        """Relevant columns with example values (Discovery Phase)."""
        ...

    def plan(self, lake: DataLake, query: str, hints: list[ColumnHint],
             transcript: Transcript, *, few_shot: bool = True,
             error_feedback: str = "") -> LogicalPlan:
        """A logical plan for *query* (Planning Phase)."""
        ...

    def analyze_error(self, query: str, plan: LogicalPlan,
                      step: LogicalStep, error: Exception,
                      transcript: Transcript) -> ErrorAnalysis | None:
        """Retry-vs-backtrack verdict for a failed step (``None``: retry)."""
        ...


@runtime_checkable
class Mapper(Protocol):
    """Binds one logical step to a physical operator + arguments."""

    def map_step(self, tables: dict[str, Table],
                 cards: list[OperatorCard], step: LogicalStep,
                 hints: list[ColumnHint], observations: list[str],
                 transcript: Transcript,
                 error_feedback: str = "") -> MappingDecision:
        """The Mapping Phase decision for *step*."""
        ...


@runtime_checkable
class Executor(Protocol):
    """Runs mapping decisions against a physical operator set."""

    def cards(self) -> list[OperatorCard]:
        """Operator cards advertised to the mapper's prompt."""
        ...

    def execute(self, decision: MappingDecision,
                context: ExecutionContext) -> StepExecution:
        """Resolve and run *decision* over *context*."""
        ...


class PromptPlanner:
    """Planner that drives a :class:`LanguageModel` through chat prompts."""

    def __init__(self, model: LanguageModel):
        self.model = model

    def discover(self, lake: DataLake, query: str,
                 transcript: Transcript) -> list[ColumnHint]:
        messages = build_discovery_prompt(lake, query)
        response = self.model.complete(messages)
        transcript.record("discovery", messages, response)
        hints: list[ColumnHint] = []
        for table_name, column in parse_relevant_columns(response):
            if table_name not in lake:
                continue
            table = lake.table(table_name)
            if column not in table.column_names:
                continue
            hints.append(ColumnHint(table_name, column,
                                    table.sample_values(column)))
        return hints

    def plan(self, lake: DataLake, query: str, hints: list[ColumnHint],
             transcript: Transcript, *, few_shot: bool = True,
             error_feedback: str = "") -> LogicalPlan:
        messages = build_planning_prompt(lake, query, hints,
                                         few_shot=few_shot,
                                         error_feedback=error_feedback)
        response = self.model.complete(messages)
        transcript.record("planning", messages, response)
        return parse_logical_plan(response)

    def analyze_error(self, query: str, plan: LogicalPlan,
                      step: LogicalStep, error: Exception,
                      transcript: Transcript) -> ErrorAnalysis | None:
        try:
            messages = build_error_prompt(query, plan.render(), step.render(),
                                          str(error))
            response = self.model.complete(messages)
            transcript.record(f"error:{step.index}", messages, response)
            return parse_error_analysis(response)
        except ReproError:
            return None


class PromptMapper:
    """Mapper that drives a :class:`LanguageModel` through chat prompts."""

    def __init__(self, model: LanguageModel):
        self.model = model

    def map_step(self, tables: dict[str, Table],
                 cards: list[OperatorCard], step: LogicalStep,
                 hints: list[ColumnHint], observations: list[str],
                 transcript: Transcript,
                 error_feedback: str = "") -> MappingDecision:
        messages = build_mapping_prompt(tables, cards, step.render(), hints,
                                        observations,
                                        error_feedback=error_feedback)
        response = self.model.complete(messages)
        transcript.record(f"mapping:{step.index}", messages, response)
        return parse_mapping_response(response)


class RegistryExecutor:
    """Executor dispatching over an :class:`OperatorRegistry`."""

    def __init__(self, registry: OperatorRegistry | None = None):
        self.registry = registry if registry is not None else DEFAULT_REGISTRY

    def cards(self) -> list[OperatorCard]:
        return self.registry.cards()

    def execute(self, decision: MappingDecision,
                context: ExecutionContext) -> StepExecution:
        operator = self.registry.build(decision.operator)
        result = operator.run(context, decision.arguments)
        return StepExecution(operator=operator.name, result=result)

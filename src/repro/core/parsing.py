"""Parsers for LLM responses (planning, mapping, error analysis, discovery).

The output formats are specified inside the prompts
(:mod:`repro.core.prompts`); these parsers are intentionally forgiving about
whitespace but strict about structure — an unparseable response raises
:class:`repro.errors.PlanParseError`, which the error handler treats like
any other failure.
"""

from __future__ import annotations

import ast
import json
import re
import threading
from dataclasses import dataclass

from repro.core.plan import LogicalPlan, LogicalStep, decode_params
from repro.errors import PlanParseError

#: CPython 3.11's AST constructor keeps its recursion-depth accounting in
#: interpreter-wide state, so concurrent ``ast.parse`` calls from the
#: thread backend's workers can raise ``SystemError: AST constructor
#: recursion depth mismatch``.  Every in-repo ``ast.parse`` therefore
#: serializes on this one lock (the UDF sandbox shares it); the parses
#: are tiny, so contention is negligible.  Fixed upstream in 3.12.
AST_LOCK = threading.Lock()

_STEP_RE = re.compile(
    r"Step\s+(?P<index>\d+):\s*(?P<description>.*?)\s*"
    r"(?:\nInput:\s*(?P<inputs>\[.*?\])\s*"
    r"\nOutput:\s*(?P<output>\S+)\s*"
    r"\nNew Columns:\s*(?P<new_columns>\[.*?\])\s*"
    r"(?:\nParams:\s*(?P<params>\{[^\n]*\}))?)?\s*(?=\nStep\s+\d+:|\Z)",
    re.DOTALL)

_THOUGHT_RE = re.compile(r"Thought:\s*(.*?)(?=\nStep\s+\d+:|\Z)", re.DOTALL)

_COMPLETED_RE = re.compile(r"plan completed", re.IGNORECASE)


def _literal_list(text: str | None, what: str) -> list[str]:
    if text is None:
        return []
    try:
        with AST_LOCK:
            value = ast.literal_eval(text)
    except (ValueError, SyntaxError) as exc:
        raise PlanParseError(f"cannot parse {what} list {text!r}") from exc
    if not isinstance(value, list):
        raise PlanParseError(f"{what} is not a list: {text!r}")
    return [str(v) for v in value]


def _parse_params(text: str | None) -> dict:
    """Parse an optional ``Params: {...}`` JSON payload of a plan step."""
    if text is None:
        return {}
    try:
        value = json.loads(text)
    except ValueError as exc:
        raise PlanParseError(f"cannot parse Params payload {text!r}") from exc
    if not isinstance(value, dict):
        raise PlanParseError(f"Params payload is not an object: {text!r}")
    return decode_params(value)


def parse_logical_plan(text: str) -> LogicalPlan:
    """Parse a Planning Phase response into a :class:`LogicalPlan`."""
    if not text or not text.strip():
        raise PlanParseError("empty planning response")
    thought_match = _THOUGHT_RE.search(text)
    thought = thought_match.group(1).strip() if thought_match else ""

    steps: list[LogicalStep] = []
    completed = False
    for match in _STEP_RE.finditer(text):
        description = match.group("description").strip()
        if _COMPLETED_RE.search(description):
            completed = True
            continue
        steps.append(LogicalStep(
            index=int(match.group("index")),
            description=description,
            inputs=_literal_list(match.group("inputs"), "Input"),
            output=(match.group("output") or "").strip(),
            new_columns=_literal_list(match.group("new_columns"),
                                      "New Columns"),
            params=_parse_params(match.group("params"))))
    if not steps:
        raise PlanParseError(
            f"planning response contains no steps: {text[:200]!r}")
    if not completed:
        raise PlanParseError(
            "planning response is missing the 'Plan completed.' terminator")
    return LogicalPlan(steps=steps, thought=thought)


@dataclass
class MappingDecision:
    """The parsed Mapping Phase response for one step."""

    operator: str
    arguments: list[str]
    reasoning: str = ""


_OPERATOR_RE = re.compile(r"Operator:\s*(?P<name>.+)")
_ARGUMENTS_RE = re.compile(r"Arguments:\s*\((?P<args>.*)\)\s*$",
                           re.DOTALL)
_REASONING_RE = re.compile(r"Reasoning:\s*(?P<text>.*?)(?=\nOperator:)",
                           re.DOTALL)


def parse_mapping_response(text: str) -> MappingDecision:
    """Parse a Mapping Phase response into operator + arguments."""
    if not text or not text.strip():
        raise PlanParseError("empty mapping response")
    operator_match = _OPERATOR_RE.search(text)
    if operator_match is None:
        raise PlanParseError(
            f"mapping response has no 'Operator:' line: {text[:200]!r}")
    arguments_match = _ARGUMENTS_RE.search(text)
    if arguments_match is None:
        raise PlanParseError(
            f"mapping response has no 'Arguments: (...)' line: "
            f"{text[:200]!r}")
    reasoning_match = _REASONING_RE.search(text)
    arguments = [a.strip() for a in arguments_match.group("args").split(";")]
    if arguments == [""]:
        arguments = []
    return MappingDecision(
        operator=operator_match.group("name").strip(),
        arguments=arguments,
        reasoning=(reasoning_match.group("text").strip()
                   if reasoning_match else ""))


@dataclass
class ErrorAnalysis:
    """Parsed answers to the six error-handling questions (Section 3.2)."""

    causes: str
    fix: str
    flaw_in_plan: bool
    alternative_plan: bool
    different_tool: bool
    update_arguments: bool

    @property
    def backtrack_to_planning(self) -> bool:
        """Questions (3) + (4) decide whether to backtrack to planning."""
        return self.flaw_in_plan or self.alternative_plan


_ANSWER_RE = re.compile(r"Answer\s+(?P<number>\d+):\s*(?P<text>.*?)"
                        r"(?=\nAnswer\s+\d+:|\Z)", re.DOTALL)


def parse_error_analysis(text: str) -> ErrorAnalysis:
    """Parse the error-analysis response."""
    answers: dict[int, str] = {}
    for match in _ANSWER_RE.finditer(text or ""):
        answers[int(match.group("number"))] = match.group("text").strip()
    missing = [n for n in range(1, 7) if n not in answers]
    if missing:
        raise PlanParseError(
            f"error analysis is missing answers {missing}: {text[:200]!r}")

    def yes(number: int) -> bool:
        return answers[number].strip().lower().startswith("yes")

    return ErrorAnalysis(
        causes=answers[1], fix=answers[2],
        flaw_in_plan=yes(3), alternative_plan=yes(4),
        different_tool=yes(5), update_arguments=yes(6))


_RELEVANT_RE = re.compile(r"Relevant Columns:\s*(?P<list>\[.*?\])", re.DOTALL)


def parse_relevant_columns(text: str) -> list[tuple[str, str]]:
    """Parse the discovery response into ``(table, column)`` pairs."""
    match = _RELEVANT_RE.search(text or "")
    if match is None:
        raise PlanParseError(
            f"discovery response has no 'Relevant Columns:' line: "
            f"{text[:200]!r}")
    pairs = []
    for item in _literal_list(match.group("list"), "Relevant Columns"):
        if "." not in item:
            raise PlanParseError(
                f"relevant column {item!r} is not table.column")
        table, column = item.split(".", 1)
        pairs.append((table.strip(), column.strip()))
    return pairs


# ----------------------------------------------------------------------
# Parsing of schema lines out of rendered prompts.
#
# The *simulated LLM* reads its own prompt with these helpers — the prompt
# text is the only channel between CAESURA and the model.
# ----------------------------------------------------------------------

_TABLE_LINE_RE = re.compile(
    r"-\s*(?P<name>[A-Za-z_][A-Za-z0-9_]*)\s*=\s*table\("
    r"num_rows=(?P<rows>\d+),\s*columns=\[(?P<columns>.*?)\]"
    r"(?:,\s*description='(?P<description>.*?)')?"
    r"(?:,\s*foreign_keys=\[(?P<fks>.*?)\])?\)")

_COLUMN_PAIR_RE = re.compile(r"'(?P<name>[^']+)':\s*'(?P<dtype>[^']+)'")
_FK_RE = re.compile(r"'(?P<left_table>\w+)\.(?P<left_col>\w+)\s*=\s*"
                    r"(?P<right_table>\w+)\.(?P<right_col>\w+)'")


@dataclass
class PromptTable:
    """A table schema as recovered from prompt text."""

    name: str
    num_rows: int
    columns: list[tuple[str, str]]          # (name, dtype string)
    description: str = ""
    foreign_keys: list[tuple[str, str, str]] = None  # (col, table, col)

    def __post_init__(self) -> None:
        if self.foreign_keys is None:
            self.foreign_keys = []

    def dtype_of(self, column: str) -> str | None:
        for name, dtype in self.columns:
            if name == column:
                return dtype
        return None

    @property
    def column_names(self) -> list[str]:
        return [name for name, _ in self.columns]


def parse_prompt_tables(prompt_text: str) -> dict[str, PromptTable]:
    """Recover the table schemas serialized in a prompt."""
    tables: dict[str, PromptTable] = {}
    for match in _TABLE_LINE_RE.finditer(prompt_text):
        columns = [(m.group("name"), m.group("dtype"))
                   for m in _COLUMN_PAIR_RE.finditer(match.group("columns"))]
        foreign_keys = []
        if match.group("fks"):
            for fk_match in _FK_RE.finditer(match.group("fks")):
                foreign_keys.append((fk_match.group("left_col"),
                                     fk_match.group("right_table"),
                                     fk_match.group("right_col")))
        tables[match.group("name")] = PromptTable(
            name=match.group("name"),
            num_rows=int(match.group("rows")),
            columns=columns,
            description=match.group("description") or "",
            foreign_keys=foreign_keys)
    return tables


_REQUEST_RE = re.compile(r"My request (?:is|was):\s*(?P<query>.*?)\s*"
                         r"(?=\n|$)")


def parse_request(prompt_text: str) -> str:
    """Recover the user query from a rendered prompt."""
    match = _REQUEST_RE.search(prompt_text)
    if match is None:
        raise PlanParseError("prompt contains no 'My request is:' line")
    return match.group("query").strip()

"""Atomic file writes for cache persistence.

Cache files are flushed at awkward moments — a SIGTERM drain, a
cache-server shutdown, several sessions pointed at one ``--plan-cache-
file`` — so a plain ``write_text`` risks a reader (or the next boot)
seeing a torn file.  :func:`atomic_write_text` closes that window: the
payload lands in a temp file in the destination directory and is moved
into place with :func:`os.replace`, which POSIX guarantees atomic within
a filesystem.  A concurrent reader sees either the old complete file or
the new complete file, never a prefix.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path


def atomic_write_text(path: str | Path, text: str) -> None:
    """Write *text* to *path* atomically (temp file + ``os.replace``).

    The temp file lives in *path*'s directory so the final rename never
    crosses a filesystem boundary.  On any failure the temp file is
    removed and *path* is left untouched.
    """
    target = Path(path)
    handle, temp_name = tempfile.mkstemp(
        dir=target.parent or Path("."), prefix=f".{target.name}.",
        suffix=".tmp")
    try:
        with os.fdopen(handle, "w", encoding="utf-8") as stream:
            stream.write(text)
        os.replace(temp_name, target)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise

"""Logical and physical plan representations.

A *logical plan* is a sequence of natural-language step descriptions with
declared inputs/outputs (the Planning Phase output, Figure 2).  A *physical
plan* binds each step to a concrete operator and its arguments (the Mapping
Phase output).  Because mapping is interleaved with execution, the physical
plan is materialized incrementally.

Every type in this module is a serializable IR node: ``to_dict()`` produces
a JSON-safe dict and ``from_dict()`` reconstructs an equal object, so plans,
traces, and results can cross process and disk boundaries (plan-cache
persistence, process workers, result archives).
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass, field

import networkx as nx

from repro.data.datatypes import decode_scalar, encode_scalar
from repro.data.table import Table
from repro.obs.trace import QueryTelemetry
from repro.plotting.spec import PlotSpec


def encode_params(params: dict) -> dict:
    """JSON-safe encoding of a step-params dict.

    Scalars go through :func:`~repro.data.datatypes.encode_scalar` (dates
    become tagged ``{"$date": iso}`` dicts), lists and dicts recurse — the
    same tagged-scalar serde the rest of the plan IR uses.
    """
    return {key: _encode_param(value) for key, value in params.items()}


def _encode_param(value: object) -> object:
    if isinstance(value, dict):
        return {key: _encode_param(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode_param(item) for item in value]
    return encode_scalar(value)


def decode_params(data: dict) -> dict:
    """Inverse of :func:`encode_params` (tagged dates become ``date``)."""
    return {key: _decode_param(value) for key, value in data.items()}


def _decode_param(value: object) -> object:
    if isinstance(value, dict):
        decoded = decode_scalar(value)
        if decoded is not value:          # a tagged scalar
            return decoded
        return {key: _decode_param(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_decode_param(item) for item in value]
    return value


@dataclass
class LogicalStep:
    """One step of the logical plan.

    *params* is an optional structured sidecar for steps whose semantics
    have machine-readable parts (join keys, aggregate measure lists, typed
    date-range bounds).  The natural-language *description* stays the
    canonical form the mapping phase binds operators from; params ride the
    IR so caches, process workers, and tooling can consume the step
    without re-parsing prose.  They round-trip through both
    ``to_dict``/``from_dict`` and the rendered plan text (a ``Params:``
    line, emitted only when non-empty, so pre-existing plans and cache
    files stay valid).
    """

    index: int                      # 1-based, as written in the plan text
    description: str
    inputs: list[str] = field(default_factory=list)
    output: str = ""
    new_columns: list[str] = field(default_factory=list)
    #: structured step parameters; JSON-safe after :func:`encode_params`
    #: (date scalars are tagged), empty for steps that need none.
    params: dict = field(default_factory=dict)

    def render(self) -> str:
        lines = [f"Step {self.index}: {self.description}"]
        lines.append(f"Input: {self.inputs!r}")
        lines.append(f"Output: {self.output}")
        lines.append(f"New Columns: {self.new_columns!r}")
        if self.params:
            lines.append("Params: " + json.dumps(encode_params(self.params),
                                                 sort_keys=True))
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {"index": self.index, "description": self.description,
                "inputs": list(self.inputs), "output": self.output,
                "new_columns": list(self.new_columns),
                "params": encode_params(self.params)}

    @classmethod
    def from_dict(cls, data: dict) -> "LogicalStep":
        return cls(index=data["index"], description=data["description"],
                   inputs=list(data.get("inputs", [])),
                   output=data.get("output", ""),
                   new_columns=list(data.get("new_columns", [])),
                   params=decode_params(data.get("params", {})))


@dataclass
class LogicalPlan:
    """The Planning Phase result: ordered steps plus the model's thought."""

    steps: list[LogicalStep] = field(default_factory=list)
    thought: str = ""

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self):
        return iter(self.steps)

    def render(self) -> str:
        parts = []
        if self.thought:
            parts.append(f"Thought: {self.thought}")
        parts.extend(step.render() for step in self.steps)
        parts.append(f"Step {len(self.steps) + 1}: Plan completed.")
        return "\n".join(parts)

    def to_dict(self) -> dict:
        return {"steps": [step.to_dict() for step in self.steps],
                "thought": self.thought}

    @classmethod
    def from_dict(cls, data: dict) -> "LogicalPlan":
        return cls(steps=[LogicalStep.from_dict(s)
                          for s in data.get("steps", [])],
                   thought=data.get("thought", ""))

    def dataflow_graph(self) -> "nx.DiGraph":
        """Table-level dataflow DAG (tables and steps as nodes)."""
        graph = nx.DiGraph()
        for step in self.steps:
            step_node = f"step:{step.index}"
            graph.add_node(step_node, kind="step",
                           description=step.description)
            for table in step.inputs:
                graph.add_node(table, kind="table")
                graph.add_edge(table, step_node)
            if step.output:
                graph.add_node(step.output, kind="table")
                graph.add_edge(step_node, step.output)
        return graph


@dataclass
class PhysicalStep:
    """A logical step bound to an operator with concrete arguments."""

    logical: LogicalStep
    operator: str
    arguments: list[str]
    reasoning: str = ""

    def render(self) -> str:
        return (f"Step {self.logical.index}: {self.logical.description}\n"
                f"Reasoning: {self.reasoning}\n"
                f"Operator: {self.operator}\n"
                f"Arguments: ({'; '.join(self.arguments)})")

    def to_dict(self) -> dict:
        return {"logical": self.logical.to_dict(), "operator": self.operator,
                "arguments": list(self.arguments),
                "reasoning": self.reasoning}

    @classmethod
    def from_dict(cls, data: dict) -> "PhysicalStep":
        return cls(logical=LogicalStep.from_dict(data["logical"]),
                   operator=data["operator"],
                   arguments=list(data["arguments"]),
                   reasoning=data.get("reasoning", ""))


@dataclass
class Observation:
    """Feedback from executing one physical step (fed to the next prompt)."""

    step_index: int
    text: str

    def to_dict(self) -> dict:
        return {"step_index": self.step_index, "text": self.text}

    @classmethod
    def from_dict(cls, data: dict) -> "Observation":
        return cls(step_index=data["step_index"], text=data["text"])


#: Phases an :class:`ErrorEvent` can record.  The first three are the
#: engine's own loop phases; ``"worker"`` events are recorded by the
#: process execution backend (:mod:`repro.exec.process`) when a worker
#: process crashes, its pool breaks, or a query times out — ``recovered``
#: then means the query was successfully re-run in the parent process.
ERROR_PHASES = ("planning", "mapping", "execution", "worker")


@dataclass
class ErrorEvent:
    """One error encountered while answering a query (see ERROR_PHASES)."""

    phase: str          # one of ERROR_PHASES
    step_index: int | None
    message: str
    recovered: bool = False
    #: for ``phase="worker"`` events: the index of the process-backend
    #: lane the failure originated on (``None`` for engine-phase events).
    worker_id: int | None = None

    @classmethod
    def worker_failure(cls, message: str, recovered: bool = False,
                       worker_id: int | None = None) -> "ErrorEvent":
        """A worker-crash/timeout event (process backend trace entry)."""
        return cls(phase="worker", step_index=None, message=message,
                   recovered=recovered, worker_id=worker_id)

    def to_dict(self) -> dict:
        return {"phase": self.phase, "step_index": self.step_index,
                "message": self.message, "recovered": self.recovered,
                "worker_id": self.worker_id}

    @classmethod
    def from_dict(cls, data: dict) -> "ErrorEvent":
        return cls(phase=data["phase"], step_index=data.get("step_index"),
                   message=data["message"],
                   recovered=data.get("recovered", False),
                   worker_id=data.get("worker_id"))


@dataclass
class PlanTrace:
    """Everything that happened while answering one query."""

    query: str
    logical_plan: LogicalPlan | None = None
    physical_steps: list[PhysicalStep] = field(default_factory=list)
    observations: list[Observation] = field(default_factory=list)
    errors: list[ErrorEvent] = field(default_factory=list)
    replans: int = 0
    #: wall-clock seconds per phase ("discovery" / "planning" / "mapping" /
    #: "execution" / "total"), filled in by the engine.
    timings: dict[str, float] = field(default_factory=dict)
    #: per-query spans and counters (:mod:`repro.obs`): one span per
    #: stage and per executed operator, plus cache-locality counters —
    #: the canonical home of what used to be scattered ad-hoc fields.
    telemetry: QueryTelemetry = field(default_factory=QueryTelemetry)
    #: distributed trace id (32 hex digits) this query ran under — set by
    #: the engine from its :class:`~repro.obs.TraceContext`, carried
    #: across the process-lane wire so a worker's result joins the
    #: parent's trace.  ``None`` on pre-tracing payloads.
    trace_id: str | None = None

    @property
    def plan_cache_hit(self) -> bool:
        """Deprecated — use ``trace.telemetry.plan_cache_hit``."""
        warnings.warn(
            "PlanTrace.plan_cache_hit is deprecated; use "
            "trace.telemetry.plan_cache_hit",
            DeprecationWarning, stacklevel=2)
        return self.telemetry.plan_cache_hit

    @plan_cache_hit.setter
    def plan_cache_hit(self, hit: bool) -> None:
        warnings.warn(
            "PlanTrace.plan_cache_hit is deprecated; use "
            "trace.telemetry.mark_plan_cache(hit)",
            DeprecationWarning, stacklevel=2)
        self.telemetry.counters["plan_from_cache"] = 1 if hit else 0

    @property
    def crashed(self) -> bool:
        return any(not e.recovered for e in self.errors)

    def operators_used(self) -> list[str]:
        return [step.operator for step in self.physical_steps]

    def to_dict(self) -> dict:
        return {
            "query": self.query,
            "logical_plan": (self.logical_plan.to_dict()
                             if self.logical_plan is not None else None),
            "physical_steps": [s.to_dict() for s in self.physical_steps],
            "observations": [o.to_dict() for o in self.observations],
            "errors": [e.to_dict() for e in self.errors],
            "replans": self.replans,
            "timings": dict(self.timings),
            # kept for pre-telemetry consumers of the trace payload; the
            # canonical encoding is telemetry.counters["plan_from_cache"].
            "plan_cache_hit": self.telemetry.plan_cache_hit,
            "telemetry": self.telemetry.to_dict(),
            "trace_id": self.trace_id,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PlanTrace":
        plan = data.get("logical_plan")
        telemetry_data = data.get("telemetry")
        if telemetry_data is not None:
            telemetry = QueryTelemetry.from_dict(telemetry_data)
        else:
            # Pre-telemetry payload (old cache/result files): rebuild the
            # counters the old scalar field encoded.
            telemetry = QueryTelemetry()
            if data.get("plan_cache_hit", False):
                telemetry.counters["plan_from_cache"] = 1
        return cls(
            query=data["query"],
            logical_plan=(LogicalPlan.from_dict(plan)
                          if plan is not None else None),
            physical_steps=[PhysicalStep.from_dict(s)
                            for s in data.get("physical_steps", [])],
            observations=[Observation.from_dict(o)
                          for o in data.get("observations", [])],
            errors=[ErrorEvent.from_dict(e) for e in data.get("errors", [])],
            replans=data.get("replans", 0),
            timings=dict(data.get("timings", {})),
            telemetry=telemetry,
            trace_id=data.get("trace_id"))


@dataclass
class QueryResult:
    """The final answer CAESURA returns for a query."""

    kind: str                      # "value" | "table" | "plot" | "error"
    value: object = None
    table: Table | None = None
    plot: PlotSpec | None = None
    trace: PlanTrace | None = None
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.kind != "error"

    @property
    def telemetry(self) -> QueryTelemetry:
        """Spans, counters, and cost of answering this query.

        The one accessor for what used to be scattered across
        ``trace.timings`` and ad-hoc flags; an empty container when the
        result carries no trace (e.g. a synthetic error result).
        """
        if self.trace is None:
            return QueryTelemetry()
        return self.trace.telemetry

    def describe(self) -> str:
        if self.kind == "value":
            return f"value: {self.value!r}"
        if self.kind == "table" and self.table is not None:
            return f"table with {self.table.num_rows} rows"
        if self.kind == "plot" and self.plot is not None:
            return (f"{self.plot.kind} plot of {self.plot.y_label} over "
                    f"{self.plot.x_label}")
        return f"error: {self.error}"

    def to_dict(self) -> dict:
        """Lossless JSON-safe encoding of the full result (incl. trace)."""
        return {
            "kind": self.kind,
            "value": encode_scalar(self.value),
            "table": self.table.to_dict() if self.table is not None else None,
            "plot": self.plot.to_dict() if self.plot is not None else None,
            "trace": self.trace.to_dict() if self.trace is not None else None,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "QueryResult":
        table = data.get("table")
        plot = data.get("plot")
        trace = data.get("trace")
        return cls(
            kind=data["kind"],
            value=decode_scalar(data.get("value")),
            table=Table.from_dict(table) if table is not None else None,
            plot=PlotSpec.from_dict(plot) if plot is not None else None,
            trace=PlanTrace.from_dict(trace) if trace is not None else None,
            error=data.get("error", ""))

"""Logical and physical plan representations.

A *logical plan* is a sequence of natural-language step descriptions with
declared inputs/outputs (the Planning Phase output, Figure 2).  A *physical
plan* binds each step to a concrete operator and its arguments (the Mapping
Phase output).  Because mapping is interleaved with execution, the physical
plan is materialized incrementally.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.data.table import Table
from repro.plotting.spec import PlotSpec


@dataclass
class LogicalStep:
    """One step of the logical plan."""

    index: int                      # 1-based, as written in the plan text
    description: str
    inputs: list[str] = field(default_factory=list)
    output: str = ""
    new_columns: list[str] = field(default_factory=list)

    def render(self) -> str:
        lines = [f"Step {self.index}: {self.description}"]
        lines.append(f"Input: {self.inputs!r}")
        lines.append(f"Output: {self.output}")
        lines.append(f"New Columns: {self.new_columns!r}")
        return "\n".join(lines)


@dataclass
class LogicalPlan:
    """The Planning Phase result: ordered steps plus the model's thought."""

    steps: list[LogicalStep] = field(default_factory=list)
    thought: str = ""

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self):
        return iter(self.steps)

    def render(self) -> str:
        parts = []
        if self.thought:
            parts.append(f"Thought: {self.thought}")
        parts.extend(step.render() for step in self.steps)
        parts.append(f"Step {len(self.steps) + 1}: Plan completed.")
        return "\n".join(parts)

    def dataflow_graph(self) -> "nx.DiGraph":
        """Table-level dataflow DAG (tables and steps as nodes)."""
        graph = nx.DiGraph()
        for step in self.steps:
            step_node = f"step:{step.index}"
            graph.add_node(step_node, kind="step",
                           description=step.description)
            for table in step.inputs:
                graph.add_node(table, kind="table")
                graph.add_edge(table, step_node)
            if step.output:
                graph.add_node(step.output, kind="table")
                graph.add_edge(step_node, step.output)
        return graph


@dataclass
class PhysicalStep:
    """A logical step bound to an operator with concrete arguments."""

    logical: LogicalStep
    operator: str
    arguments: list[str]
    reasoning: str = ""

    def render(self) -> str:
        return (f"Step {self.logical.index}: {self.logical.description}\n"
                f"Reasoning: {self.reasoning}\n"
                f"Operator: {self.operator}\n"
                f"Arguments: ({'; '.join(self.arguments)})")


@dataclass
class Observation:
    """Feedback from executing one physical step (fed to the next prompt)."""

    step_index: int
    text: str


@dataclass
class ErrorEvent:
    """One error encountered during planning/mapping/execution."""

    phase: str          # "planning" | "mapping" | "execution"
    step_index: int | None
    message: str
    recovered: bool = False


@dataclass
class PlanTrace:
    """Everything that happened while answering one query."""

    query: str
    logical_plan: LogicalPlan | None = None
    physical_steps: list[PhysicalStep] = field(default_factory=list)
    observations: list[Observation] = field(default_factory=list)
    errors: list[ErrorEvent] = field(default_factory=list)
    replans: int = 0
    #: wall-clock seconds per phase ("discovery" / "planning" / "mapping" /
    #: "execution" / "total"), filled in by the engine.
    timings: dict[str, float] = field(default_factory=dict)
    #: True when the logical plan was served from the engine's plan cache
    #: (batch runners aggregate this instead of diffing cache counters,
    #: which would race under concurrent execution).
    plan_cache_hit: bool = False

    @property
    def crashed(self) -> bool:
        return any(not e.recovered for e in self.errors)

    def operators_used(self) -> list[str]:
        return [step.operator for step in self.physical_steps]


@dataclass
class QueryResult:
    """The final answer CAESURA returns for a query."""

    kind: str                      # "value" | "table" | "plot" | "error"
    value: object = None
    table: Table | None = None
    plot: PlotSpec | None = None
    trace: PlanTrace | None = None
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.kind != "error"

    def describe(self) -> str:
        if self.kind == "value":
            return f"value: {self.value!r}"
        if self.kind == "table" and self.table is not None:
            return f"table with {self.table.num_rows} rows"
        if self.kind == "plot" and self.plot is not None:
            return (f"{self.plot.kind} plot of {self.plot.y_label} over "
                    f"{self.plot.x_label}")
        return f"error: {self.error}"

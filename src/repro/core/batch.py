"""Batch execution: many queries over one warmed data lake.

Throughput scenarios need three things the single-query engine does not give
us: amortization of the planning phase across repeated queries, amortization
of modality-model inference across repeated (object, question) pairs, and
aggregate statistics.  This module provides all three:

- :class:`PlanCache` — a thread-safe LRU cache of logical plans keyed on
  ``(query, lake fingerprint)``.  The fingerprint
  (:meth:`~repro.data.catalog.DataLake.fingerprint`) guarantees a cached
  plan is only reused against a structurally identical lake.  Because the
  plan IR is serializable, a cache can be persisted with :meth:`PlanCache.
  save` and rehydrated with :meth:`PlanCache.load`, so warm plans survive
  across runs (``--plan-cache-file`` in the CLI).
- :func:`execute_batch` — drains a workload through one or more
  :class:`~repro.core.engine.Engine` instances (serial loop for one engine,
  a worker-thread pool for several), all sharing the same two caches.
  Queries are independent (the sqlite bridge is per-call and lake tables
  are immutable by convention), so no cross-query coordination is needed.
  :meth:`repro.session.Session.batch` is the public entry point.

Batches produce a :class:`BatchReport` with per-stage wall-clock totals,
step counts, and cache hit-rates.  Two different clocks are reported:
``wall_seconds`` sums per-query totals (*serial-equivalent* seconds — what
one worker would have spent), while ``elapsed_seconds`` is the real
wall-clock of the whole batch; throughput is computed from the latter, so
it stays honest once queries run concurrently.

:class:`BatchRunner` and :class:`ParallelBatchRunner` are the pre-Session
entry points, kept as deprecated shims over the same internals.
"""

from __future__ import annotations

import json
import queue
import threading
import time
import warnings
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.core.answer_cache import AnswerCache
from repro.core.engine import Engine, EngineConfig
from repro.core.persist import atomic_write_text
from repro.core.plan import LogicalPlan, QueryResult
from repro.data.catalog import DataLake
from repro.llm.interface import LanguageModel
from repro.obs.trace import QueryTelemetry

_STAGES = ("discovery", "planning", "mapping", "execution")

DEFAULT_ANSWER_CACHE_SIZE = 65536

#: Format marker written into persisted plan-cache files.
PLAN_CACHE_FORMAT = "repro-plan-cache/v1"


class PlanCache:
    """A bounded LRU cache of logical plans.

    Thread safety: every operation — lookups, insertions, LRU bookkeeping,
    and the hit/miss/eviction counters — happens under one internal lock,
    so a single ``PlanCache`` may be shared by any number of concurrently
    running :class:`~repro.core.engine.Engine` instances (this is how
    :meth:`repro.session.Session.batch` shares one cache across its worker
    engines).  Cached plans themselves are never mutated by the engine, so
    handing the same ``LogicalPlan`` object to several threads is safe.
    """

    def __init__(self, capacity: int = 128):
        if capacity <= 0:
            raise ValueError(f"cache capacity must be positive, got "
                             f"{capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple[str, str], LogicalPlan] = \
            OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: tuple[str, str]) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: tuple[str, str]) -> LogicalPlan | None:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._hits += 1
                return self._entries[key]
            self._misses += 1
            return None

    def put(self, key: tuple[str, str], plan: LogicalPlan) -> None:
        with self._lock:
            self._entries[key] = plan
            self._entries.move_to_end(key)
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    @property
    def hits(self) -> int:
        return self._hits

    @property
    def misses(self) -> int:
        return self._misses

    @property
    def evictions(self) -> int:
        return self._evictions

    @property
    def hit_rate(self) -> float:
        with self._lock:
            lookups = self._hits + self._misses
            return self._hits / lookups if lookups else 0.0

    def snapshot(self) -> tuple[int, int, int]:
        """A consistent ``(hits, misses, evictions)`` triple."""
        with self._lock:
            return self._hits, self._misses, self._evictions

    def items(self) -> list[tuple[tuple[str, str], LogicalPlan]]:
        """A consistent snapshot of ``(key, plan)`` pairs in LRU order.

        Used by the process backend to ship warm plans to worker
        initializers; the plans themselves are never mutated, so sharing
        the objects is safe.
        """
        with self._lock:
            return list(self._entries.items())

    def drop_fingerprint(self, fingerprint: str) -> int:
        """Drop every plan cached for *fingerprint*; returns the count.

        This is the invalidation primitive of the shared cache tier
        (:mod:`repro.cachenet`): a lake whose structure changed gets its
        namespace — exactly the plans keyed on its fingerprint — dropped,
        leaving every other lake's plans warm.
        """
        with self._lock:
            doomed = [key for key in self._entries if key[1] == fingerprint]
            for key in doomed:
                del self._entries[key]
            return len(doomed)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, path: str | Path) -> int:
        """Persist every cached plan to *path* as JSON.

        Entries are written in LRU order (least-recent first), so a
        :meth:`load` restores both the plans and the eviction order.
        The write is atomic (temp file + ``os.replace``), so a save
        interrupted by SIGTERM — or racing another save to the same
        path — can never leave a torn file.  Returns the number of
        entries written.
        """
        with self._lock:
            entries = [
                {"query": query, "lake_fingerprint": fingerprint,
                 "plan": plan.to_dict()}
                for (query, fingerprint), plan in self._entries.items()
            ]
        payload = {"format": PLAN_CACHE_FORMAT, "capacity": self.capacity,
                   "entries": entries}
        atomic_write_text(path, json.dumps(payload, indent=2) + "\n")
        return len(entries)

    @classmethod
    def load(cls, path: str | Path, capacity: int | None = None) -> "PlanCache":
        """Rehydrate a cache persisted with :meth:`save`.

        *capacity* overrides the persisted capacity; counters start at
        zero (a loaded cache has served nothing yet).  Excess entries (a
        file saved from a larger cache) are dropped oldest-first.
        """
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        if payload.get("format") != PLAN_CACHE_FORMAT:
            raise ValueError(
                f"{path} is not a plan-cache file "
                f"(format={payload.get('format')!r})")
        cache = cls(capacity if capacity is not None
                    else payload.get("capacity", 128))
        entries = payload.get("entries", [])[-cache.capacity:]
        for entry in entries:
            key = (entry["query"], entry["lake_fingerprint"])
            cache._entries[key] = LogicalPlan.from_dict(entry["plan"])
        return cache


@dataclass
class QueryStats:
    """Per-query line of a batch report.

    Timing and cache locality live in the telemetry-derived fields
    ``plan_cache_hit`` / ``total_seconds`` plus the token/cost columns;
    the pre-telemetry spellings ``cache_hit`` and ``seconds`` survive as
    deprecated read-only properties.
    """

    query: str
    kind: str
    ok: bool
    plan_cache_hit: bool
    steps: int
    total_seconds: float
    token_in: int = 0
    token_out: int = 0
    cost_usd: float = 0.0

    @property
    def cache_hit(self) -> bool:
        warnings.warn(
            "QueryStats.cache_hit is deprecated; use "
            "stat.plan_cache_hit", DeprecationWarning, stacklevel=2)
        return self.plan_cache_hit

    @property
    def seconds(self) -> float:
        warnings.warn(
            "QueryStats.seconds is deprecated; use "
            "stat.total_seconds", DeprecationWarning, stacklevel=2)
        return self.total_seconds

    def to_dict(self) -> dict:
        # Both spellings are written so pre-telemetry readers of archived
        # reports keep working; from_dict prefers the new keys.
        return {"query": self.query, "kind": self.kind, "ok": self.ok,
                "plan_cache_hit": self.plan_cache_hit,
                "cache_hit": self.plan_cache_hit,
                "steps": self.steps,
                "total_seconds": self.total_seconds,
                "seconds": self.total_seconds,
                "token_in": self.token_in, "token_out": self.token_out,
                "cost_usd": self.cost_usd}

    @classmethod
    def from_dict(cls, data: dict) -> "QueryStats":
        return cls(query=data["query"], kind=data["kind"], ok=data["ok"],
                   plan_cache_hit=data.get("plan_cache_hit",
                                           data.get("cache_hit", False)),
                   steps=data["steps"],
                   total_seconds=data.get("total_seconds",
                                          data.get("seconds", 0.0)),
                   token_in=data.get("token_in", 0),
                   token_out=data.get("token_out", 0),
                   cost_usd=data.get("cost_usd", 0.0))


@dataclass
class BatchReport:
    """Aggregate outcome of one batch run.

    ``wall_seconds`` is *serial-equivalent* time (the sum of per-query
    totals); ``elapsed_seconds`` is the real wall-clock of the batch.  With
    one worker the two coincide (up to scheduling overhead); with *N*
    workers their ratio is the realized speedup.
    """

    stats: list[QueryStats] = field(default_factory=list)
    results: list[QueryResult] = field(default_factory=list)
    timings: dict[str, float] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    answer_hits: int = 0
    answer_misses: int = 0
    answer_evictions: int = 0
    wall_seconds: float = 0.0
    elapsed_seconds: float = 0.0
    workers: int = 1
    #: name of the execution backend that produced this report
    #: (see :mod:`repro.exec`).
    backend: str = "serial"

    @property
    def num_queries(self) -> int:
        return len(self.stats)

    @property
    def num_ok(self) -> int:
        return sum(1 for stat in self.stats if stat.ok)

    @property
    def num_errors(self) -> int:
        return self.num_queries - self.num_ok

    @property
    def total_steps(self) -> int:
        return sum(stat.steps for stat in self.stats)

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def answer_hit_rate(self) -> float:
        lookups = self.answer_hits + self.answer_misses
        return self.answer_hits / lookups if lookups else 0.0

    @property
    def queries_per_second(self) -> float:
        elapsed = self.elapsed_seconds or self.wall_seconds
        return self.num_queries / elapsed if elapsed > 0 else 0.0

    @property
    def speedup(self) -> float:
        """Serial-equivalent over elapsed seconds (realized parallelism)."""
        return (self.wall_seconds / self.elapsed_seconds
                if self.elapsed_seconds > 0 else 0.0)

    @property
    def telemetry(self) -> QueryTelemetry:
        """Batch-wide telemetry: every result's spans and summed counters."""
        merged = QueryTelemetry()
        for result in self.results:
            merged = merged.merged(result.telemetry)
        return merged

    @property
    def worker_failures(self) -> list:
        """Every worker-lane :class:`~repro.core.plan.ErrorEvent` in the
        batch (process backend crashes/timeouts), in submission order."""
        return [event for result in self.results
                if result.trace is not None
                for event in result.trace.errors if event.phase == "worker"]

    def to_dict(self, include_results: bool = False) -> dict:
        """JSON-ready encoding.

        The default is the compact metrics record consumed by the
        benchmark harness (rounded floats, no per-query payloads).  With
        ``include_results=True`` the record additionally carries exact
        clocks, per-query stats, and full :class:`~repro.core.plan.
        QueryResult` payloads, making :meth:`from_dict` a lossless
        inverse.
        """
        record = {
            "queries": self.num_queries,
            "ok": self.num_ok,
            "errors": self.num_errors,
            "workers": self.workers,
            "backend": self.backend,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "serial_seconds": round(self.wall_seconds, 6),
            "queries_per_second": round(self.queries_per_second, 3),
            "speedup": round(self.speedup, 3),
            "total_steps": self.total_steps,
            "stage_seconds": {stage: round(self.timings.get(stage, 0.0), 6)
                              for stage in _STAGES},
            "plan_cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "evictions": self.cache_evictions,
                "hit_rate": round(self.cache_hit_rate, 4),
            },
            "answer_cache": {
                "hits": self.answer_hits,
                "misses": self.answer_misses,
                "evictions": self.answer_evictions,
                "hit_rate": round(self.answer_hit_rate, 4),
            },
            "telemetry": self.telemetry.cost_summary(),
        }
        if include_results:
            record["exact"] = {
                "wall_seconds": self.wall_seconds,
                "elapsed_seconds": self.elapsed_seconds,
                "timings": dict(self.timings),
            }
            record["stats"] = [stat.to_dict() for stat in self.stats]
            record["results"] = [result.to_dict() for result in self.results]
        return record

    def canonical_results(self) -> list[dict]:
        """Result payloads normalized for cross-backend comparison.

        Serial, thread, and process backends must produce identical
        results for the same workload; the only legitimately divergent
        fields are wall-clock timings and cache locality (a thread race
        or a worker-local cache can turn a hit into a miss without
        changing the answer).  This returns each result's ``to_dict()``
        with timings blanked, the plan-cache flag cleared, and the
        telemetry payload normalized via :meth:`~repro.obs.QueryTelemetry.
        canonicalize`, so two reports agree iff ``json.dumps`` of their
        canonical results is byte-identical.
        """
        payloads = []
        for result in self.results:
            data = result.to_dict()
            trace = data.get("trace")
            if trace is not None:
                trace["timings"] = {}
                trace["plan_cache_hit"] = False
                trace["trace_id"] = None
                if "telemetry" in trace:
                    trace["telemetry"] = QueryTelemetry.canonicalize(
                        trace["telemetry"])
            payloads.append(data)
        return payloads

    @classmethod
    def from_dict(cls, data: dict) -> "BatchReport":
        """Inverse of ``to_dict(include_results=True)``."""
        if "exact" not in data:
            raise ValueError(
                "BatchReport.from_dict needs a record produced by "
                "to_dict(include_results=True); the compact metrics "
                "record is not lossless")
        exact = data["exact"]
        return cls(
            stats=[QueryStats.from_dict(s) for s in data.get("stats", [])],
            results=[QueryResult.from_dict(r)
                     for r in data.get("results", [])],
            timings=dict(exact.get("timings", {})),
            cache_hits=data["plan_cache"]["hits"],
            cache_misses=data["plan_cache"]["misses"],
            cache_evictions=data["plan_cache"]["evictions"],
            answer_hits=data["answer_cache"]["hits"],
            answer_misses=data["answer_cache"]["misses"],
            answer_evictions=data["answer_cache"]["evictions"],
            wall_seconds=exact["wall_seconds"],
            elapsed_seconds=exact["elapsed_seconds"],
            workers=data["workers"],
            backend=data.get("backend", "serial"))

    def render(self) -> str:
        """Plain-text report for the CLI."""
        economics = self.telemetry.cost_summary()
        lines = [
            f"batch: {self.num_queries} queries "
            f"({self.num_ok} ok, {self.num_errors} errors), "
            f"{self.total_steps} physical steps, {self.workers} worker(s), "
            f"{self.backend} backend",
            f"wall clock: {self.elapsed_seconds:.3f}s elapsed "
            f"({self.queries_per_second:.1f} queries/s), "
            f"{self.wall_seconds:.3f}s serial-equivalent "
            f"(speedup {self.speedup:.2f}x)",
            f"plan cache: {self.cache_hits} hits, {self.cache_misses} "
            f"misses, {self.cache_evictions} evictions "
            f"(hit rate {self.cache_hit_rate:.0%})",
            f"answer cache: {self.answer_hits} hits, {self.answer_misses} "
            f"misses, {self.answer_evictions} evictions "
            f"(hit rate {self.answer_hit_rate:.0%})",
            f"llm traffic: {economics['token_in']} tokens in, "
            f"{economics['token_out']} tokens out, "
            f"${economics['cost_usd']:.6f} estimated",
            "per-stage wall clock (serial-equivalent):",
        ]
        for stage in _STAGES:
            seconds = self.timings.get(stage, 0.0)
            share = (seconds / self.wall_seconds
                     if self.wall_seconds > 0 else 0.0)
            lines.append(f"  {stage:<10s} {seconds:8.3f}s  ({share:.0%})")
        failures = self.worker_failures
        if failures:
            lines.append("worker failures:")
            for event in failures:
                lane = ("?" if event.worker_id is None
                        else str(event.worker_id))
                state = ("recovered in parent" if event.recovered
                         else "unrecovered")
                lines.append(f"  [lane {lane}] {state}: {event.message}")
        lines.append("queries:")
        for stat in self.stats:
            marker = "ok " if stat.ok else "ERR"
            cached = "cached plan" if stat.plan_cache_hit else "fresh plan"
            lines.append(
                f"  [{marker}] {stat.kind:<5s} {stat.steps:2d} steps "
                f"{stat.total_seconds:7.3f}s  "
                f"{stat.token_in + stat.token_out:5d} tok  "
                f"{cached}  {stat.query}")
        return "\n".join(lines)


def _fold_result(report: BatchReport, query: str,
                 result: QueryResult) -> None:
    """Append one query outcome to *report* (stats, results, timings)."""
    trace = result.trace
    timings = trace.timings if trace is not None else {}
    for stage in _STAGES:
        report.timings[stage] = (report.timings.get(stage, 0.0)
                                 + timings.get(stage, 0.0))
    report.wall_seconds += timings.get("total", 0.0)
    telemetry = result.telemetry
    report.stats.append(QueryStats(
        query=query, kind=result.kind, ok=result.ok,
        plan_cache_hit=telemetry.plan_cache_hit,
        steps=len(trace.physical_steps) if trace else 0,
        total_seconds=timings.get("total", 0.0),
        token_in=telemetry.token_in, token_out=telemetry.token_out,
        cost_usd=telemetry.cost_usd))
    report.results.append(result)


def _fold_cache_deltas(report: BatchReport, plan_cache: PlanCache,
                       answer_cache: AnswerCache,
                       plan_before: tuple[int, int, int],
                       answer_before: tuple[int, int, int]) -> None:
    """Report cache activity of *this* run, not the runner's lifetime."""
    hits, misses, evictions = plan_cache.snapshot()
    report.cache_hits = hits - plan_before[0]
    report.cache_misses = misses - plan_before[1]
    report.cache_evictions = evictions - plan_before[2]
    hits, misses, evictions = answer_cache.snapshot()
    report.answer_hits = hits - answer_before[0]
    report.answer_misses = misses - answer_before[1]
    report.answer_evictions = evictions - answer_before[2]


def execute_batch(engines: Sequence[Engine],
                  queries: Sequence[str] | Iterable[str],
                  plan_cache: PlanCache,
                  answer_cache: AnswerCache) -> BatchReport:
    """Drain *queries* through *engines*, producing a :class:`BatchReport`.

    One engine runs the workload serially; several engines drain it through
    a worker-thread pool (one thread per engine — engines carry per-query
    mutable state such as the transcript, so an engine is never shared by
    two in-flight queries, while all engines share the two thread-safe
    caches).  Results and per-query stats are reported in submission order,
    so a parallel report is line-for-line comparable with a serial one.

    Cache accounting is the *delta* over this call, so warmth carried in
    by the caller (a previous batch over the same caches, or a cache
    rehydrated from disk) never inflates this run's numbers.
    """
    if not engines:
        raise ValueError("execute_batch needs at least one engine")
    workload = list(queries)
    report = BatchReport(workers=len(engines),
                         backend="serial" if len(engines) == 1 else "thread")
    plan_before = plan_cache.snapshot()
    answer_before = answer_cache.snapshot()

    started = time.perf_counter()
    if len(engines) == 1:
        results = [engines[0].query(query) for query in workload]
    else:
        idle: queue.SimpleQueue[Engine] = queue.SimpleQueue()
        for engine in engines:
            idle.put(engine)

        def answer(query: str) -> QueryResult:
            engine = idle.get()
            try:
                return engine.query(query)
            finally:
                idle.put(engine)

        with ThreadPoolExecutor(max_workers=len(engines)) as pool:
            results = list(pool.map(answer, workload))
    report.elapsed_seconds = time.perf_counter() - started

    for query, result in zip(workload, results):
        _fold_result(report, query, result)
    _fold_cache_deltas(report, plan_cache, answer_cache,
                       plan_before, answer_before)
    return report


class BatchRunner:
    """Deprecated pre-Session serial batch entry point.

    Construction emits one :class:`DeprecationWarning`; use
    :meth:`repro.session.Session.batch` instead.  The plan cache and
    answer cache live on the runner, so consecutive :meth:`run` calls
    share warmth; each :class:`BatchReport` still only accounts the cache
    activity of its own run.
    """

    def __init__(self, lake: DataLake, model: LanguageModel | None = None,
                 config: EngineConfig | None = None, cache_size: int = 128,
                 answer_cache_size: int = DEFAULT_ANSWER_CACHE_SIZE):
        warnings.warn(
            "BatchRunner is deprecated; use repro.session.Session "
            "(e.g. Session(lake).batch(queries))",
            DeprecationWarning, stacklevel=2)
        self.cache = PlanCache(cache_size)
        self.answer_cache = AnswerCache(answer_cache_size)
        self.engine = Engine(lake, model=model, config=config,
                             plan_cache=self.cache,
                             answer_cache=self.answer_cache)

    def run(self, queries: Sequence[str] | Iterable[str]) -> BatchReport:
        return execute_batch([self.engine], queries, self.cache,
                             self.answer_cache)


class ParallelBatchRunner:
    """Deprecated pre-Session parallel batch entry point.

    Construction emits one :class:`DeprecationWarning`; use
    :meth:`repro.session.Session.batch` with ``workers=N`` instead.

    When *model* is given, the single instance is shared by all workers and
    must be thread-safe (:class:`~repro.llm.brain.SimulatedBrain` is — it
    keeps no mutable state across calls).  When it is ``None``, each worker
    engine gets its own default brain.
    """

    def __init__(self, lake: DataLake, model: LanguageModel | None = None,
                 config: EngineConfig | None = None, cache_size: int = 128,
                 workers: int = 4,
                 answer_cache_size: int = DEFAULT_ANSWER_CACHE_SIZE):
        warnings.warn(
            "ParallelBatchRunner is deprecated; use repro.session.Session "
            "(e.g. Session(lake).batch(queries, workers=N))",
            DeprecationWarning, stacklevel=2)
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        self.workers = workers
        self.cache = PlanCache(cache_size)
        self.answer_cache = AnswerCache(answer_cache_size)
        self._engines = [
            Engine(lake, model=model, config=config,
                   plan_cache=self.cache, answer_cache=self.answer_cache)
            for _ in range(workers)
        ]

    def run(self, queries: Sequence[str] | Iterable[str]) -> BatchReport:
        return execute_batch(self._engines, queries, self.cache,
                             self.answer_cache)

"""Batch execution: many queries over one warmed data lake.

Throughput scenarios need two things the single-query engine does not give
us: amortization of the planning phase across repeated queries, and
aggregate statistics.  This module provides both:

- :class:`PlanCache` — an LRU cache of logical plans keyed on
  ``(query, lake fingerprint)``.  The fingerprint
  (:meth:`~repro.data.catalog.DataLake.fingerprint`) guarantees a cached
  plan is only reused against a structurally identical lake.
- :class:`BatchRunner` — runs a sequence of queries through one
  :class:`~repro.core.engine.QueryEngine` sharing one cache, and produces a
  :class:`BatchReport` with per-stage wall-clock totals, step counts, and
  the cache hit-rate.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.engine import EngineConfig, QueryEngine
from repro.core.plan import LogicalPlan, QueryResult
from repro.data.catalog import DataLake
from repro.llm.interface import LanguageModel

_STAGES = ("discovery", "planning", "mapping", "execution")


class PlanCache:
    """A bounded LRU cache of logical plans."""

    def __init__(self, capacity: int = 128):
        if capacity <= 0:
            raise ValueError(f"cache capacity must be positive, got "
                             f"{capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[tuple[str, str], LogicalPlan] = \
            OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple[str, str]) -> bool:
        return key in self._entries

    def get(self, key: tuple[str, str]) -> LogicalPlan | None:
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            return self._entries[key]
        self.misses += 1
        return None

    def put(self, key: tuple[str, str], plan: LogicalPlan) -> None:
        self._entries[key] = plan
        self._entries.move_to_end(key)
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


@dataclass
class QueryStats:
    """Per-query line of a batch report."""

    query: str
    kind: str
    ok: bool
    cache_hit: bool
    steps: int
    seconds: float


@dataclass
class BatchReport:
    """Aggregate outcome of one batch run."""

    stats: list[QueryStats] = field(default_factory=list)
    results: list[QueryResult] = field(default_factory=list)
    timings: dict[str, float] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    wall_seconds: float = 0.0

    @property
    def num_queries(self) -> int:
        return len(self.stats)

    @property
    def num_ok(self) -> int:
        return sum(1 for stat in self.stats if stat.ok)

    @property
    def num_errors(self) -> int:
        return self.num_queries - self.num_ok

    @property
    def total_steps(self) -> int:
        return sum(stat.steps for stat in self.stats)

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def queries_per_second(self) -> float:
        return (self.num_queries / self.wall_seconds
                if self.wall_seconds > 0 else 0.0)

    def render(self) -> str:
        """Plain-text report for the CLI."""
        lines = [
            f"batch: {self.num_queries} queries "
            f"({self.num_ok} ok, {self.num_errors} errors), "
            f"{self.total_steps} physical steps",
            f"wall clock: {self.wall_seconds:.3f}s "
            f"({self.queries_per_second:.1f} queries/s)",
            f"plan cache: {self.cache_hits} hits, {self.cache_misses} "
            f"misses, {self.cache_evictions} evictions "
            f"(hit rate {self.cache_hit_rate:.0%})",
            "per-stage wall clock:",
        ]
        for stage in _STAGES:
            seconds = self.timings.get(stage, 0.0)
            share = (seconds / self.wall_seconds
                     if self.wall_seconds > 0 else 0.0)
            lines.append(f"  {stage:<10s} {seconds:8.3f}s  ({share:.0%})")
        lines.append("queries:")
        for stat in self.stats:
            marker = "ok " if stat.ok else "ERR"
            cached = "cached plan" if stat.cache_hit else "fresh plan"
            lines.append(
                f"  [{marker}] {stat.kind:<5s} {stat.steps:2d} steps "
                f"{stat.seconds:7.3f}s  {cached}  {stat.query}")
        return "\n".join(lines)


class BatchRunner:
    """Executes query batches over one warmed lake with a shared plan cache."""

    def __init__(self, lake: DataLake, model: LanguageModel | None = None,
                 config: EngineConfig | None = None, cache_size: int = 128):
        self.cache = PlanCache(cache_size)
        self.engine = QueryEngine(lake, model=model, config=config,
                                  plan_cache=self.cache)

    def run(self, queries: Sequence[str] | Iterable[str]) -> BatchReport:
        report = BatchReport()
        for query in queries:
            hits_before = self.cache.hits
            result = self.engine.answer(query)
            trace = result.trace
            timings = trace.timings if trace is not None else {}
            for stage in _STAGES:
                report.timings[stage] = (report.timings.get(stage, 0.0)
                                         + timings.get(stage, 0.0))
            report.wall_seconds += timings.get("total", 0.0)
            report.stats.append(QueryStats(
                query=query, kind=result.kind, ok=result.ok,
                cache_hit=self.cache.hits > hits_before,
                steps=len(trace.physical_steps) if trace else 0,
                seconds=timings.get("total", 0.0)))
            report.results.append(result)
        report.cache_hits = self.cache.hits
        report.cache_misses = self.cache.misses
        report.cache_evictions = self.cache.evictions
        return report

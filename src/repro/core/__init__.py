"""Core machinery: plans, prompts, response parsing, engine, batch runner.

Submodules are imported explicitly (``repro.core.engine`` etc.) rather than
re-exported here, so that light-weight consumers of ``repro.core.plan`` do
not pay for the operator stack.
"""

"""Answer memoization for the modality models (VQA / TextQA / Image Select).

Execution dominates batch wall-clock (~80%), and almost all of it is spent
re-answering the same question about the same object: repeated queries, plan
retries, and overlapping workloads all hit the same ``(object, question)``
pairs.  :class:`AnswerCache` memoizes those answers across queries *and*
across worker threads.

Keys are ``(object fingerprint, question, answer type)``:

- the *object fingerprint* is a content digest of the image raster or text
  document (:meth:`repro.vision.image.Image.fingerprint`,
  :func:`text_fingerprint`), so a cached answer is only reused for
  byte-identical inputs — never for a path or table that happens to share a
  name;
- the *question* is the fully instantiated question string (templates are
  expanded per row before lookup);
- the *answer type* is the declared cast (``int``/``str``/…), so the same
  question asked with a different cast never aliases.

Because extractive QA legitimately answers ``None`` ("the text does not say"),
``None`` is a cacheable value; misses are reported with the :data:`MISS`
sentinel instead.

Thread safety: every operation (lookups, insertions, and the hit/miss/eviction
counters) is performed under one internal lock, so a single ``AnswerCache``
may be shared by any number of concurrently executing operators — this is how
:meth:`repro.session.Session.batch` shares one cache across its worker
engines.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from pathlib import Path

from repro.core.persist import atomic_write_text
from repro.data.datatypes import decode_scalar, encode_scalar

#: Sentinel returned by :meth:`AnswerCache.get` for absent keys (``None`` is
#: a legitimate cached answer).
MISS = object()

#: ``(object fingerprint, question, answer type)``
AnswerKey = tuple[str, str, str]

#: Format marker written into persisted answer-cache files.
ANSWER_CACHE_FORMAT = "repro-answer-cache/v1"


def text_fingerprint(document: str) -> str:
    """Stable content digest of a text document (TextQA cache keys)."""
    return hashlib.sha256(document.encode("utf-8")).hexdigest()[:24]


class AnswerCache:
    """A bounded, thread-safe LRU cache of modality-model answers.

    All methods are safe to call from multiple threads; see the module
    docstring for the key discipline.
    """

    #: re-exported for call sites that only import the class
    MISS = MISS

    def __init__(self, capacity: int = 65536):
        if capacity <= 0:
            raise ValueError(f"cache capacity must be positive, got "
                             f"{capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict[AnswerKey, object] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: AnswerKey) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: AnswerKey) -> object:
        """The cached answer for *key*, or :data:`MISS`."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._hits += 1
                return self._entries[key]
            self._misses += 1
            return MISS

    def put(self, key: AnswerKey, answer: object) -> None:
        with self._lock:
            self._entries[key] = answer
            self._entries.move_to_end(key)
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        with self._lock:
            self._entries.clear()

    @property
    def hits(self) -> int:
        return self._hits

    @property
    def misses(self) -> int:
        return self._misses

    @property
    def evictions(self) -> int:
        return self._evictions

    @property
    def hit_rate(self) -> float:
        with self._lock:
            lookups = self._hits + self._misses
            return self._hits / lookups if lookups else 0.0

    def snapshot(self) -> tuple[int, int, int]:
        """A consistent ``(hits, misses, evictions)`` triple."""
        with self._lock:
            return self._hits, self._misses, self._evictions

    def items(self) -> list[tuple[AnswerKey, object]]:
        """A consistent snapshot of ``(key, answer)`` pairs in LRU order.

        Used by the process backend to ship warm answers to worker
        initializers, mirroring ``PlanCache.items()``.
        """
        with self._lock:
            return list(self._entries.items())

    # ------------------------------------------------------------------
    # Persistence (mirrors PlanCache.save/load)
    # ------------------------------------------------------------------

    def save(self, path: str | Path) -> int:
        """Persist every cached answer to *path* as JSON.

        Entries are written in LRU order (least-recent first), so a
        :meth:`load` restores both the answers and the eviction order.
        Answers are encoded with :func:`~repro.data.datatypes.
        encode_scalar`, so dates and ``None`` ("the text does not say")
        survive the round trip.  The write is atomic (temp file +
        ``os.replace``), so a save interrupted by SIGTERM — or racing
        another save to the same path — can never leave a torn file.
        Returns the number of entries written.
        """
        with self._lock:
            entries = [
                {"fingerprint": fingerprint, "question": question,
                 "answer_type": answer_type, "answer": encode_scalar(answer)}
                for (fingerprint, question, answer_type), answer
                in self._entries.items()
            ]
        payload = {"format": ANSWER_CACHE_FORMAT, "capacity": self.capacity,
                   "entries": entries}
        atomic_write_text(path, json.dumps(payload, indent=2) + "\n")
        return len(entries)

    @classmethod
    def load(cls, path: str | Path,
             capacity: int | None = None) -> "AnswerCache":
        """Rehydrate a cache persisted with :meth:`save`.

        *capacity* overrides the persisted capacity; counters start at
        zero (a loaded cache has served nothing yet).  Excess entries (a
        file saved from a larger cache) are dropped oldest-first.
        """
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        if payload.get("format") != ANSWER_CACHE_FORMAT:
            raise ValueError(
                f"{path} is not an answer-cache file "
                f"(format={payload.get('format')!r})")
        cache = cls(capacity if capacity is not None
                    else payload.get("capacity", 65536))
        entries = payload.get("entries", [])[-cache.capacity:]
        for entry in entries:
            key = (entry["fingerprint"], entry["question"],
                   entry["answer_type"])
            cache._entries[key] = decode_scalar(entry["answer"])
        return cache

"""AST-validated sandbox for generated Python UDFs.

The Python operator executes model-generated code over the data, which the
paper flags as a security concern (Section 5).  Before execution, the code
is parsed and every AST node checked against a whitelist: no imports, no
attribute access on dunders, no calls to anything outside a small builtin
allowlist, no global state.  The compiled function is then executed with a
minimal globals dict.
"""

from __future__ import annotations

import ast
from typing import Callable

from repro.errors import SandboxViolationError

#: builtins a generated UDF may call.
ALLOWED_BUILTINS: dict[str, object] = {
    "abs": abs, "bool": bool, "float": float, "int": int, "len": len,
    "max": max, "min": min, "round": round, "str": str, "sum": sum,
    "sorted": sorted, "enumerate": enumerate, "range": range, "zip": zip,
    "any": any, "all": all, "ord": ord, "chr": chr,
}

_ALLOWED_NODES = (
    ast.Module, ast.FunctionDef, ast.arguments, ast.arg, ast.Return,
    ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Expr, ast.If, ast.For,
    ast.While, ast.Break, ast.Continue, ast.Pass,
    ast.BoolOp, ast.BinOp, ast.UnaryOp, ast.Compare, ast.Call,
    ast.IfExp, ast.Attribute, ast.Subscript, ast.Slice, ast.Index,
    ast.Name, ast.Load, ast.Store, ast.Constant,
    ast.List, ast.Tuple, ast.Dict, ast.Set,
    ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp,
    ast.comprehension, ast.keyword, ast.Starred,
    ast.And, ast.Or, ast.Not, ast.Invert, ast.USub, ast.UAdd,
    ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv, ast.Mod, ast.Pow,
    ast.Eq, ast.NotEq, ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.In, ast.NotIn,
    ast.Is, ast.IsNot, ast.Try, ast.ExceptHandler, ast.Raise,
    ast.JoinedStr, ast.FormattedValue,
)

#: attribute names a UDF may access (string/list methods it plausibly needs).
ALLOWED_ATTRIBUTES = frozenset({
    "split", "strip", "lstrip", "rstrip", "lower", "upper", "title",
    "replace", "startswith", "endswith", "find", "rfind", "count", "join",
    "zfill", "isdigit", "isalpha", "isalnum", "append", "extend", "index",
    "get", "items", "keys", "values", "format",
})


def validate_udf_source(source: str) -> ast.Module:
    """Parse *source* and verify it against the whitelist.

    The code must define exactly one top-level function.  Raises
    :class:`SandboxViolationError` on any forbidden construct.
    """
    try:
        # One interpreter-wide lock for every in-repo ast.parse: the AST
        # constructor's recursion accounting is not thread-safe on 3.11
        # (see repro.core.parsing.AST_LOCK).
        from repro.core.parsing import AST_LOCK
        with AST_LOCK:
            tree = ast.parse(source)
    except SyntaxError as exc:
        raise SandboxViolationError(f"UDF source does not parse: {exc}") from exc

    top_level = [node for node in tree.body]
    functions = [n for n in top_level if isinstance(n, ast.FunctionDef)]
    if len(functions) != 1 or len(top_level) != 1:
        raise SandboxViolationError(
            "UDF source must contain exactly one top-level function")

    for node in ast.walk(tree):
        if not isinstance(node, _ALLOWED_NODES):
            raise SandboxViolationError(
                f"forbidden construct: {type(node).__name__}")
        if isinstance(node, ast.Attribute):
            if node.attr.startswith("_"):
                raise SandboxViolationError(
                    f"forbidden attribute access: .{node.attr}")
            if node.attr not in ALLOWED_ATTRIBUTES:
                raise SandboxViolationError(
                    f"attribute .{node.attr} is not on the allowlist")
        if isinstance(node, ast.Name) and node.id.startswith("__"):
            raise SandboxViolationError(
                f"forbidden dunder name: {node.id}")
        if isinstance(node, ast.FunctionDef) and node.decorator_list:
            raise SandboxViolationError("decorators are not allowed")
    return tree


def compile_udf(source: str) -> Callable[..., object]:
    """Validate and compile *source*; return the defined function."""
    tree = validate_udf_source(source)
    function_name = tree.body[0].name  # type: ignore[union-attr]
    namespace: dict[str, object] = {}
    safe_globals = {"__builtins__": dict(ALLOWED_BUILTINS)}
    exec(compile(tree, "<udf>", "exec"), safe_globals, namespace)  # noqa: S102
    function = namespace[function_name]
    if not callable(function):
        raise SandboxViolationError("UDF did not define a callable")
    return function

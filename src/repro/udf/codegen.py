"""Description → Python code generation for the Python operator.

In the paper, "the Python operator takes a description as input, which is
translated to code using GPT-4" (Figure 4).  Offline, the code generator is
a recipe library: the natural-language description is matched against known
transformation intents (extract the century/year/decade from a date, string
manipulations, simple arithmetic) and real Python *source code* is emitted,
then validated and compiled by the sandbox (:mod:`repro.udf.sandbox`) before
running over the data.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import CodeGenerationError
from repro.udf.sandbox import compile_udf


@dataclass(frozen=True)
class GeneratedUDF:
    """The outcome of code generation: source plus compiled callable."""

    description: str
    source: str

    def compile(self):
        return compile_udf(self.source)


_RECIPES: list[tuple[re.Pattern[str], str]] = [
    (re.compile(r"\bcentur", re.IGNORECASE), '''\
def transform(value):
    """Extract the century from a date string like '1889-01-15'."""
    year = int(str(value).strip()[:4])
    return (year - 1) // 100 + 1
'''),
    (re.compile(r"\bdecade", re.IGNORECASE), '''\
def transform(value):
    """Extract the decade from a date string like '1889-01-15'."""
    year = int(str(value).strip()[:4])
    return year // 10 * 10
'''),
    (re.compile(r"\byear", re.IGNORECASE), '''\
def transform(value):
    """Extract the year from a date string like '1889-01-15'."""
    return int(str(value).strip()[:4])
'''),
    (re.compile(r"\b(upper ?case|capital letters)", re.IGNORECASE), '''\
def transform(value):
    """Convert to uppercase."""
    return str(value).upper()
'''),
    (re.compile(r"\b(lower ?case)", re.IGNORECASE), '''\
def transform(value):
    """Convert to lowercase."""
    return str(value).lower()
'''),
    (re.compile(r"\b(length|number of characters)", re.IGNORECASE), '''\
def transform(value):
    """Length of the string representation."""
    return len(str(value))
'''),
    (re.compile(r"\bfirst word\b", re.IGNORECASE), '''\
def transform(value):
    """First whitespace-separated word."""
    parts = str(value).split()
    return parts[0] if parts else ""
'''),
    (re.compile(r"\blast word\b", re.IGNORECASE), '''\
def transform(value):
    """Last whitespace-separated word."""
    parts = str(value).split()
    return parts[-1] if parts else ""
'''),
    (re.compile(r"(extract|first|the) number\b", re.IGNORECASE), '''\
def transform(value):
    """First integer appearing in the string, or None."""
    digits = ""
    for ch in str(value):
        if ch.isdigit():
            digits = digits + ch
        elif digits:
            break
    return int(digits) if digits else None
'''),
]

_DIVIDE_RE = re.compile(r"divid\w*\s+(?:\w+\s+)*?by\s+(-?\d+(?:\.\d+)?)",
                        re.IGNORECASE)
_MULTIPLY_RE = re.compile(r"multipl\w*\s+(?:\w+\s+)*?by\s+(-?\d+(?:\.\d+)?)",
                          re.IGNORECASE)
_ADD_RE = re.compile(r"\badd(?:ing)?\s+(-?\d+(?:\.\d+)?)\b", re.IGNORECASE)


def generate_udf(description: str) -> GeneratedUDF:
    """Generate Python source implementing *description*.

    Raises :class:`CodeGenerationError` when no recipe matches — CAESURA's
    error handler will see this failure and can re-plan.
    """
    stripped = description.strip()
    if not stripped:
        raise CodeGenerationError("empty UDF description")

    match = _DIVIDE_RE.search(stripped)
    if match and "centur" not in stripped.lower():
        return GeneratedUDF(stripped, f'''\
def transform(value):
    """Divide the numeric value by {match.group(1)}."""
    return float(value) / {match.group(1)}
''')
    match = _MULTIPLY_RE.search(stripped)
    if match:
        return GeneratedUDF(stripped, f'''\
def transform(value):
    """Multiply the numeric value by {match.group(1)}."""
    return float(value) * {match.group(1)}
''')
    match = _ADD_RE.search(stripped)
    if match:
        return GeneratedUDF(stripped, f'''\
def transform(value):
    """Add {match.group(1)} to the numeric value."""
    return float(value) + {match.group(1)}
''')

    for pattern, source in _RECIPES:
        if pattern.search(stripped):
            return GeneratedUDF(stripped, source)
    raise CodeGenerationError(
        f"no code-generation recipe matches description {stripped!r}")

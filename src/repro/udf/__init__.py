"""Description→code generation and the AST-validated UDF sandbox."""

from repro.udf.codegen import GeneratedUDF, generate_udf
from repro.udf.sandbox import (ALLOWED_ATTRIBUTES, ALLOWED_BUILTINS,
                               compile_udf, validate_udf_source)

__all__ = [
    "ALLOWED_ATTRIBUTES",
    "ALLOWED_BUILTINS",
    "GeneratedUDF",
    "compile_udf",
    "generate_udf",
    "validate_udf_source",
]

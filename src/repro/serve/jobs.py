"""The background job queue behind the query service.

A :class:`JobManager` turns one long-lived
:class:`~repro.session.Session` into a concurrent query executor: submits
go through the :class:`~repro.serve.admission.AdmissionController` into a
FIFO queue, a fixed pool of worker threads drains it — each worker owning
one engine drawn from :meth:`Session.make_engine`, exactly the shape the
thread execution backend uses — and every job exposes its lifecycle as a
poll-able status plus an append-only event log (one entry per
:class:`~repro.obs.StageTrace` span as execution progresses, which the
``GET /queries/{id}/events`` endpoint streams as NDJSON).

Failure semantics mirror the process backend
(:mod:`repro.exec.process`): a per-job timeout abandons the stuck
engine (the worker replaces it and moves on) and resolves the job with a
``phase="worker"`` :class:`~repro.core.plan.ErrorEvent` in the polled
result, so a hung modality model can never wedge a worker lane.  An
unexpected engine crash resolves the job the same way; the worker always
survives.

Everything here is plain threads — no asyncio — so the manager is usable
(and tested) without an HTTP server in front of it; the async app layer
only ever touches thread-safe state.
"""

from __future__ import annotations

import itertools
import queue
import secrets
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import TYPE_CHECKING, Callable

from repro.core.plan import ErrorEvent, PlanTrace, QueryResult
from repro.obs import StageTrace, TraceContext, build_trace_record
from repro.serve.admission import AdmissionController, AdmissionError
from repro.serve.schemas import job_links

#: Where a job's query actually executes: ``thread`` runs it on an
#: in-process engine (one per worker thread), ``process`` runs it in a
#: dedicated single-process worker lane (the process backend's lanes) so
#: served queries break the GIL wall too.
LANE_BACKENDS = ("thread", "process")

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.session import Session

__all__ = ["Job", "JobManager", "AdmissionError"]

#: Job lifecycle states.  ``done`` covers success *and* error results
#: (the result's ``kind`` tells them apart); ``cancelled`` jobs never
#: reached a worker.
JOB_STATUSES = ("queued", "running", "done", "cancelled")

_STOP = object()


class Job:
    """One submitted query and everything that happened to it."""

    def __init__(self, job_id: str, query: str, client: str,
                 timeout_s: float | None,
                 context: TraceContext | None = None,
                 remote_parent: str | None = None):
        self.id = job_id
        self.query = query
        self.client = client
        self.timeout_s = timeout_s
        #: this job's :class:`~repro.obs.TraceContext` — minted fresh on
        #: submit, or derived (same trace id, new span id) from a
        #: client-supplied ``traceparent`` header.
        self.context = context or TraceContext.new()
        #: the client's own span id when the trace came in over HTTP,
        #: recorded in the exported trace so the caller's tracing system
        #: can stitch the trees together.
        self.remote_parent = remote_parent
        self.status = "queued"
        self.result: QueryResult | None = None
        self.worker_id: int | None = None
        self.submitted = time.perf_counter()
        self.queue_wait_s: float | None = None
        self.run_s: float | None = None
        self._lock = threading.Lock()
        self._events: list[dict] = []
        self._finished = threading.Event()
        self.emit({"event": "queued", "job_id": self.id,
                   "query": self.query,
                   "trace_id": self.context.trace_id})

    # ------------------------------------------------------------------
    # Event log (consumed by the streaming endpoint)
    # ------------------------------------------------------------------

    def emit(self, event: dict) -> None:
        with self._lock:
            if self._finished.is_set():
                # A span from an abandoned (timed-out) engine arriving
                # after resolution would confuse stream consumers.
                return
            self._events.append(event)

    def emit_span(self, span: StageTrace) -> None:
        self.emit({"event": "span", "span": span.to_dict()})

    def events_since(self, index: int) -> tuple[list[dict], bool]:
        """Events appended at or after *index*, plus the finished flag."""
        with self._lock:
            return self._events[index:], self._finished.is_set()

    # ------------------------------------------------------------------
    # Lifecycle transitions (job-manager internal)
    # ------------------------------------------------------------------

    def take_for_run(self, worker_id: int) -> bool:
        """Atomically move queued → running; False if already cancelled."""
        with self._lock:
            if self.status != "queued":
                return False
            self.status = "running"
            self.worker_id = worker_id
            self.queue_wait_s = time.perf_counter() - self.submitted
        self.emit({"event": "started", "worker_id": worker_id,
                   "queue_wait_ms": round(self.queue_wait_s * 1000, 3)})
        return True

    def finish(self, result: QueryResult) -> None:
        self.emit({"event": "done", "status": "done",
                   "kind": result.kind, "ok": result.ok})
        with self._lock:
            self.status = "done"
            self.result = result
            if self.queue_wait_s is not None:
                self.run_s = (time.perf_counter() - self.submitted
                              - self.queue_wait_s)
            self._finished.set()

    def cancel(self) -> bool:
        """Queued → cancelled; False if the job already left the queue."""
        with self._lock:
            if self.status != "queued":
                return False
            self.status = "cancelled"
        self.emit({"event": "done", "status": "cancelled"})
        with self._lock:
            self._finished.set()
        return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self._finished.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        return self._finished.wait(timeout)

    def to_dict(self) -> dict:
        """The ``GET /queries/{id}`` payload (result included once done)."""
        with self._lock:
            payload = {
                "id": self.id,
                "status": self.status,
                "query": self.query,
                "client": self.client,
                "trace_id": self.context.trace_id,
                "links": job_links(self.id,
                                   trace_id=self.context.trace_id),
            }
            if self.queue_wait_s is not None:
                payload["queue_wait_ms"] = round(self.queue_wait_s * 1000, 3)
            if self.run_s is not None:
                payload["run_ms"] = round(self.run_s * 1000, 3)
            if self.result is not None:
                payload["ok"] = self.result.ok
                payload["result"] = self.result.to_dict()
            return payload


class JobManager:
    """Bounded job queue + worker pool over one session."""

    def __init__(self, session: "Session", workers: int = 2,
                 queue_depth: int = 32, per_client_limit: int = 8,
                 default_timeout_s: float | None = 60.0,
                 retry_after_s: float = 1.0,
                 max_jobs_kept: int = 4096,
                 lane_backend: str = "thread",
                 trace_pipeline=None):
        if workers <= 0:
            raise ValueError(f"workers must be positive: {workers}")
        if lane_backend not in LANE_BACKENDS:
            raise ValueError(f"lane_backend must be one of "
                             f"{LANE_BACKENDS}, got {lane_backend!r}")
        if (lane_backend == "process"
                and getattr(session.lake, "spec", None) is None):
            raise ValueError(
                "lane_backend='process' needs a lake that knows its "
                "generation parameters (lake.spec is None); build the "
                "lake with repro.datasets.load_lake / LakeSpec.build, or "
                "serve with thread lanes")
        self.session = session
        self.workers = workers
        self.default_timeout_s = default_timeout_s
        self.lane_backend = lane_backend
        #: optional :class:`~repro.obs.TracePipeline`; every finished job
        #: is assembled into a trace record and fanned to its sinks.
        self.trace_pipeline = trace_pipeline
        self._lane_payload_cached: dict | None = None
        self.metrics = session.metrics_registry
        self.admission = AdmissionController(
            queue_depth=queue_depth, per_client_limit=per_client_limit,
            retry_after_s=retry_after_s, metrics=self.metrics)
        self._queue: queue.SimpleQueue = queue.SimpleQueue()
        self._jobs: dict[str, Job] = {}
        self._jobs_lock = threading.Lock()
        self._max_jobs_kept = max_jobs_kept
        self._counter = itertools.count(1)
        self._closed = False
        self._threads = [
            threading.Thread(target=self._worker, args=(index,),
                             name=f"repro-serve-worker-{index}", daemon=True)
            for index in range(workers)]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # Public surface (what the HTTP layer calls)
    # ------------------------------------------------------------------

    def submit(self, query: str, client: str,
               timeout_s: float | None = None,
               trace_context: TraceContext | None = None) -> Job:
        """Admit and enqueue one query; raises AdmissionError when full.

        The effective timeout is the requested one capped by the server
        default, so a client can tighten but never loosen the budget.

        *trace_context* is the caller's context from a ``traceparent``
        header: the job joins that trace (same trace id, its own fresh
        span id, the caller's span recorded as the remote parent);
        ``None`` mints a new trace.
        """
        self.admission.admit(client)
        effective = self.default_timeout_s
        if timeout_s is not None:
            effective = (min(timeout_s, effective)
                         if effective is not None else timeout_s)
        if trace_context is not None:
            context = trace_context.child()
            remote_parent = trace_context.span_id
        else:
            context = TraceContext.new()
            remote_parent = None
        job = Job(self._next_id(), query, client, effective,
                  context=context, remote_parent=remote_parent)
        with self._jobs_lock:
            self._jobs[job.id] = job
            self._evict_finished()
        self.metrics.increment("serve_jobs_submitted_total")
        self._queue.put(job)
        return job

    def get(self, job_id: str) -> Job | None:
        with self._jobs_lock:
            return self._jobs.get(job_id)

    def cancel(self, job_id: str) -> str:
        """Cancel a queued job; returns the outcome for status mapping.

        ``"cancelled"`` on success, ``"running"``/``"finished"`` when the
        job already left the queue (HTTP 409), ``"missing"`` for an
        unknown id (404).
        """
        job = self.get(job_id)
        if job is None:
            return "missing"
        if job.cancel():
            self.admission.release_queued(job.client)
            self.metrics.increment("serve_jobs_cancelled_total")
            return "cancelled"
        return "finished" if job.finished else "running"

    def drain(self, grace_s: float | None = None) -> bool:
        """Stop admitting, wait for in-flight jobs, stop the workers.

        Returns True when every accepted job resolved within *grace_s*
        (``None`` waits indefinitely).  Idempotent: later calls just
        re-wait.
        """
        self.admission.start_draining()
        deadline = (None if grace_s is None
                    else time.perf_counter() + grace_s)
        completed = True
        for job in self.jobs():
            remaining = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.perf_counter())
            if not job.wait(remaining):
                completed = False
        self.close()
        return completed

    def close(self) -> None:
        """Stop the worker threads (queued jobs are NOT waited for)."""
        if self._closed:
            return
        self._closed = True
        for _ in self._threads:
            self._queue.put(_STOP)
        for thread in self._threads:
            thread.join(timeout=5.0)

    def jobs(self) -> list[Job]:
        with self._jobs_lock:
            return list(self._jobs.values())

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _next_id(self) -> str:
        return f"q{next(self._counter):06d}-{secrets.token_hex(3)}"

    def _evict_finished(self) -> None:
        # Bound the job map: oldest finished jobs go first (an unfinished
        # job is never evicted, so accepted work is never dropped).
        while len(self._jobs) > self._max_jobs_kept:
            for job_id, job in self._jobs.items():
                if job.finished:
                    del self._jobs[job_id]
                    break
            else:
                return

    def _worker(self, index: int) -> None:
        if self.lane_backend == "process":
            self._process_worker(index)
        else:
            self._thread_worker(index)

    def _thread_worker(self, index: int) -> None:
        engine = self.session.make_engine()
        # A single-thread inner executor per worker enforces the per-job
        # timeout: on expiry the inner thread (and its engine) is
        # abandoned and both are replaced, mirroring the process
        # backend's lane-teardown semantics without killing the worker.
        inner = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"repro-serve-run-{index}")
        while True:
            item = self._queue.get()
            if item is _STOP:
                inner.shutdown(wait=False)
                return
            job: Job = item
            if not job.take_for_run(index):
                continue  # cancelled while queued; admission released
            self.admission.mark_started()
            self.metrics.observe("serve_queue_wait", job.queue_wait_s)
            engine.span_listener = job.emit_span
            engine.trace_context = job.context
            try:
                future = inner.submit(engine.query, job.query)
                result = future.result(timeout=job.timeout_s)
            except FutureTimeoutError:
                future.cancel()
                result = self._timeout_result(job, index)
                engine, inner = self._replace_engine(inner, index)
            except Exception as exc:  # noqa: BLE001 - worker must survive
                result = self._crash_result(job, index, exc)
                engine, inner = self._replace_engine(inner, index)
            else:
                engine.span_listener = None
                engine.trace_context = None
            self._finish(job, index, result)

    def _process_worker(self, index: int) -> None:
        """Worker loop of the ``process`` lane backend: each worker owns
        one single-process lane (:class:`repro.exec.process._Lane`) and
        runs every job through :func:`repro.exec.procworker.
        run_worker_query`, shipping the job's trace context across the
        pipe.  Timeout and crash semantics mirror the process backend:
        the lane is killed and lazily rebuilt, and an in-worker engine
        crash falls back to an in-parent engine so the job still
        resolves with a full trace.
        """
        from repro.exec.process import _Lane, default_start_method
        lane = _Lane(index, default_start_method())
        while True:
            item = self._queue.get()
            if item is _STOP:
                lane.close()
                return
            job: Job = item
            if not job.take_for_run(index):
                continue
            self.admission.mark_started()
            self.metrics.observe("serve_queue_wait", job.queue_wait_s)
            try:
                lane.ensure(self._lane_payload())
                future = lane.submit(job.query, job.context.to_dict())
                payload = future.result(timeout=job.timeout_s)
            except FutureTimeoutError:
                lane.kill()
                result = self._timeout_result(job, index)
            except Exception as exc:  # noqa: BLE001 - worker must survive
                lane.kill()
                result = self._crash_result(job, index, exc)
            else:
                result = self._fold_lane_payload(job, index, payload)
            # Spans crossed the pipe inside the result; replay them onto
            # the event stream so NDJSON consumers see the same shape as
            # thread lanes (post-hoc rather than live).
            for span in result.telemetry.spans:
                job.emit_span(span)
            self._finish(job, index, result)

    def _finish(self, job: Job, index: int, result: QueryResult) -> None:
        job.finish(result)
        self.admission.release_running(job.client)
        self.metrics.increment("serve_jobs_completed_total")
        duration_s = time.perf_counter() - job.submitted
        self.metrics.observe("serve_job_latency", duration_s)
        self._record_trace(job, index, result, duration_s)

    def _record_trace(self, job: Job, index: int, result: QueryResult,
                      duration_s: float) -> None:
        """Assemble and record the finished job's exportable trace."""
        pipeline = self.trace_pipeline
        if pipeline is None:
            return
        extra_spans = []
        if job.queue_wait_s is not None:
            extra_spans.append({
                "name": "queue.wait",
                "duration_ms": round(job.queue_wait_s * 1000.0, 3)})
        attributes = {"job_id": job.id, "client": job.client,
                      "worker_id": index, "kind": result.kind,
                      "lane_backend": self.lane_backend}
        try:
            pipeline.record(build_trace_record(
                job.context, job.query, result.telemetry,
                status="ok" if result.ok else "error",
                duration_ms=duration_s * 1000.0,
                root_name="serve.request",
                parent_span_id=job.remote_parent,
                attributes=attributes,
                extra_spans=extra_spans))
        except Exception:  # noqa: BLE001 - tracing must never fail a job
            self.metrics.increment("trace_record_errors_total")

    def _lane_payload(self) -> dict:
        """The (cached) process-lane init payload for this session."""
        if self._lane_payload_cached is None:
            from repro.exec.process import build_init_payload
            session = self.session
            self._lane_payload_cached = build_init_payload(
                session, session.lake.spec,
                session.lake.content_fingerprint(),
                session.lake.fingerprint())
        return self._lane_payload_cached

    def _fold_lane_payload(self, job: Job, index: int,
                           payload: dict) -> QueryResult:
        """Fold one lane reply into the session, mirroring
        :meth:`repro.exec.process.ProcessBackend._collect`: merge the
        metrics delta, import fresh plans/answers into the parent
        caches, and fall back to an in-parent engine when the worker's
        engine crashed.
        """
        from repro.core.plan import LogicalPlan
        from repro.data.datatypes import decode_scalar
        session = self.session
        session.metrics_registry.merge_delta(payload.get("metrics_delta"))
        if not payload.get("ok"):
            self.metrics.increment("serve_worker_failures_total")
            event = ErrorEvent.worker_failure(
                f"job {job.id} crashed its worker lane {index}: "
                f"{payload.get('error')}", worker_id=index)
            engine = session.make_engine()
            engine.trace_context = job.context
            try:
                result = engine.query(job.query)
            except Exception as exc:  # noqa: BLE001 - poisoned query
                return self._worker_error(
                    job, index,
                    f"job {job.id}: worker lane and in-parent fallback "
                    f"both failed: {exc}")
            event.recovered = True
            if result.trace is not None:
                result.trace.errors.insert(0, event)
            return result
        result = QueryResult.from_dict(payload["result"])
        fresh_plan = payload.get("fresh_plan")
        if fresh_plan is not None:
            session.plan_cache.put(
                (job.query, session.lake.fingerprint()),
                LogicalPlan.from_dict(fresh_plan))
        for fingerprint, question, answer_type, answer in payload.get(
                "fresh_answers", []):
            session.answer_cache.put(
                (fingerprint, question, answer_type),
                decode_scalar(answer))
        return result

    def _replace_engine(self, inner: ThreadPoolExecutor,
                        index: int) -> tuple:
        inner.shutdown(wait=False)
        return (self.session.make_engine(),
                ThreadPoolExecutor(
                    max_workers=1,
                    thread_name_prefix=f"repro-serve-run-{index}"))

    def _timeout_result(self, job: Job, index: int) -> QueryResult:
        self.metrics.increment("serve_job_timeouts_total")
        message = (f"job {job.id} timed out after {job.timeout_s:g}s; "
                   f"worker lane {index} replaced")
        return self._worker_error(job, index, message)

    def _crash_result(self, job: Job, index: int,
                      exc: Exception) -> QueryResult:
        self.metrics.increment("serve_worker_failures_total")
        message = (f"job {job.id} crashed its worker lane {index}: "
                   f"{type(exc).__name__}: {exc}")
        return self._worker_error(job, index, message)

    @staticmethod
    def _worker_error(job: Job, index: int, message: str) -> QueryResult:
        trace = PlanTrace(query=job.query, trace_id=job.context.trace_id)
        trace.errors.append(ErrorEvent.worker_failure(
            message, recovered=False, worker_id=index))
        return QueryResult(kind="error", error=message, trace=trace)


#: Type of the per-span hook :class:`JobManager` installs on its engines
#: (documented here so :mod:`repro.core.engine` can reference it).
SpanListener = Callable[[StageTrace], None]

"""The background job queue behind the query service.

A :class:`JobManager` turns one long-lived
:class:`~repro.session.Session` into a concurrent query executor: submits
go through the :class:`~repro.serve.admission.AdmissionController` into a
FIFO queue, a fixed pool of worker threads drains it — each worker owning
one engine drawn from :meth:`Session.make_engine`, exactly the shape the
thread execution backend uses — and every job exposes its lifecycle as a
poll-able status plus an append-only event log (one entry per
:class:`~repro.obs.StageTrace` span as execution progresses, which the
``GET /queries/{id}/events`` endpoint streams as NDJSON).

Failure semantics mirror the process backend
(:mod:`repro.exec.process`): a per-job timeout abandons the stuck
engine (the worker replaces it and moves on) and resolves the job with a
``phase="worker"`` :class:`~repro.core.plan.ErrorEvent` in the polled
result, so a hung modality model can never wedge a worker lane.  An
unexpected engine crash resolves the job the same way; the worker always
survives.

Everything here is plain threads — no asyncio — so the manager is usable
(and tested) without an HTTP server in front of it; the async app layer
only ever touches thread-safe state.
"""

from __future__ import annotations

import itertools
import queue
import secrets
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import TYPE_CHECKING, Callable

from repro.core.plan import ErrorEvent, PlanTrace, QueryResult
from repro.obs import StageTrace
from repro.serve.admission import AdmissionController, AdmissionError
from repro.serve.schemas import job_links

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.session import Session

__all__ = ["Job", "JobManager", "AdmissionError"]

#: Job lifecycle states.  ``done`` covers success *and* error results
#: (the result's ``kind`` tells them apart); ``cancelled`` jobs never
#: reached a worker.
JOB_STATUSES = ("queued", "running", "done", "cancelled")

_STOP = object()


class Job:
    """One submitted query and everything that happened to it."""

    def __init__(self, job_id: str, query: str, client: str,
                 timeout_s: float | None):
        self.id = job_id
        self.query = query
        self.client = client
        self.timeout_s = timeout_s
        self.status = "queued"
        self.result: QueryResult | None = None
        self.worker_id: int | None = None
        self.submitted = time.perf_counter()
        self.queue_wait_s: float | None = None
        self.run_s: float | None = None
        self._lock = threading.Lock()
        self._events: list[dict] = []
        self._finished = threading.Event()
        self.emit({"event": "queued", "job_id": self.id,
                   "query": self.query})

    # ------------------------------------------------------------------
    # Event log (consumed by the streaming endpoint)
    # ------------------------------------------------------------------

    def emit(self, event: dict) -> None:
        with self._lock:
            if self._finished.is_set():
                # A span from an abandoned (timed-out) engine arriving
                # after resolution would confuse stream consumers.
                return
            self._events.append(event)

    def emit_span(self, span: StageTrace) -> None:
        self.emit({"event": "span", "span": span.to_dict()})

    def events_since(self, index: int) -> tuple[list[dict], bool]:
        """Events appended at or after *index*, plus the finished flag."""
        with self._lock:
            return self._events[index:], self._finished.is_set()

    # ------------------------------------------------------------------
    # Lifecycle transitions (job-manager internal)
    # ------------------------------------------------------------------

    def take_for_run(self, worker_id: int) -> bool:
        """Atomically move queued → running; False if already cancelled."""
        with self._lock:
            if self.status != "queued":
                return False
            self.status = "running"
            self.worker_id = worker_id
            self.queue_wait_s = time.perf_counter() - self.submitted
        self.emit({"event": "started", "worker_id": worker_id,
                   "queue_wait_ms": round(self.queue_wait_s * 1000, 3)})
        return True

    def finish(self, result: QueryResult) -> None:
        self.emit({"event": "done", "status": "done",
                   "kind": result.kind, "ok": result.ok})
        with self._lock:
            self.status = "done"
            self.result = result
            if self.queue_wait_s is not None:
                self.run_s = (time.perf_counter() - self.submitted
                              - self.queue_wait_s)
            self._finished.set()

    def cancel(self) -> bool:
        """Queued → cancelled; False if the job already left the queue."""
        with self._lock:
            if self.status != "queued":
                return False
            self.status = "cancelled"
        self.emit({"event": "done", "status": "cancelled"})
        with self._lock:
            self._finished.set()
        return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self._finished.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        return self._finished.wait(timeout)

    def to_dict(self) -> dict:
        """The ``GET /queries/{id}`` payload (result included once done)."""
        with self._lock:
            payload = {
                "id": self.id,
                "status": self.status,
                "query": self.query,
                "client": self.client,
                "links": job_links(self.id),
            }
            if self.queue_wait_s is not None:
                payload["queue_wait_ms"] = round(self.queue_wait_s * 1000, 3)
            if self.run_s is not None:
                payload["run_ms"] = round(self.run_s * 1000, 3)
            if self.result is not None:
                payload["ok"] = self.result.ok
                payload["result"] = self.result.to_dict()
            return payload


class JobManager:
    """Bounded job queue + worker pool over one session."""

    def __init__(self, session: "Session", workers: int = 2,
                 queue_depth: int = 32, per_client_limit: int = 8,
                 default_timeout_s: float | None = 60.0,
                 retry_after_s: float = 1.0,
                 max_jobs_kept: int = 4096):
        if workers <= 0:
            raise ValueError(f"workers must be positive: {workers}")
        self.session = session
        self.workers = workers
        self.default_timeout_s = default_timeout_s
        self.metrics = session.metrics_registry
        self.admission = AdmissionController(
            queue_depth=queue_depth, per_client_limit=per_client_limit,
            retry_after_s=retry_after_s, metrics=self.metrics)
        self._queue: queue.SimpleQueue = queue.SimpleQueue()
        self._jobs: dict[str, Job] = {}
        self._jobs_lock = threading.Lock()
        self._max_jobs_kept = max_jobs_kept
        self._counter = itertools.count(1)
        self._closed = False
        self._threads = [
            threading.Thread(target=self._worker, args=(index,),
                             name=f"repro-serve-worker-{index}", daemon=True)
            for index in range(workers)]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # Public surface (what the HTTP layer calls)
    # ------------------------------------------------------------------

    def submit(self, query: str, client: str,
               timeout_s: float | None = None) -> Job:
        """Admit and enqueue one query; raises AdmissionError when full.

        The effective timeout is the requested one capped by the server
        default, so a client can tighten but never loosen the budget.
        """
        self.admission.admit(client)
        effective = self.default_timeout_s
        if timeout_s is not None:
            effective = (min(timeout_s, effective)
                         if effective is not None else timeout_s)
        job = Job(self._next_id(), query, client, effective)
        with self._jobs_lock:
            self._jobs[job.id] = job
            self._evict_finished()
        self.metrics.increment("serve_jobs_submitted_total")
        self._queue.put(job)
        return job

    def get(self, job_id: str) -> Job | None:
        with self._jobs_lock:
            return self._jobs.get(job_id)

    def cancel(self, job_id: str) -> str:
        """Cancel a queued job; returns the outcome for status mapping.

        ``"cancelled"`` on success, ``"running"``/``"finished"`` when the
        job already left the queue (HTTP 409), ``"missing"`` for an
        unknown id (404).
        """
        job = self.get(job_id)
        if job is None:
            return "missing"
        if job.cancel():
            self.admission.release_queued(job.client)
            self.metrics.increment("serve_jobs_cancelled_total")
            return "cancelled"
        return "finished" if job.finished else "running"

    def drain(self, grace_s: float | None = None) -> bool:
        """Stop admitting, wait for in-flight jobs, stop the workers.

        Returns True when every accepted job resolved within *grace_s*
        (``None`` waits indefinitely).  Idempotent: later calls just
        re-wait.
        """
        self.admission.start_draining()
        deadline = (None if grace_s is None
                    else time.perf_counter() + grace_s)
        completed = True
        for job in self.jobs():
            remaining = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.perf_counter())
            if not job.wait(remaining):
                completed = False
        self.close()
        return completed

    def close(self) -> None:
        """Stop the worker threads (queued jobs are NOT waited for)."""
        if self._closed:
            return
        self._closed = True
        for _ in self._threads:
            self._queue.put(_STOP)
        for thread in self._threads:
            thread.join(timeout=5.0)

    def jobs(self) -> list[Job]:
        with self._jobs_lock:
            return list(self._jobs.values())

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _next_id(self) -> str:
        return f"q{next(self._counter):06d}-{secrets.token_hex(3)}"

    def _evict_finished(self) -> None:
        # Bound the job map: oldest finished jobs go first (an unfinished
        # job is never evicted, so accepted work is never dropped).
        while len(self._jobs) > self._max_jobs_kept:
            for job_id, job in self._jobs.items():
                if job.finished:
                    del self._jobs[job_id]
                    break
            else:
                return

    def _worker(self, index: int) -> None:
        engine = self.session.make_engine()
        # A single-thread inner executor per worker enforces the per-job
        # timeout: on expiry the inner thread (and its engine) is
        # abandoned and both are replaced, mirroring the process
        # backend's lane-teardown semantics without killing the worker.
        inner = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"repro-serve-run-{index}")
        while True:
            item = self._queue.get()
            if item is _STOP:
                inner.shutdown(wait=False)
                return
            job: Job = item
            if not job.take_for_run(index):
                continue  # cancelled while queued; admission released
            self.admission.mark_started()
            self.metrics.observe("serve_queue_wait", job.queue_wait_s)
            engine.span_listener = job.emit_span
            try:
                future = inner.submit(engine.query, job.query)
                result = future.result(timeout=job.timeout_s)
            except FutureTimeoutError:
                future.cancel()
                result = self._timeout_result(job, index)
                engine, inner = self._replace_engine(inner, index)
            except Exception as exc:  # noqa: BLE001 - worker must survive
                result = self._crash_result(job, index, exc)
                engine, inner = self._replace_engine(inner, index)
            else:
                engine.span_listener = None
            job.finish(result)
            self.admission.release_running(job.client)
            self.metrics.increment("serve_jobs_completed_total")
            self.metrics.observe("serve_job_latency",
                                 time.perf_counter() - job.submitted)

    def _replace_engine(self, inner: ThreadPoolExecutor,
                        index: int) -> tuple:
        inner.shutdown(wait=False)
        return (self.session.make_engine(),
                ThreadPoolExecutor(
                    max_workers=1,
                    thread_name_prefix=f"repro-serve-run-{index}"))

    def _timeout_result(self, job: Job, index: int) -> QueryResult:
        self.metrics.increment("serve_job_timeouts_total")
        message = (f"job {job.id} timed out after {job.timeout_s:g}s; "
                   f"worker lane {index} replaced")
        return self._worker_error(job, index, message)

    def _crash_result(self, job: Job, index: int,
                      exc: Exception) -> QueryResult:
        self.metrics.increment("serve_worker_failures_total")
        message = (f"job {job.id} crashed its worker lane {index}: "
                   f"{type(exc).__name__}: {exc}")
        return self._worker_error(job, index, message)

    @staticmethod
    def _worker_error(job: Job, index: int, message: str) -> QueryResult:
        trace = PlanTrace(query=job.query)
        trace.errors.append(ErrorEvent.worker_failure(
            message, recovered=False, worker_id=index))
        return QueryResult(kind="error", error=message, trace=trace)


#: Type of the per-span hook :class:`JobManager` installs on its engines
#: (documented here so :mod:`repro.core.engine` can reference it).
SpanListener = Callable[[StageTrace], None]

"""The async HTTP layer of the query service (``repro serve``).

Stdlib-first on purpose: the server is a plain :func:`asyncio.start_server`
loop with a ~100-line HTTP/1.1 reader/writer instead of a web framework,
so the serving layer adds zero dependencies.  The handler layer is a thin
router over the thread-based :class:`~repro.serve.jobs.JobManager` — all
query execution happens on its worker threads; the event loop only
parses requests, polls thread-safe job state, and writes responses, so a
slow query can never stall another client's poll.

Endpoints::

    POST   /queries              submit → 202 {"id": ..., "status": "queued"}
    GET    /queries/{id}         poll; carries QueryResult.to_dict() once done
    DELETE /queries/{id}         cancel a still-queued job
    GET    /queries/{id}/events  NDJSON stream of lifecycle + span events
    GET    /healthz              liveness + queue occupancy
    GET    /metrics              session metrics snapshot (render_snapshot);
                                 ``?format=prometheus`` for text exposition
    GET    /traces               recent completed traces (``?min_duration_ms=``
                                 ``&status=``, ``&slow=1``, ``&limit=``)
    GET    /traces/{id}          one trace's full span tree

A ``POST /queries`` carrying a W3C-style ``traceparent`` header joins
the caller's distributed trace: the job runs under the same trace id
(with its own span ids) and the exported record links back to the
caller's span.  A malformed header is a 400, not a silently fresh
trace.

Admission control (queue depth, per-client concurrency keyed on the
API-token header) answers 429 with a ``Retry-After`` hint; a draining
server answers 503.  ``SIGTERM``/``SIGINT`` trigger a graceful drain:
stop admitting, let in-flight jobs finish (bounded by
``--drain-grace-s``), flush the plan/answer caches to their persistence
files, then exit.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import re
import signal
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING

from urllib.parse import parse_qs

from repro.obs import (SlowQueryLog, TraceBuffer, TraceContext,
                       TraceContextError, TraceExporter, TracePipeline,
                       render_prometheus, render_snapshot)
from repro.serve.admission import AdmissionError
from repro.serve.jobs import LANE_BACKENDS, JobManager
from repro.serve.schemas import error_body, parse_submit

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.session import Session

#: HTTP reason phrases for the statuses the service emits.
_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request",
            404: "Not Found", 405: "Method Not Allowed", 409: "Conflict",
            413: "Payload Too Large", 429: "Too Many Requests",
            500: "Internal Server Error", 503: "Service Unavailable"}

_JOB_PATH = re.compile(r"^/queries/(?P<id>[A-Za-z0-9_-]+)$")
_EVENTS_PATH = re.compile(r"^/queries/(?P<id>[A-Za-z0-9_-]+)/events$")
_TRACE_PATH = re.compile(r"^/traces/(?P<id>[0-9a-f]{1,32})$")

_MAX_BODY_BYTES = 1_000_000
_MAX_HEADER_LINES = 100

#: How often the event stream re-checks a job for fresh spans; spans
#: arrive from worker threads, so streaming latency is bounded by this.
EVENT_POLL_SECONDS = 0.02


@dataclass
class ServeConfig:
    """Tunables of one server instance (CLI flags map 1:1)."""

    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port (the bound port is on ``QueryServer.port``).
    port: int = 8080
    workers: int = 2
    queue_depth: int = 32
    per_client_limit: int = 8
    #: default + cap for per-job timeouts; ``None`` disables.
    job_timeout_s: float | None = 60.0
    retry_after_s: float = 1.0
    #: how long a drain waits for in-flight jobs before giving up.
    drain_grace_s: float | None = 30.0
    #: header carrying the client's API token (per-client limits key);
    #: absent header → the "anonymous" bucket.
    client_header: str = "x-api-token"
    #: cache persistence files flushed on graceful drain.
    plan_cache_file: str | None = None
    answer_cache_file: str | None = None
    #: shared cache tier the served session connects to
    #: (:mod:`repro.cachenet`); ``None`` = local caches only.
    cache_url: str | None = None
    #: JSONL spool every finished job's trace record is appended to;
    #: ``None`` keeps traces in memory only.
    trace_export_file: str | None = None
    #: capacity of the in-memory ring behind ``GET /traces``.
    trace_buffer: int = 256
    #: jobs at/above this wall-clock duration are flagged slow and land
    #: in the slow-query log; ``None`` disables the threshold.
    slow_query_ms: float | None = None
    #: where job queries execute: ``thread`` (in-process engines) or
    #: ``process`` (one worker-lane process per serve worker).
    lane_backend: str = "thread"


class _BadRequest(Exception):
    """Malformed HTTP from the client; connection is answered 400+closed."""


@dataclass
class _Request:
    method: str
    path: str
    headers: dict[str, str]
    body: bytes

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"


async def _read_request(reader: asyncio.StreamReader) -> _Request | None:
    """Parse one HTTP/1.1 request; None on a cleanly closed connection."""
    try:
        line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not line:
        return None
    parts = line.decode("latin-1").split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise _BadRequest("malformed request line")
    method, path = parts[0].upper(), parts[1]
    headers: dict[str, str] = {}
    for _ in range(_MAX_HEADER_LINES):
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise _BadRequest("malformed header line")
        headers[name.strip().lower()] = value.strip()
    else:
        raise _BadRequest("too many headers")
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise _BadRequest("malformed Content-Length") from None
        if length > _MAX_BODY_BYTES:
            raise _BadRequest("request body too large")
        body = await reader.readexactly(length) if length else b""
    return _Request(method=method, path=path, headers=headers, body=body)


def _encode_response(status: int, payload: dict,
                     extra_headers: tuple[tuple[str, str], ...] = (),
                     keep_alive: bool = True) -> bytes:
    body = (json.dumps(payload) + "\n").encode("utf-8")
    lines = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
             "Content-Type: application/json",
             f"Content-Length: {len(body)}",
             f"Connection: {'keep-alive' if keep_alive else 'close'}"]
    lines.extend(f"{name}: {value}" for name, value in extra_headers)
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


class QueryServer:
    """One long-lived session behind an asyncio HTTP front."""

    def __init__(self, session: "Session", config: ServeConfig | None = None):
        self.session = session
        self.config = config or ServeConfig()
        self.traces = TracePipeline(
            buffer=TraceBuffer(self.config.trace_buffer),
            exporter=(TraceExporter(self.config.trace_export_file)
                      if self.config.trace_export_file else None),
            slow_log=(SlowQueryLog(self.config.slow_query_ms)
                      if self.config.slow_query_ms is not None else None),
            metrics=session.metrics_registry)
        self.jobs = JobManager(
            session, workers=self.config.workers,
            queue_depth=self.config.queue_depth,
            per_client_limit=self.config.per_client_limit,
            default_timeout_s=self.config.job_timeout_s,
            retry_after_s=self.config.retry_after_s,
            lane_backend=self.config.lane_backend,
            trace_pipeline=self.traces)
        self._server: asyncio.AbstractServer | None = None
        self._stopped = asyncio.Event()
        self._drain_started = False
        self._drain_lock = threading.Lock()
        # The flush once-guard gets its own lock: _flush_caches runs on
        # executor threads while a racing drain_and_stop may be holding
        # _drain_lock across an await, and sharing one non-reentrant
        # lock between those two paths deadlocks the shutdown.
        self._flush_lock = threading.Lock()
        self._caches_flushed = False
        self._connections: set[asyncio.Task] = set()
        self.port: int | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting; ``self.port`` holds the bound port."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def wait_stopped(self) -> None:
        await self._stopped.wait()

    def install_signal_handlers(self, loop: asyncio.AbstractEventLoop) -> None:
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(
                signum,
                lambda: asyncio.ensure_future(self.drain_and_stop()))

    async def drain_and_stop(self) -> bool:
        """Graceful shutdown: drain jobs, flush caches, stop accepting.

        Returns True when every accepted job resolved within the grace
        period.  Idempotent — signals and explicit calls may race.
        """
        with self._drain_lock:
            already_draining = self._drain_started
            self._drain_started = True
        if already_draining:
            # Await outside the with-block: holding the lock here would
            # block the event loop for any later claimant and starve the
            # first drain of the loop it needs to finish.
            await self._stopped.wait()
            return True
        loop = asyncio.get_running_loop()
        completed = await loop.run_in_executor(
            None, self.jobs.drain, self.config.drain_grace_s)
        await loop.run_in_executor(None, self._flush_caches)
        self.session.close()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Idle keep-alive connections would outlive the loop otherwise.
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections,
                                 return_exceptions=True)
        self._stopped.set()
        return completed

    def _flush_caches(self) -> None:
        """Persist the session caches exactly once per server lifetime.

        Every shutdown path converges here — the signal handlers (both
        SIGTERM and SIGINT may fire), an explicit
        :meth:`ServerHandle.drain`, and their races — so the flush
        itself carries the once-guard rather than trusting every caller,
        and entry counts are logged at flush time so an operator can see
        from the drain log exactly what survived to disk.
        """
        with self._flush_lock:
            if self._caches_flushed:
                return
            self._caches_flushed = True
        if self.config.plan_cache_file:
            count = self.session.save_plan_cache(self.config.plan_cache_file)
            print(f"flushed {count} plan-cache entries -> "
                  f"{self.config.plan_cache_file}", flush=True)
        if self.config.answer_cache_file:
            count = self.session.save_answer_cache(
                self.config.answer_cache_file)
            print(f"flushed {count} answer-cache entries -> "
                  f"{self.config.answer_cache_file}", flush=True)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except (_BadRequest, asyncio.IncompleteReadError):
                    writer.write(_encode_response(
                        400, error_body("bad_request", "malformed HTTP"),
                        keep_alive=False))
                    await writer.drain()
                    break
                if request is None:
                    break
                keep_alive = await self._dispatch(request, writer)
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, request: _Request,
                        writer: asyncio.StreamWriter) -> bool:
        """Route one request; returns whether to keep the connection."""
        self.session.metrics_registry.increment("serve_requests_total")
        keep = request.keep_alive
        path, _, query_string = request.path.partition("?")
        method = request.method

        if path == "/healthz" and method == "GET":
            writer.write(_encode_response(200, self._healthz(), keep_alive=keep))
            return keep
        if path == "/metrics" and method == "GET":
            return self._respond_metrics(writer, keep, query_string)
        if path == "/queries" and method == "POST":
            return self._respond_submit(request, writer, keep)
        if path == "/traces" and method == "GET":
            return self._respond_traces(writer, keep, query_string)
        match = _TRACE_PATH.match(path)
        if match and method == "GET":
            return self._respond_trace(match.group("id"), writer, keep)
        match = _JOB_PATH.match(path)
        if match:
            if method == "GET":
                return self._respond_job(match.group("id"), writer, keep)
            if method == "DELETE":
                return self._respond_cancel(match.group("id"), writer, keep)
            writer.write(_encode_response(
                405, error_body("method_not_allowed", f"{method} {path}"),
                keep_alive=keep))
            return keep
        match = _EVENTS_PATH.match(path)
        if match and method == "GET":
            await self._stream_events(match.group("id"), writer)
            return False  # close-delimited stream
        writer.write(_encode_response(
            404, error_body("not_found", f"no route for {method} {path}"),
            keep_alive=keep))
        return keep

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------

    def _healthz(self) -> dict:
        occupancy = self.jobs.admission.occupancy()
        status = "draining" if occupancy["draining"] else "ok"
        return {"status": status, "workers": self.config.workers,
                "lake": self.session.lake.name, **occupancy}

    def _respond_metrics(self, writer: asyncio.StreamWriter, keep: bool,
                         query_string: str = "") -> bool:
        # observability_snapshot = session metrics + the cache tier's own
        # STATS (when connected), so tier hit ratios ride the same body.
        snapshot = self.session.observability_snapshot()
        wanted = parse_qs(query_string).get("format", ["json"])[-1]
        if wanted == "prometheus":
            body = render_prometheus(snapshot).encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        elif wanted == "json":
            body = render_snapshot(snapshot).encode("utf-8")
            content_type = "application/json"
        else:
            writer.write(_encode_response(
                400, error_body("bad_request",
                                f"unknown metrics format {wanted!r} "
                                f"(expected 'json' or 'prometheus')"),
                keep_alive=keep))
            return keep
        head = (f"HTTP/1.1 200 OK\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: {'keep-alive' if keep else 'close'}\r\n"
                f"\r\n").encode("latin-1")
        writer.write(head + body)
        return keep

    def _respond_traces(self, writer: asyncio.StreamWriter, keep: bool,
                        query_string: str = "") -> bool:
        params = parse_qs(query_string)
        try:
            limit = int(params.get("limit", ["50"])[-1])
            min_duration_ms = float(
                params.get("min_duration_ms", ["0"])[-1])
        except ValueError:
            writer.write(_encode_response(
                400, error_body("bad_request",
                                "'limit' and 'min_duration_ms' must be "
                                "numbers"), keep_alive=keep))
            return keep
        status = params.get("status", [None])[-1]
        slow_only = params.get("slow", ["0"])[-1] in ("1", "true", "yes")
        traces = self.traces.buffer.recent(
            limit=max(1, min(limit, 500)),
            min_duration_ms=min_duration_ms,
            status=status, slow_only=slow_only)
        writer.write(_encode_response(
            200, {"traces": traces, "count": len(traces)},
            keep_alive=keep))
        return keep

    def _respond_trace(self, trace_id: str, writer: asyncio.StreamWriter,
                       keep: bool) -> bool:
        record = self.traces.buffer.get(trace_id)
        if record is None:
            writer.write(_encode_response(
                404, error_body("not_found", f"no trace {trace_id!r} in "
                                f"the recent-trace buffer"),
                keep_alive=keep))
            return keep
        writer.write(_encode_response(200, record, keep_alive=keep))
        return keep

    def _client_of(self, request: _Request) -> str:
        return request.headers.get(self.config.client_header, "anonymous")

    def _respond_submit(self, request: _Request,
                        writer: asyncio.StreamWriter, keep: bool) -> bool:
        try:
            payload = json.loads(request.body.decode("utf-8") or "null")
            submit = parse_submit(payload)
        except (ValueError, UnicodeDecodeError) as exc:
            writer.write(_encode_response(
                400, error_body("bad_request", str(exc)), keep_alive=keep))
            return keep
        trace_context = None
        header = request.headers.get("traceparent")
        if header is not None:
            try:
                trace_context = TraceContext.parse_traceparent(header)
            except TraceContextError as exc:
                writer.write(_encode_response(
                    400, error_body("bad_traceparent", str(exc)),
                    keep_alive=keep))
                return keep
        try:
            job = self.jobs.submit(submit.query, self._client_of(request),
                                   timeout_s=submit.timeout_s,
                                   trace_context=trace_context)
        except AdmissionError as exc:
            headers = ()
            if exc.retry_after_s is not None:
                headers = (("Retry-After",
                            f"{max(1, round(exc.retry_after_s))}"),)
            writer.write(_encode_response(
                exc.status,
                error_body(exc.reason, exc.detail,
                           retry_after_s=exc.retry_after_s),
                extra_headers=headers, keep_alive=keep))
            return keep
        writer.write(_encode_response(202, job.to_dict(), keep_alive=keep))
        return keep

    def _respond_job(self, job_id: str, writer: asyncio.StreamWriter,
                     keep: bool) -> bool:
        job = self.jobs.get(job_id)
        if job is None:
            writer.write(_encode_response(
                404, error_body("not_found", f"no job {job_id!r}"),
                keep_alive=keep))
            return keep
        writer.write(_encode_response(200, job.to_dict(), keep_alive=keep))
        return keep

    def _respond_cancel(self, job_id: str, writer: asyncio.StreamWriter,
                        keep: bool) -> bool:
        outcome = self.jobs.cancel(job_id)
        if outcome == "missing":
            writer.write(_encode_response(
                404, error_body("not_found", f"no job {job_id!r}"),
                keep_alive=keep))
        elif outcome == "cancelled":
            writer.write(_encode_response(
                200, {"id": job_id, "status": "cancelled"}, keep_alive=keep))
        else:
            writer.write(_encode_response(
                409, error_body("not_cancellable",
                                f"job {job_id} is already {outcome}"),
                keep_alive=keep))
        return keep

    async def _stream_events(self, job_id: str,
                             writer: asyncio.StreamWriter) -> None:
        """NDJSON event stream; body is close-delimited (Connection: close).

        Replays the job's full event log from the start, then follows it
        until the terminal ``done`` event — so a client attaching late
        still sees every span.
        """
        job = self.jobs.get(job_id)
        if job is None:
            writer.write(_encode_response(
                404, error_body("not_found", f"no job {job_id!r}"),
                keep_alive=False))
            return
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: application/x-ndjson\r\n"
                     b"Cache-Control: no-store\r\n"
                     b"Connection: close\r\n\r\n")
        cursor = 0
        while True:
            events, finished = job.events_since(cursor)
            for event in events:
                writer.write((json.dumps(event) + "\n").encode("utf-8"))
            cursor += len(events)
            await writer.drain()
            if finished and not events:
                return
            if not finished:
                await asyncio.sleep(EVENT_POLL_SECONDS)


class ServerHandle:
    """A server running on a dedicated thread + event loop.

    The loop-in-a-thread shape lets synchronous callers (the load-test
    harness, the test suite) boot a real server, talk to it over real
    sockets, and drain it — without themselves being async.
    """

    def __init__(self, session: "Session", config: ServeConfig | None = None):
        self._session = session
        self._config = config or ServeConfig(port=0)
        self.server: QueryServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._thread = threading.Thread(target=self._run,
                                        name="repro-serve", daemon=True)

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self.server = QueryServer(self._session, self._config)
            self._loop.run_until_complete(self.server.start())
        except BaseException as exc:  # noqa: BLE001 - surface to starter
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        self._loop.run_until_complete(self.server.wait_stopped())
        self._loop.close()

    def start(self) -> "ServerHandle":
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._startup_error is not None:
            raise RuntimeError("server failed to start") \
                from self._startup_error
        if self.server is None or self.server.port is None:
            raise RuntimeError("server did not come up within 30s")
        return self

    @property
    def port(self) -> int:
        assert self.server is not None and self.server.port is not None
        return self.server.port

    @property
    def base_url(self) -> str:
        return f"http://{self._config.host}:{self.port}"

    def drain(self, timeout: float | None = None) -> bool:
        """Gracefully drain and stop from any thread; True if clean."""
        assert self._loop is not None and self.server is not None
        future = asyncio.run_coroutine_threadsafe(
            self.server.drain_and_stop(), self._loop)
        completed = future.result(timeout)
        self._thread.join(timeout=10)
        return completed


# ----------------------------------------------------------------------
# CLI (``repro serve``)
# ----------------------------------------------------------------------

def build_arg_parser() -> argparse.ArgumentParser:
    from repro.cliargs import positive_float, positive_int
    from repro.datasets import DATASET_NAMES
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve a long-lived query session over async HTTP "
                    "(submit/poll/stream, admission control, graceful "
                    "drain on SIGTERM).")
    parser.add_argument("--dataset", required=True, choices=DATASET_NAMES,
                        help="which synthetic dataset to load")
    parser.add_argument("--seed", type=int, default=None,
                        help="dataset generation seed")
    parser.add_argument("--scale", type=positive_float, default=1.0,
                        help="lake scale factor (default: 1.0)")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8080,
                        help="bind port; 0 picks an ephemeral port "
                             "(default: 8080)")
    parser.add_argument("--workers", type=positive_int, default=2,
                        help="query worker lanes (default: 2)")
    parser.add_argument("--queue-depth", type=positive_int, default=32,
                        help="max waiting jobs before submits get 429 "
                             "(default: 32)")
    parser.add_argument("--per-client-limit", type=positive_int, default=8,
                        help="max in-flight jobs per API token "
                             "(default: 8)")
    parser.add_argument("--job-timeout-s", type=positive_float, default=60.0,
                        help="per-job timeout ceiling in seconds "
                             "(default: 60)")
    parser.add_argument("--drain-grace-s", type=positive_float, default=30.0,
                        help="seconds a SIGTERM drain waits for in-flight "
                             "jobs (default: 30)")
    parser.add_argument("--llm-latency-ms", type=positive_float, default=None,
                        help="simulate remote-planner latency per model "
                             "call (default: the instant simulated brain)")
    parser.add_argument("--plan-cache-file", metavar="PATH", default=None,
                        help="plan-cache JSON loaded at boot (if present) "
                             "and flushed on graceful drain")
    parser.add_argument("--answer-cache-file", metavar="PATH", default=None,
                        help="answer-cache JSON loaded at boot (if "
                             "present) and flushed on graceful drain")
    parser.add_argument("--cache-url", metavar="URL", default=None,
                        help="shared cache tier to warm from and feed "
                             "(tcp://host:port or unix:///path.sock, see "
                             "'repro cache-server'); a down tier degrades "
                             "to local caches")
    parser.add_argument("--lane-backend", choices=LANE_BACKENDS,
                        default="thread",
                        help="where jobs execute: in-process engines "
                             "('thread', default) or dedicated worker-"
                             "lane processes ('process')")
    parser.add_argument("--trace-export-file", metavar="PATH", default=None,
                        help="JSONL spool appended with one trace record "
                             "per finished job (read by 'repro trace')")
    parser.add_argument("--trace-buffer", type=positive_int, default=256,
                        help="recent traces kept in memory for GET "
                             "/traces (default: 256)")
    parser.add_argument("--slow-query-ms", type=positive_float, default=None,
                        help="flag jobs at/above this duration as slow "
                             "(default: slow-query log disabled)")
    return parser


def build_session(args: argparse.Namespace) -> "Session":
    """A served session from CLI args (shared with the load tester)."""
    from pathlib import Path

    from repro.datasets import load_lake
    from repro.llm.brain import SimulatedBrain
    from repro.session import Session
    lake = load_lake(args.dataset, seed=args.seed, scale=args.scale)
    latency_ms = getattr(args, "llm_latency_ms", None)
    brain = (SimulatedBrain(latency_seconds=latency_ms / 1000.0)
             if latency_ms else None)
    session = Session(lake, brain=brain,
                      cache_url=getattr(args, "cache_url", None))
    plan_file = getattr(args, "plan_cache_file", None)
    if plan_file and Path(plan_file).exists():
        session.load_plan_cache(plan_file)
    answer_file = getattr(args, "answer_cache_file", None)
    if answer_file and Path(answer_file).exists():
        session.load_answer_cache(answer_file)
    return session


def main(argv: list[str] | None = None) -> int:
    args = build_arg_parser().parse_args(argv)
    config = ServeConfig(
        host=args.host, port=args.port, workers=args.workers,
        queue_depth=args.queue_depth,
        per_client_limit=args.per_client_limit,
        job_timeout_s=args.job_timeout_s,
        drain_grace_s=args.drain_grace_s,
        plan_cache_file=args.plan_cache_file,
        answer_cache_file=args.answer_cache_file,
        cache_url=args.cache_url,
        lane_backend=args.lane_backend,
        trace_export_file=args.trace_export_file,
        trace_buffer=args.trace_buffer,
        slow_query_ms=args.slow_query_ms)
    session = build_session(args)

    async def _serve() -> bool:
        server = QueryServer(session, config)
        await server.start()
        server.install_signal_handlers(asyncio.get_running_loop())
        print(f"serving {args.dataset} lake (scale {args.scale:g}) on "
              f"http://{config.host}:{server.port} "
              f"[workers={config.workers} queue_depth={config.queue_depth} "
              f"per_client={config.per_client_limit}]", flush=True)
        await server.wait_stopped()
        print("drained; all accepted jobs resolved, caches flushed",
              flush=True)
        return True

    asyncio.run(_serve())
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

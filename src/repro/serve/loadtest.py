"""Load-test harness for the query service (``repro loadtest``).

Hammers a running server — self-hosted on an ephemeral port by default,
or an external ``--url`` — with N concurrent clients over the dataset's
fixed benchmark workload (:mod:`repro.benchmarks.workloads`), and writes
a ``BENCH_serve.json`` record next to the throughput benches:

- a **cold** and a **warm** pass (same split as ``repro bench``: the
  warm pass runs on hot plan/answer caches — the steady state a
  long-lived service converges to), each recording end-to-end
  submit→done latency percentiles (p50/p90/p99), error counts, and 429
  admission rejections;
- a **burst** phase that floods the queue far past its depth and
  verifies the failure mode is *only* back-pressure: every submit is
  answered 202 or 429 (never 5xx) and every accepted job resolves;
- the final ``/metrics`` snapshot, so queue-wait histograms and
  admission counters land in the committed artifact.

Each client keeps one HTTP connection open (``http.client``,
keep-alive), authenticates with its own API token, and on 429 honours
the ``Retry-After`` hint before retrying — i.e. it behaves the way a
well-behaved SDK client would.
"""

from __future__ import annotations

import argparse
import http.client
import json
import math
import os
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.benchmarks.workloads import WORKLOAD_VERSION, workload

DEFAULT_OUTPUT = "BENCH_serve.json"
#: how many of a pass's slowest requests are named (with trace ids) in
#: the report.
SLOWEST_KEPT = 5
#: self-host default: simulate a remote planner round trip per model
#: call, same default as ``repro bench`` — load numbers should reflect
#: the latency-bound profile a real deployment sees.
DEFAULT_LLM_LATENCY_MS = 10.0


@dataclass
class LoadTestConfig:
    """One load-test invocation."""

    dataset: str = "artwork"
    scale: float = 10.0
    seed: int | None = None
    clients: int = 8
    #: workload repetitions per client per pass.
    repeats: int = 2
    #: external server to hammer; ``None`` self-hosts one.
    url: str | None = None
    # self-host server shape (ignored with --url):
    workers: int = 4
    queue_depth: int = 32
    per_client_limit: int = 8
    job_timeout_s: float = 60.0
    llm_latency_ms: float = DEFAULT_LLM_LATENCY_MS
    #: burst phase: how many rapid submits past the queue depth.
    burst_factor: int = 3
    poll_interval_s: float = 0.005
    #: give up on one request after this many seconds of polling.
    request_deadline_s: float = 120.0
    output: str | None = DEFAULT_OUTPUT
    quiet: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if self.clients <= 0:
            raise ValueError(f"clients must be positive: {self.clients}")
        if self.repeats <= 0:
            raise ValueError(f"repeats must be positive: {self.repeats}")


def _say(config: LoadTestConfig, message: str) -> None:
    if not config.quiet:
        print(f"[loadtest] {message}", flush=True)


def percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of *samples*."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


class _Client:
    """One load-generating client: its own connection + API token."""

    def __init__(self, host: str, port: int, token: str,
                 config: LoadTestConfig):
        self.host, self.port, self.token = host, port, token
        self.config = config
        self._conn: http.client.HTTPConnection | None = None

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=30)
        return self._conn

    def request(self, method: str, path: str,
                body: dict | None = None) -> tuple[int, dict, dict]:
        """One request → (status, headers, decoded JSON body).

        A dead keep-alive connection is rebuilt and the request retried
        once before the failure propagates.
        """
        payload = json.dumps(body) if body is not None else None
        headers = {"x-api-token": self.token}
        if payload is not None:
            headers["Content-Type"] = "application/json"
        for attempt in (0, 1):
            try:
                conn = self._connection()
                conn.request(method, path, body=payload, headers=headers)
                response = conn.getresponse()
                text = response.read().decode("utf-8")
            except (OSError, http.client.HTTPException):
                self.close()  # stale keep-alive; next attempt reconnects
                if attempt:
                    raise
                continue
            decoded = json.loads(text) if text.strip() else {}
            return response.status, dict(response.getheaders()), decoded
        raise AssertionError("unreachable")  # pragma: no cover

    def run_query(self, query: str) -> dict:
        """Submit, honour 429 back-pressure, poll to completion.

        Each result carries the job's ``trace_id`` (from the 202 body),
        so the report can name the exact traces behind its slowest
        requests — ``repro trace show <id>`` then explains *why*.
        """
        started = time.perf_counter()
        deadline = started + self.config.request_deadline_s
        rejections = 0
        while True:
            status, headers, body = self.request(
                "POST", "/queries", {"query": query})
            if status == 202:
                break
            if status == 429:
                rejections += 1
                retry_after = float(headers.get("Retry-After", 1))
                if time.perf_counter() + retry_after > deadline:
                    return {"ok": False, "status": status,
                            "rejections": rejections, "query": query,
                            "trace_id": None,
                            "latency_s": time.perf_counter() - started,
                            "outcome": "rejected"}
                time.sleep(retry_after)
                continue
            return {"ok": False, "status": status,
                    "rejections": rejections, "query": query,
                    "trace_id": None,
                    "latency_s": time.perf_counter() - started,
                    "outcome": f"http_{status}"}
        job_id = body["id"]
        trace_id = body.get("trace_id")
        while True:
            status, _, body = self.request("GET", f"/queries/{job_id}")
            if status != 200:
                return {"ok": False, "status": status,
                        "rejections": rejections, "query": query,
                        "trace_id": trace_id,
                        "latency_s": time.perf_counter() - started,
                        "outcome": f"poll_http_{status}"}
            if body["status"] in ("done", "cancelled"):
                ok = bool(body.get("ok")) and body["status"] == "done"
                return {"ok": ok, "status": 200, "rejections": rejections,
                        "query": query, "trace_id": trace_id,
                        "latency_s": time.perf_counter() - started,
                        "outcome": "done" if ok else "query_error"}
            if time.perf_counter() > deadline:
                return {"ok": False, "status": 200,
                        "rejections": rejections, "query": query,
                        "trace_id": trace_id,
                        "latency_s": time.perf_counter() - started,
                        "outcome": "deadline"}
            time.sleep(self.config.poll_interval_s)

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None


def _run_pass(host: str, port: int, queries: list[str],
              config: LoadTestConfig) -> dict:
    """One pass: every client drains the workload concurrently."""
    results: list[dict] = []
    results_lock = threading.Lock()
    barrier = threading.Barrier(config.clients + 1)

    def client_loop(index: int) -> None:
        client = _Client(host, port, f"client-{index}", config)
        # Offset each client's starting point so the instantaneous mix
        # of queries differs across clients instead of moving in
        # lockstep through identical cache keys.
        offset = (index * len(queries)) // max(1, config.clients)
        ordered = queries[offset:] + queries[:offset]
        barrier.wait()
        collected = []
        for query in ordered * config.repeats:
            try:
                collected.append(client.run_query(query))
            except Exception as exc:  # noqa: BLE001 - a dead client is a data point
                collected.append({"ok": False, "status": 0, "rejections": 0,
                                  "query": query, "trace_id": None,
                                  "latency_s": 0.0,
                                  "outcome": f"transport_"
                                             f"{type(exc).__name__}"})
        client.close()
        with results_lock:
            results.extend(collected)

    threads = [threading.Thread(target=client_loop, args=(i,), daemon=True)
               for i in range(config.clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started

    latencies = [r["latency_s"] * 1000 for r in results if r["ok"]]
    errors = [r for r in results if not r["ok"]]
    # The worst tail, by name: each slow request's trace id points into
    # the server's trace buffer / export spool for span-level diagnosis.
    slowest = [
        {"trace_id": r["trace_id"], "query": r["query"],
         "latency_ms": round(r["latency_s"] * 1000, 3)}
        for r in sorted((r for r in results if r["ok"]),
                        key=lambda r: r["latency_s"],
                        reverse=True)[:SLOWEST_KEPT]]
    return {
        "requests": len(results),
        "ok": len(latencies),
        "errors": len(errors),
        "error_outcomes": sorted({r["outcome"] for r in errors}),
        "rejections_429": sum(r["rejections"] for r in results),
        "p50_ms": round(percentile(latencies, 50), 3),
        "p90_ms": round(percentile(latencies, 90), 3),
        "p99_ms": round(percentile(latencies, 99), 3),
        "mean_ms": round(sum(latencies) / len(latencies), 3)
        if latencies else 0.0,
        "max_ms": round(max(latencies), 3) if latencies else 0.0,
        "wall_seconds": round(wall, 3),
        "throughput_rps": round(len(results) / wall, 3) if wall else 0.0,
        "slowest": slowest,
    }


def _run_burst(host: str, port: int, query: str,
               config: LoadTestConfig) -> dict:
    """Flood the queue past its depth; only 429s may come back.

    Submits ``queue_depth * burst_factor`` jobs as fast as possible from
    parallel submitters (each with its own token so the per-client limit
    isn't what trips first), then polls every accepted job to
    completion: the burst is healthy iff rejects are all 429 and nothing
    is dropped.
    """
    total = config.queue_depth * config.burst_factor
    submitters = min(8, config.clients)
    accepted: list[str] = []
    outcomes = {"accepted": 0, "rejected_429": 0, "other_status": 0}
    lock = threading.Lock()
    barrier = threading.Barrier(submitters + 1)

    def submit_loop(index: int) -> None:
        client = _Client(host, port, f"burst-{index}", config)
        barrier.wait()
        for _ in range(total // submitters):
            try:
                status, _, body = client.request(
                    "POST", "/queries", {"query": query})
            except OSError:
                with lock:
                    outcomes["other_status"] += 1
                continue
            with lock:
                if status == 202:
                    outcomes["accepted"] += 1
                    accepted.append(body["id"])
                elif status == 429:
                    outcomes["rejected_429"] += 1
                else:
                    outcomes["other_status"] += 1
        client.close()

    threads = [threading.Thread(target=submit_loop, args=(i,), daemon=True)
               for i in range(submitters)]
    for thread in threads:
        thread.start()
    barrier.wait()
    for thread in threads:
        thread.join()

    # Every accepted job must resolve — back pressure may reject, but
    # it must never drop.
    poller = _Client(host, port, "burst-poller", config)
    deadline = time.perf_counter() + config.request_deadline_s
    unresolved = 0
    resolved_ok = 0
    for job_id in accepted:
        while True:
            status, _, body = poller.request("GET", f"/queries/{job_id}")
            if status == 200 and body["status"] in ("done", "cancelled"):
                if body["status"] == "done" and body.get("ok"):
                    resolved_ok += 1
                break
            if time.perf_counter() > deadline:
                unresolved += 1
                break
            time.sleep(config.poll_interval_s)
    poller.close()
    return {"submitted": total, **outcomes,
            "resolved_ok": resolved_ok, "unresolved": unresolved}


def run_loadtest(config: LoadTestConfig) -> dict:
    """Run the full load test and return (and optionally write) the record."""
    queries = list(workload(config.dataset, repeats=1))
    handle = None
    if config.url is None:
        from types import SimpleNamespace

        from repro.serve.app import ServeConfig, ServerHandle, build_session
        _say(config, f"self-hosting: {config.dataset} lake at scale "
                     f"{config.scale:g}, {config.workers} workers, "
                     f"queue depth {config.queue_depth}")
        session = build_session(SimpleNamespace(
            dataset=config.dataset, seed=config.seed, scale=config.scale,
            llm_latency_ms=config.llm_latency_ms,
            plan_cache_file=None, answer_cache_file=None))
        handle = ServerHandle(session, ServeConfig(
            port=0, workers=config.workers,
            queue_depth=config.queue_depth,
            per_client_limit=config.per_client_limit,
            job_timeout_s=config.job_timeout_s)).start()
        host, port = "127.0.0.1", handle.port
    else:
        prefix = config.url.rstrip("/")
        if prefix.startswith("http://"):
            prefix = prefix[len("http://"):]
        host, _, port_text = prefix.partition(":")
        port = int(port_text or 80)
        _say(config, f"targeting external server {host}:{port}")

    try:
        _say(config, f"workload: {len(queries)} unique queries x "
                     f"{config.repeats} repeats x {config.clients} clients "
                     f"per pass")
        passes = {}
        for name in ("cold", "warm"):
            passes[name] = _run_pass(host, port, queries, config)
            record = passes[name]
            _say(config, f"{name:>4s}: {record['requests']} requests, "
                         f"p50 {record['p50_ms']:.0f}ms / "
                         f"p99 {record['p99_ms']:.0f}ms, "
                         f"{record['errors']} errors, "
                         f"{record['rejections_429']} x 429, "
                         f"{record['throughput_rps']:.1f} req/s")
        burst = _run_burst(host, port, queries[0], config)
        _say(config, f"burst: {burst['submitted']} submits -> "
                     f"{burst['accepted']} accepted, "
                     f"{burst['rejected_429']} x 429, "
                     f"{burst['other_status']} other, "
                     f"{burst['unresolved']} unresolved")
        status, _, metrics = _Client(host, port, "metrics", config).request(
            "GET", "/metrics")
        if status != 200:
            metrics = {}
    finally:
        if handle is not None:
            drained = handle.drain(timeout=60)
            _say(config, f"server drained (clean={drained})")

    record = {
        "benchmark": "serve_loadtest",
        "workload_version": WORKLOAD_VERSION,
        "created_unix": int(time.time()),
        "python": sys.version.split()[0],
        "cpu_count": os.cpu_count(),
        "dataset": config.dataset,
        "scale": None if config.url else config.scale,
        "seed": config.seed,
        "clients": config.clients,
        "repeats": config.repeats,
        "llm_latency_ms": (None if config.url else config.llm_latency_ms),
        "server": ({"url": config.url} if config.url else {
            "self_hosted": True, "workers": config.workers,
            "queue_depth": config.queue_depth,
            "per_client_limit": config.per_client_limit,
            "job_timeout_s": config.job_timeout_s}),
        "passes": passes,
        "burst": burst,
        "metrics": metrics,
    }
    if config.output:
        path = Path(config.output)
        path.write_text(json.dumps(record, indent=2) + "\n",
                        encoding="utf-8")
        _say(config, f"wrote {path}")
    return record


def healthy(record: dict) -> tuple[bool, list[str]]:
    """The CI gate: no non-429 failures anywhere, nothing dropped."""
    problems = []
    for name, record_pass in record["passes"].items():
        if record_pass["errors"]:
            problems.append(
                f"{name} pass had {record_pass['errors']} failed requests "
                f"({', '.join(record_pass['error_outcomes'])})")
    burst = record["burst"]
    if burst["other_status"]:
        problems.append(f"burst saw {burst['other_status']} non-202/429 "
                        f"responses")
    if burst["unresolved"]:
        problems.append(f"burst dropped {burst['unresolved']} accepted jobs")
    if burst["accepted"] + burst["rejected_429"] != burst["submitted"]:
        problems.append("burst accounting does not add up")
    return (not problems, problems)


def build_arg_parser() -> argparse.ArgumentParser:
    from repro.cliargs import positive_float, positive_int
    from repro.datasets import DATASET_NAMES
    parser = argparse.ArgumentParser(
        prog="repro loadtest",
        description="Hammer the query service with concurrent clients and "
                    "record p50/p99 latency into BENCH_serve.json.")
    parser.add_argument("--dataset", choices=DATASET_NAMES,
                        default="artwork",
                        help="workload + self-hosted lake (default: artwork)")
    parser.add_argument("--scale", type=positive_float, default=10.0,
                        help="self-hosted lake scale (default: 10)")
    parser.add_argument("--seed", type=int, default=None,
                        help="dataset generation seed")
    parser.add_argument("--clients", type=positive_int, default=8,
                        help="concurrent clients (default: 8)")
    parser.add_argument("--repeats", type=positive_int, default=2,
                        help="workload repetitions per client per pass "
                             "(default: 2)")
    parser.add_argument("--url", default=None,
                        help="hammer an already-running server instead of "
                             "self-hosting (e.g. http://127.0.0.1:8080)")
    parser.add_argument("--workers", type=positive_int, default=4,
                        help="self-hosted server worker lanes (default: 4)")
    parser.add_argument("--queue-depth", type=positive_int, default=32,
                        help="self-hosted admission queue depth "
                             "(default: 32)")
    parser.add_argument("--per-client-limit", type=positive_int, default=8,
                        help="self-hosted per-token concurrency limit "
                             "(default: 8)")
    parser.add_argument("--job-timeout-s", type=positive_float, default=60.0,
                        help="self-hosted per-job timeout (default: 60)")
    parser.add_argument("--llm-latency-ms", type=positive_float,
                        default=DEFAULT_LLM_LATENCY_MS,
                        help="self-hosted simulated planner latency per "
                             f"call (default: {DEFAULT_LLM_LATENCY_MS:g})")
    parser.add_argument("--burst-factor", type=positive_int, default=3,
                        help="burst submits = queue depth x this "
                             "(default: 3)")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help=f"JSON output path (default: {DEFAULT_OUTPUT})")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress progress lines")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_arg_parser().parse_args(argv)
    config = LoadTestConfig(
        dataset=args.dataset, scale=args.scale, seed=args.seed,
        clients=args.clients, repeats=args.repeats, url=args.url,
        workers=args.workers, queue_depth=args.queue_depth,
        per_client_limit=args.per_client_limit,
        job_timeout_s=args.job_timeout_s,
        llm_latency_ms=args.llm_latency_ms,
        burst_factor=args.burst_factor,
        output=args.output, quiet=args.quiet)
    record = run_loadtest(config)
    ok, problems = healthy(record)
    for problem in problems:
        print(f"[loadtest] FAIL {problem}", file=sys.stderr)
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

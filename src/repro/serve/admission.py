"""Admission control for the query service: who gets into the queue.

One :class:`AdmissionController` guards the job queue of a
:class:`~repro.serve.jobs.JobManager` with three gates, checked in order
on every submit:

1. **drain** — a draining server admits nothing (HTTP 503);
2. **queue depth** — at most ``queue_depth`` jobs may be *waiting*
   (running jobs don't count); beyond that, HTTP 429 with a
   ``Retry-After`` hint;
3. **per-client concurrency** — at most ``per_client_limit`` in-flight
   (queued + running) jobs per API token; beyond that, 429 too.

Every rejection increments ``serve_admission_rejections_total`` (plus a
per-reason counter) in the session's
:class:`~repro.obs.MetricsRegistry`, so a dashboard can tell back
pressure (queue_full) from a noisy neighbour (client_limit).
"""

from __future__ import annotations

import threading

from repro.obs import MetricsRegistry

#: Rejection reasons an :class:`AdmissionError` can carry.
REJECTION_REASONS = ("queue_full", "client_limit", "draining")


class AdmissionError(Exception):
    """A submit was rejected before entering the queue."""

    def __init__(self, reason: str, detail: str,
                 retry_after_s: float | None = None):
        super().__init__(detail)
        self.reason = reason
        self.detail = detail
        self.retry_after_s = retry_after_s
        #: HTTP status the app layer maps this to.
        self.status = 503 if reason == "draining" else 429


class AdmissionController:
    """Thread-safe occupancy book-keeping + the three admission gates."""

    def __init__(self, queue_depth: int, per_client_limit: int,
                 retry_after_s: float = 1.0,
                 metrics: MetricsRegistry | None = None):
        if queue_depth <= 0:
            raise ValueError(f"queue_depth must be positive: {queue_depth}")
        if per_client_limit <= 0:
            raise ValueError(
                f"per_client_limit must be positive: {per_client_limit}")
        self.queue_depth = queue_depth
        self.per_client_limit = per_client_limit
        self.retry_after_s = retry_after_s
        self._metrics = metrics
        self._lock = threading.Lock()
        self._queued = 0
        self._running = 0
        self._inflight: dict[str, int] = {}
        self._draining = False

    # ------------------------------------------------------------------
    # Gates
    # ------------------------------------------------------------------

    def admit(self, client: str) -> None:
        """Reserve one queue slot for *client* or raise AdmissionError."""
        with self._lock:
            if self._draining:
                self._reject("draining")
                raise AdmissionError(
                    "draining", "server is draining; not accepting queries")
            if self._queued >= self.queue_depth:
                self._reject("queue_full")
                raise AdmissionError(
                    "queue_full",
                    f"job queue is full ({self.queue_depth} waiting)",
                    retry_after_s=self.retry_after_s)
            if self._inflight.get(client, 0) >= self.per_client_limit:
                self._reject("client_limit")
                raise AdmissionError(
                    "client_limit",
                    f"client {client!r} already has "
                    f"{self.per_client_limit} jobs in flight",
                    retry_after_s=self.retry_after_s)
            self._queued += 1
            self._inflight[client] = self._inflight.get(client, 0) + 1

    def _reject(self, reason: str) -> None:
        if self._metrics is not None:
            self._metrics.increment("serve_admission_rejections_total")
            self._metrics.increment(
                f"serve_admission_rejections_{reason}")

    # ------------------------------------------------------------------
    # Occupancy transitions (called by the job manager)
    # ------------------------------------------------------------------

    def mark_started(self) -> None:
        """A queued job moved onto a worker (queued → running)."""
        with self._lock:
            self._queued -= 1
            self._running += 1

    def release_running(self, client: str) -> None:
        """A running job finished (success, error, or timeout)."""
        with self._lock:
            self._running -= 1
            self._release_client(client)

    def release_queued(self, client: str) -> None:
        """A queued job was cancelled before reaching a worker."""
        with self._lock:
            self._queued -= 1
            self._release_client(client)

    def _release_client(self, client: str) -> None:
        count = self._inflight.get(client, 0) - 1
        if count > 0:
            self._inflight[client] = count
        else:
            self._inflight.pop(client, None)

    # ------------------------------------------------------------------
    # Drain + introspection
    # ------------------------------------------------------------------

    def start_draining(self) -> None:
        with self._lock:
            self._draining = True

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    def occupancy(self) -> dict:
        """Current queue occupancy (the ``/healthz`` payload core)."""
        with self._lock:
            return {"queued": self._queued, "running": self._running,
                    "clients": len(self._inflight),
                    "queue_depth": self.queue_depth,
                    "per_client_limit": self.per_client_limit,
                    "draining": self._draining}

"""The query service: a long-lived :class:`~repro.session.Session`
behind an async HTTP server.

The ROADMAP's "Session as a long-lived server" item, as four layers:

- :mod:`repro.serve.app` — the stdlib asyncio HTTP front
  (``repro serve``): submit/poll/cancel, an NDJSON span-event stream,
  ``/healthz`` + ``/metrics``, graceful SIGTERM drain;
- :mod:`repro.serve.jobs` — the bounded background job queue whose
  worker lanes draw engines from :meth:`Session.make_engine`, with
  per-job timeouts that replace a wedged lane;
- :mod:`repro.serve.admission` — queue-depth and per-client admission
  gates (429 + ``Retry-After`` back pressure);
- :mod:`repro.serve.loadtest` — the concurrent-client harness
  (``repro loadtest``) recording p50/p99 latency into
  ``BENCH_serve.json`` next to the throughput benches.
"""

from repro.serve.admission import AdmissionController, AdmissionError
from repro.serve.app import QueryServer, ServeConfig, ServerHandle
from repro.serve.jobs import Job, JobManager
from repro.serve.schemas import SchemaError, SubmitRequest, parse_submit

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "Job",
    "JobManager",
    "QueryServer",
    "SchemaError",
    "ServeConfig",
    "ServerHandle",
    "SubmitRequest",
    "parse_submit",
]

"""Request/response schemas of the query service (:mod:`repro.serve`).

The wire format is plain JSON riding the lossless plan IR: a submitted
query comes in as ``{"query": ...}``, a finished job goes out carrying
``QueryResult.to_dict()`` verbatim, and the event stream is one JSON
object per line (NDJSON).  This module owns the validation of inbound
payloads and the shaping of outbound ones, so the HTTP layer
(:mod:`repro.serve.app`) stays a thin router.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Hard cap on an inbound query string; anything longer is a client bug,
#: not a workload.
MAX_QUERY_CHARS = 10_000


class SchemaError(ValueError):
    """An inbound payload failed validation (HTTP 400)."""


@dataclass(frozen=True)
class SubmitRequest:
    """One validated ``POST /queries`` body."""

    query: str
    #: per-job timeout override in seconds; ``None`` defers to the
    #: server's configured default (and the server's default always caps
    #: the effective value).
    timeout_s: float | None = None


def parse_submit(payload: object) -> SubmitRequest:
    """Validate a decoded ``POST /queries`` body into a request."""
    if not isinstance(payload, dict):
        raise SchemaError("request body must be a JSON object")
    unknown = sorted(set(payload) - {"query", "timeout_s"})
    if unknown:
        raise SchemaError(f"unknown fields: {', '.join(unknown)}")
    query = payload.get("query")
    if not isinstance(query, str) or not query.strip():
        raise SchemaError("'query' must be a non-empty string")
    if len(query) > MAX_QUERY_CHARS:
        raise SchemaError(
            f"'query' exceeds {MAX_QUERY_CHARS} characters")
    timeout_s = payload.get("timeout_s")
    if timeout_s is not None:
        if not isinstance(timeout_s, (int, float)) \
                or isinstance(timeout_s, bool) or timeout_s <= 0:
            raise SchemaError("'timeout_s' must be a positive number")
        timeout_s = float(timeout_s)
    return SubmitRequest(query=query.strip(), timeout_s=timeout_s)


def job_links(job_id: str, trace_id: str | None = None) -> dict:
    """The navigation links attached to every job payload."""
    links = {"self": f"/queries/{job_id}",
             "events": f"/queries/{job_id}/events"}
    if trace_id is not None:
        links["trace"] = f"/traces/{trace_id}"
    return links


def error_body(reason: str, detail: str,
               retry_after_s: float | None = None) -> dict:
    """The uniform error payload (4xx/5xx responses)."""
    body = {"error": reason, "detail": detail}
    if retry_after_s is not None:
        body["retry_after_s"] = retry_after_s
    return body

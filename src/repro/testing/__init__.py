"""Testing substrate: the differential query fuzzer."""

from repro.testing.fuzz import (ENGINES, LANES, FuzzQuery, FuzzReport,
                                QueryGenerator, execute_three_ways,
                                generate_queries, run_fuzz)

__all__ = [
    "ENGINES",
    "LANES",
    "FuzzQuery",
    "FuzzReport",
    "QueryGenerator",
    "execute_three_ways",
    "generate_queries",
    "run_fuzz",
]

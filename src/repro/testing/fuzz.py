"""Differential query fuzzer: three engines, three lanes, zero drift.

SQLancer-style differential testing for the relational layer.  A seeded
:class:`QueryGenerator` draws random-but-valid SELECT statements over the
real lake schemas of both datasets — filters, USING / cross-column joins,
multi-measure aggregates, GROUP BY, date ranges, DISTINCT, ORDER BY +
LIMIT — with literals sampled from the actual column values so predicates
hit real selectivity, not just empty results.

Every query is executed three ways and must agree byte-for-byte:

- ``sqlite``   — the sqlite bridge (:func:`repro.relational.sqlexec.run_sql`),
  the reference semantics;
- ``columnar`` — :func:`repro.relational.colexec.execute` over the typed
  column stores (numpy kernels);
- ``native``   — the same statements lowered onto the pure-Python
  relational ops (:mod:`repro.relational.ops`).

Agreement is checked on the canonical result encoding (``Table.to_dict``
under sorted-key JSON) *and* the content fingerprint.  The whole run then
repeats across three lanes — in-process serial, a thread pool, and a
process pool that regenerates lakes and queries from the seed — and the
per-lane :meth:`FuzzReport.canonical_results` lists must be identical,
which is exactly the cross-backend contract the engine's batch runner
advertises.

``repro fuzz --seed N --count M`` runs it from the CLI; ``--soak S``
keeps drawing fresh seeds for S seconds and prints each one, so any
failure is reproducible with ``--seed``.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.data.datatypes import DataType
from repro.data.table import Table
from repro.datasets import load_lake
from repro.relational import colexec
from repro.relational.sqlexec import build_join_sql, run_sql

#: The engines every query is executed under.  ``sqlite`` is the
#: reference; the other two must match it byte-for-byte.
ENGINES = ("sqlite", "columnar", "native")

#: The execution lanes the whole run is repeated under.
LANES = ("serial", "thread", "process")

DEFAULT_DATASETS = ("artwork", "rotowire")

#: USING-join pairs per dataset: (left, right, key).  Only pairs whose
#: single shared column *is* the key — sqlite suffixes other clashes
#: ``_2`` while the native ops suffix ``_right``, so such joins are
#: outside the byte-identical envelope (colexec declines them).
_USING_JOINS = {
    "artwork": (
        ("paintings_metadata", "painting_images", "img_path"),
        ("painting_images", "paintings_metadata", "img_path"),
    ),
    "rotowire": (
        ("teams_to_games", "game_reports", "game_id"),
        ("players_to_games", "game_reports", "game_id"),
        ("game_reports", "teams_to_games", "game_id"),
        ("players", "players_to_games", "name"),
        ("teams", "teams_to_games", "name"),
    ),
}

#: Cross-column join intents per dataset, in the exact shape the Join
#: operator emits through :func:`build_join_sql`.
_CROSS_JOINS = {
    "artwork": (),
    "rotowire": (
        ("players", "teams", "team", "name"),
        ("teams_to_games", "teams", "name", "name"),
        ("game_reports", "teams_to_games", "game_id", "game_id"),
    ),
}


@dataclass(frozen=True)
class FuzzQuery:
    """One generated differential test case."""

    dataset: str
    sql: str
    tables: tuple[str, ...]
    shape: str  # filter | aggregate | group | join | distinct


@dataclass
class FuzzReport:
    """Outcome of one fuzz run."""

    seed: int
    scale: float
    lanes: tuple[str, ...]
    queries: list[FuzzQuery]
    #: per-query canonical entries of the serial lane (the reference).
    entries: list[dict] = field(default_factory=list)
    #: queries whose engines disagreed: (query, detail).
    mismatches: list[tuple[FuzzQuery, str]] = field(default_factory=list)
    #: queries colexec declined (fell back to the bridge in production).
    unsupported: list[tuple[FuzzQuery, str]] = field(default_factory=list)
    #: lanes whose canonical_results diverged from the serial lane.
    lane_mismatches: list[str] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.mismatches and not self.lane_mismatches

    def canonical_results(self) -> list[dict]:
        """The serial lane's per-query canonical entries."""
        return self.entries

    def render(self) -> str:
        lines = [
            f"fuzz seed={self.seed} scale={self.scale:g} "
            f"queries={len(self.queries)} lanes={','.join(self.lanes)} "
            f"({self.seconds:.1f}s)",
            f"  parity mismatches : {len(self.mismatches)}",
            f"  lane mismatches   : {len(self.lane_mismatches)}",
            f"  unsupported       : {len(self.unsupported)}",
        ]
        for query, detail in self.mismatches[:10]:
            lines.append(f"  MISMATCH [{query.dataset}] {query.sql}")
            lines.append(f"    {detail}")
        for lane in self.lane_mismatches:
            lines.append(f"  LANE MISMATCH: {lane} != serial")
        for query, detail in self.unsupported[:10]:
            lines.append(f"  unsupported [{query.dataset}] {query.sql}: "
                         f"{detail}")
        return "\n".join(lines)


class QueryGenerator:
    """Seeded random SELECT generator over the live lake schemas.

    Stays inside the envelope all three engines execute identically:
    bare-column predicates with type-correct literals, single-column
    GROUP BY / ORDER BY, aliased aggregates, USING joins whose only
    shared column is the key, and Join-operator-shaped cross joins.  The
    point is differential coverage, not grammar coverage — anything
    outside the envelope falls back to sqlite in production and proves
    nothing about the columnar engine.
    """

    def __init__(self, lakes: dict[str, object], seed: int):
        self.lakes = lakes
        self.rng = random.Random(seed)
        # (dataset, table, column) -> sorted distinct non-null sample pool.
        self._pools: dict[tuple[str, str, str], list[object]] = {}

    # -- value pools ---------------------------------------------------

    def _table(self, dataset: str, name: str) -> Table:
        return self.lakes[dataset].sources[name].table

    def _pool(self, dataset: str, table: str, column: str) -> list[object]:
        key = (dataset, table, column)
        if key not in self._pools:
            values = [v for v in self._table(dataset, table).column(column)
                      if v is not None]
            distinct = sorted(set(values), key=repr)[:64]
            self._pools[key] = distinct
        return self._pools[key]

    def _columns(self, dataset: str, table: str,
                 dtypes: tuple[DataType, ...] | None = None) -> list[str]:
        schema = self._table(dataset, table).schema
        return [spec.name for spec in schema.columns
                if not spec.dtype.is_modality
                and (dtypes is None or spec.dtype in dtypes)]

    def _dtype(self, dataset: str, table: str, column: str) -> DataType:
        return self._table(dataset, table).schema.dtype(column)

    # -- literals ------------------------------------------------------

    @staticmethod
    def _literal(value: object) -> str:
        from datetime import date
        if isinstance(value, bool):
            return str(int(value))
        if isinstance(value, (int, float)):
            return repr(value)
        if isinstance(value, date):
            return f"'{value.isoformat()}'"
        text = str(value).replace("'", "''")
        return f"'{text}'"

    def _predicate(self, dataset: str, table: str, column: str) -> str:
        rng = self.rng
        dtype = self._dtype(dataset, table, column)
        pool = self._pool(dataset, table, column)
        if not pool:
            return f"{column} IS NULL"
        value = rng.choice(pool)
        if dtype is DataType.INTEGER and rng.random() < 0.5:
            value = value + rng.randint(-3, 3)
        kind = rng.random()
        if kind < 0.45:
            op = rng.choice(("=", "!=", "<>", "<", "<=", ">", ">="))
            return f"{column} {op} {self._literal(value)}"
        if kind < 0.65:
            low, high = sorted((rng.choice(pool), rng.choice(pool)), key=repr)
            return (f"{column} BETWEEN {self._literal(low)} "
                    f"AND {self._literal(high)}")
        if kind < 0.85 and dtype is not DataType.DATE:
            # IN over DATE columns compares raw dates against text members
            # in the native ops — outside the byte-identical envelope.
            chosen = rng.sample(pool, k=min(len(pool), rng.randint(1, 3)))
            members = ", ".join(self._literal(v) for v in chosen)
            return f"{column} IN ({members})"
        if dtype is DataType.STRING and rng.random() < 0.9:
            text = str(rng.choice(pool))
            clean = "".join(ch for ch in text if ch.isalnum() or ch == " ")
            if len(clean) >= 2:
                cut = rng.randint(1, max(1, len(clean) - 1))
                pattern = rng.choice((f"{clean[:cut]}%", f"%{clean[cut:]}",
                                      f"%{clean[1:-1] or clean}%"))
                return f"{column} LIKE '{pattern}'"
        op = rng.choice(("=", ">=", "<"))
        return f"{column} {op} {self._literal(value)}"

    def _where(self, dataset: str, table: str,
               columns: list[str] | None = None) -> str:
        rng = self.rng
        columns = columns or self._columns(dataset, table)
        if not columns or rng.random() < 0.25:
            return ""
        terms = [self._predicate(dataset, table, rng.choice(columns))
                 for _ in range(rng.choice((1, 1, 1, 2, 2, 3)))]
        glue = rng.choice((" AND ", " OR "))
        return " WHERE " + glue.join(terms)

    def _order_limit(self, dataset: str, table: str) -> str:
        rng = self.rng
        suffix = ""
        if rng.random() < 0.5:
            column = rng.choice(self._columns(dataset, table))
            suffix += f" ORDER BY {column} {rng.choice(('ASC', 'DESC'))}"
        if rng.random() < 0.4:
            suffix += f" LIMIT {rng.randint(1, 20)}"
        return suffix

    # -- query shapes --------------------------------------------------

    def _aggregates(self, dataset: str, table: str,
                    count: int) -> list[str]:
        rng = self.rng
        items = []
        ints = self._columns(dataset, table, (DataType.INTEGER,))
        orderable = self._columns(
            dataset, table, (DataType.INTEGER, DataType.STRING,
                             DataType.DATE))
        for index in range(count):
            kind = rng.random()
            if kind < 0.3 or (not ints and not orderable):
                items.append(f"COUNT(*) AS agg{index}")
            elif kind < 0.45 and orderable:
                column = rng.choice(orderable)
                items.append(f"COUNT(DISTINCT {column}) AS agg{index}")
            elif kind < 0.7 and ints:
                func = rng.choice(("SUM", "AVG"))
                items.append(f"{func}({rng.choice(ints)}) AS agg{index}")
            elif orderable:
                func = rng.choice(("MIN", "MAX"))
                items.append(f"{func}({rng.choice(orderable)}) AS agg{index}")
            else:
                items.append(f"COUNT(*) AS agg{index}")
        return items

    def _shape_filter(self, dataset: str) -> FuzzQuery:
        rng = self.rng
        table = rng.choice(self._relational_tables(dataset))
        columns = self._columns(dataset, table)
        if rng.random() < 0.3:
            chosen = rng.sample(columns, k=rng.randint(1, len(columns)))
            select = ", ".join(chosen)
        else:
            select = "*"
        sql = (f"SELECT {select} FROM {table}"
               f"{self._where(dataset, table)}"
               f"{self._order_limit(dataset, table)}")
        return FuzzQuery(dataset, sql, (table,), "filter")

    def _shape_aggregate(self, dataset: str) -> FuzzQuery:
        rng = self.rng
        table = rng.choice(self._relational_tables(dataset))
        items = self._aggregates(dataset, table, rng.randint(1, 3))
        sql = (f"SELECT {', '.join(items)} FROM {table}"
               f"{self._where(dataset, table)}")
        return FuzzQuery(dataset, sql, (table,), "aggregate")

    def _shape_group(self, dataset: str) -> FuzzQuery:
        rng = self.rng
        table = rng.choice(self._relational_tables(dataset))
        key = rng.choice(self._columns(
            dataset, table, (DataType.STRING, DataType.INTEGER)))
        items = self._aggregates(dataset, table, rng.randint(1, 2))
        sql = (f"SELECT {key}, {', '.join(items)} FROM {table}"
               f"{self._where(dataset, table)} GROUP BY {key}")
        if rng.random() < 0.5:
            sql += f" ORDER BY {key} {rng.choice(('ASC', 'DESC'))}"
        return FuzzQuery(dataset, sql, (table,), "group")

    def _shape_join(self, dataset: str) -> FuzzQuery:
        rng = self.rng
        cross = _CROSS_JOINS[dataset]
        if cross and rng.random() < 0.4:
            left, right, left_on, right_on = rng.choice(cross)
            sql = build_join_sql(
                left, right, left_on, right_on,
                self._table(dataset, left).column_names,
                self._table(dataset, right).column_names)
            return FuzzQuery(dataset, sql, (left, right), "join")
        left, right, key = rng.choice(_USING_JOINS[dataset])
        sql = f"SELECT * FROM {left} JOIN {right} USING ({key})"
        # Predicates stay on the left (outer) table: a WHERE over
        # right-side columns makes sqlite's planner flip the scan to the
        # right table, a row order colexec declines to replicate.
        columns = self._columns(dataset, left)
        sql += self._where(dataset, left, columns)
        return FuzzQuery(dataset, sql, (left, right), "join")

    def _shape_distinct(self, dataset: str) -> FuzzQuery:
        rng = self.rng
        table = rng.choice(self._relational_tables(dataset))
        columns = self._columns(dataset, table)
        chosen = rng.sample(columns, k=rng.randint(1, min(3, len(columns))))
        sql = (f"SELECT DISTINCT {', '.join(chosen)} FROM {table}"
               f"{self._where(dataset, table)}")
        return FuzzQuery(dataset, sql, (table,), "distinct")

    def _relational_tables(self, dataset: str) -> list[str]:
        lake = self.lakes[dataset]
        return sorted(name for name in lake.sources
                      if self._columns(dataset, name))

    def generate(self) -> FuzzQuery:
        """Draw one query."""
        dataset = self.rng.choice(sorted(self.lakes))
        roll = self.rng.random()
        if roll < 0.30:
            return self._shape_filter(dataset)
        if roll < 0.50:
            return self._shape_aggregate(dataset)
        if roll < 0.70:
            return self._shape_group(dataset)
        if roll < 0.88:
            return self._shape_join(dataset)
        return self._shape_distinct(dataset)


def generate_queries(seed: int, count: int, scale: float = 1.0,
                     datasets: tuple[str, ...] = DEFAULT_DATASETS,
                     lakes: dict[str, object] | None = None,
                     ) -> list[FuzzQuery]:
    """The deterministic query list for ``(seed, count, scale)``."""
    lakes = lakes or {name: load_lake(name, scale=scale)
                      for name in datasets}
    generator = QueryGenerator(lakes, seed)
    return [generator.generate() for _ in range(count)]


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------


def _canonical(table: Table) -> dict:
    return {"fingerprint": table.fingerprint(),
            "payload": json.dumps(table.to_dict(), sort_keys=True)}


def execute_three_ways(query: FuzzQuery,
                       tables: dict[str, Table]) -> tuple[dict, str | None]:
    """``(canonical_entry, unsupported_reason)`` for one query.

    The entry maps each engine name to the canonical encoding of its
    result.  When colexec declines the statement (production would fall
    back to the bridge) the in-process engines are marked unsupported and
    the reason is returned — the generator is expected to make this
    never happen, and the harness asserts exactly that.
    """
    entry: dict = {"dataset": query.dataset, "sql": query.sql,
                   "engines": {}}
    entry["engines"]["sqlite"] = _canonical(run_sql(query.sql, tables))
    reason = None
    for engine in ("columnar", "native"):
        try:
            result = colexec.execute(query.sql, tables, engine=engine)
        except colexec.UnsupportedSQL as exc:
            entry["engines"][engine] = {"unsupported": str(exc)}
            reason = str(exc)
        else:
            entry["engines"][engine] = _canonical(result)
    return entry, reason


def _check_entry(query: FuzzQuery, entry: dict) -> str | None:
    """A mismatch description, or ``None`` when all engines agree."""
    reference = entry["engines"]["sqlite"]
    for engine in ("columnar", "native"):
        candidate = entry["engines"][engine]
        if "unsupported" in candidate:
            continue
        if candidate != reference:
            return (f"{engine} != sqlite: fingerprints "
                    f"{candidate['fingerprint']} vs "
                    f"{reference['fingerprint']}")
    return None


def _run_one(lakes: dict[str, object], query: FuzzQuery) -> tuple[dict,
                                                                  str | None]:
    tables = {name: lakes[query.dataset].sources[name].table
              for name in query.tables}
    return execute_three_ways(query, tables)


# Process-lane worker state: lakes and queries are rebuilt from the seed
# inside each worker, so nothing heavyweight crosses the pipe.
_WORKER: dict = {}


def _process_init(seed: int, count: int, scale: float,
                  datasets: tuple[str, ...]) -> None:
    lakes = {name: load_lake(name, scale=scale) for name in datasets}
    _WORKER["lakes"] = lakes
    _WORKER["queries"] = generate_queries(seed, count, scale=scale,
                                          datasets=datasets, lakes=lakes)


def _process_run(index: int) -> tuple[dict, str | None]:
    return _run_one(_WORKER["lakes"], _WORKER["queries"][index])


def run_fuzz(seed: int, count: int, scale: float = 1.0,
             datasets: tuple[str, ...] = DEFAULT_DATASETS,
             lanes: tuple[str, ...] = ("serial",),
             workers: int = 3) -> FuzzReport:
    """Run the differential fuzzer; see the module docstring."""
    started = time.perf_counter()
    unknown = set(lanes) - set(LANES)
    if unknown:
        raise ValueError(f"unknown lanes {sorted(unknown)}; "
                         f"available: {', '.join(LANES)}")
    lakes = {name: load_lake(name, scale=scale) for name in datasets}
    queries = generate_queries(seed, count, scale=scale, datasets=datasets,
                               lakes=lakes)
    report = FuzzReport(seed=seed, scale=scale, lanes=tuple(lanes),
                        queries=queries)

    serial = [_run_one(lakes, query) for query in queries]
    report.entries = [entry for entry, _ in serial]
    for query, (entry, reason) in zip(queries, serial):
        if reason is not None:
            report.unsupported.append((query, reason))
        detail = _check_entry(query, entry)
        if detail is not None:
            report.mismatches.append((query, detail))

    reference = json.dumps(report.entries, sort_keys=True)
    if "thread" in lanes:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            threaded = list(pool.map(lambda q: _run_one(lakes, q), queries))
        if json.dumps([e for e, _ in threaded],
                      sort_keys=True) != reference:
            report.lane_mismatches.append("thread")
    if "process" in lanes:
        with ProcessPoolExecutor(
                max_workers=workers, initializer=_process_init,
                initargs=(seed, count, scale, tuple(datasets))) as pool:
            processed = list(pool.map(_process_run, range(len(queries))))
        if json.dumps([e for e, _ in processed],
                      sort_keys=True) != reference:
            report.lane_mismatches.append("process")
    report.seconds = time.perf_counter() - started
    return report


# ----------------------------------------------------------------------
# CLI: repro fuzz
# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro fuzz",
        description="Differential query fuzzer: random SELECTs executed "
                    "under the sqlite / columnar / native engines (and "
                    "serial / thread / process lanes) must agree "
                    "byte-for-byte.")
    parser.add_argument("--seed", type=int, default=None,
                        help="generator seed (default: drawn from entropy "
                             "and printed, so failures are reproducible)")
    parser.add_argument("--count", type=int, default=200,
                        help="queries per run (default: 200)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="lake scale factor (default: 1.0)")
    parser.add_argument("--lanes", default="serial",
                        help="comma-separated subset of "
                             f"{{{','.join(LANES)}}} (default: serial)")
    parser.add_argument("--soak", type=float, default=None, metavar="SECONDS",
                        help="keep fuzzing fresh seeds for this many "
                             "seconds (each seed printed before its run)")
    parser.add_argument("--strict-unsupported", action="store_true",
                        help="fail when any generated query falls outside "
                             "the in-process engines' envelope")
    return parser


def _one_run(seed: int, args: argparse.Namespace,
             lanes: tuple[str, ...]) -> FuzzReport:
    print(f"fuzzing: seed={seed} count={args.count} scale={args.scale:g} "
          f"lanes={','.join(lanes)}", flush=True)
    report = run_fuzz(seed, args.count, scale=args.scale, lanes=lanes)
    print(report.render(), flush=True)
    return report


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    lanes = tuple(lane.strip() for lane in args.lanes.split(",")
                  if lane.strip())

    def failed(report: FuzzReport) -> bool:
        return (not report.ok
                or (args.strict_unsupported and report.unsupported))

    if args.soak is not None:
        deadline = time.monotonic() + args.soak
        runs = 0
        while time.monotonic() < deadline:
            seed = args.seed if args.seed is not None else \
                random.SystemRandom().randrange(2 ** 31)
            report = _one_run(seed, args, lanes)
            runs += 1
            if failed(report):
                print(f"FAILED at seed={seed}; reproduce with: "
                      f"repro fuzz --seed {seed} --count {args.count} "
                      f"--scale {args.scale:g} --lanes {args.lanes}")
                return 1
            if args.seed is not None:
                break  # a pinned seed is deterministic; once is enough
        print(f"soak clean: {runs} run(s), "
              f"{runs * args.count} queries")
        return 0

    seed = args.seed if args.seed is not None else \
        random.SystemRandom().randrange(2 ** 31)
    report = _one_run(seed, args, lanes)
    return 1 if failed(report) else 0


if __name__ == "__main__":
    sys.exit(main())

"""Dense-retrieval substrate for the discovery phase."""

from repro.retrieval.embedder import HashEmbedder, tokenize
from repro.retrieval.index import SearchHit, VectorIndex

__all__ = ["HashEmbedder", "SearchHit", "VectorIndex", "tokenize"]

"""A small in-memory vector index with cosine top-k search."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import RetrievalError
from repro.retrieval.embedder import HashEmbedder


@dataclass(frozen=True)
class SearchHit:
    key: str
    score: float


class VectorIndex:
    """Maps string keys to embedded documents; supports top-k retrieval."""

    def __init__(self, embedder: HashEmbedder | None = None):
        self.embedder = embedder or HashEmbedder()
        self._keys: list[str] = []
        self._matrix: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self._keys)

    def add(self, key: str, document: str) -> None:
        vector = self.embedder.embed(document)
        if self._matrix is None:
            self._matrix = vector[None, :]
        else:
            self._matrix = np.vstack([self._matrix, vector])
        self._keys.append(key)

    def search(self, query: str, k: int = 5,
               min_score: float = 0.0) -> list[SearchHit]:
        """Top-*k* keys by cosine similarity to *query*."""
        if self._matrix is None:
            raise RetrievalError("vector index is empty")
        scores = self._matrix @ self.embedder.embed(query)
        order = np.argsort(-scores)[:k]
        return [SearchHit(self._keys[i], float(scores[i]))
                for i in order if scores[i] >= min_score]

"""Hashed bag-of-words text embeddings.

The discovery phase of CAESURA "narrows down the relevant tables, image
collections, etc. using dense retrieval (similar to Symphony)".  Offline we
replace the neural text encoder with the feature-hashing trick: each token
(and token bigram) is hashed into a fixed-size vector with a ±1 sign, which
preserves the cosine-similarity geometry of lexical overlap.
"""

from __future__ import annotations

import hashlib
import re

import numpy as np

_TOKEN_RE = re.compile(r"[a-z0-9]+")

_STOPWORDS = frozenset(
    "a an and are as at be by for from has have in is it of on or that the "
    "this to was were which with what how many much does did each every per "
    "all any".split())


def tokenize(text: str) -> list[str]:
    """Lowercase word tokens with stopwords removed."""
    return [t for t in _TOKEN_RE.findall(text.lower())
            if t not in _STOPWORDS]


def _hash_slot(feature: str, dim: int) -> tuple[int, float]:
    digest = hashlib.sha1(feature.encode()).digest()
    slot = int.from_bytes(digest[:4], "little") % dim
    sign = 1.0 if digest[4] % 2 == 0 else -1.0
    return slot, sign


class HashEmbedder:
    """Deterministic text → unit-vector embedder."""

    def __init__(self, dim: int = 256, use_bigrams: bool = True):
        if dim <= 0:
            raise ValueError("dim must be positive")
        self.dim = dim
        self.use_bigrams = use_bigrams

    def embed(self, text: str) -> np.ndarray:
        vector = np.zeros(self.dim, dtype=np.float64)
        tokens = tokenize(text)
        features = list(tokens)
        if self.use_bigrams:
            features.extend(f"{a}_{b}" for a, b in zip(tokens, tokens[1:]))
        for feature in features:
            slot, sign = _hash_slot(feature, self.dim)
            vector[slot] += sign
        norm = np.linalg.norm(vector)
        if norm > 0:
            vector /= norm
        return vector

    def similarity(self, left: str, right: str) -> float:
        """Cosine similarity of two texts."""
        return float(np.dot(self.embed(left), self.embed(right)))

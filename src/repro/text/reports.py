"""Natural-language basketball game reports (rotowire-style).

The paper's second dataset is rotowire [Wiseman et al., 2017]: textual game
reports carrying the important statistics of the teams and players involved.
This module generates such reports from a structured :class:`GameBoxScore`.
Sentence templates are varied per game (seeded RNG) so that the simulated
extractive QA model (:mod:`repro.text.qa`) has to cope with several surface
forms rather than one fixed pattern.

The box score is the *ground truth*; the report is the only thing the TextQA
operator ever sees.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

_WEEKDAYS = ("Monday", "Tuesday", "Wednesday", "Thursday", "Friday",
             "Saturday", "Sunday")


@dataclass(frozen=True)
class PlayerLine:
    """One player's stat line in a game."""

    name: str
    team: str
    points: int
    rebounds: int
    assists: int


@dataclass
class GameBoxScore:
    """Structured ground truth of one game."""

    game_id: int
    home_team: str
    away_team: str
    home_points: int
    away_points: int
    player_lines: list[PlayerLine] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.home_points == self.away_points:
            raise ValueError("ties are not supported; adjust scores")

    @property
    def winner(self) -> str:
        return (self.home_team if self.home_points > self.away_points
                else self.away_team)

    @property
    def loser(self) -> str:
        return (self.away_team if self.home_points > self.away_points
                else self.home_team)

    @property
    def winner_points(self) -> int:
        return max(self.home_points, self.away_points)

    @property
    def loser_points(self) -> int:
        return min(self.home_points, self.away_points)

    def points_of(self, team: str) -> int:
        if team == self.home_team:
            return self.home_points
        if team == self.away_team:
            return self.away_points
        raise KeyError(f"team {team!r} did not play game {self.game_id}")


_OPENINGS = (
    "The {winner} defeated the {loser} {wp} - {lp} on {weekday}.",
    "The {winner} beat the {loser} {wp} - {lp} on {weekday}.",
    "On {weekday}, the {winner} defeated the {loser} {wp} - {lp}.",
    "The {loser} lost to the {winner} {lp} - {wp} on {weekday}.",
)

_TEAM_SENTENCES = (
    "The {team} scored {points} points in total.",
    "The {team} put up {points} points.",
    "In total, the {team} scored {points} points.",
)

_PLAYER_SENTENCES = (
    "{name} led the {team} with {points} points, {rebounds} rebounds and "
    "{assists} assists.",
    "{name} scored {points} points, grabbed {rebounds} rebounds and handed "
    "out {assists} assists for the {team}.",
    "{name} finished with {points} points, {rebounds} rebounds and "
    "{assists} assists.",
    "{name} added {points} points to go with {rebounds} rebounds and "
    "{assists} assists.",
)

_CLOSINGS = (
    "Both teams return to action later this week.",
    "The two sides will meet again later this season.",
    "It was a hard-fought game from start to finish.",
)


def generate_report(box: GameBoxScore, seed: int | None = None) -> str:
    """Compose the natural-language report for one game."""
    rng = random.Random(box.game_id if seed is None else seed)
    weekday = rng.choice(_WEEKDAYS)
    sentences = [rng.choice(_OPENINGS).format(
        winner=box.winner, loser=box.loser,
        wp=box.winner_points, lp=box.loser_points, weekday=weekday)]
    # Always state both teams' totals explicitly so extraction has a
    # guaranteed anchor (the opening already implies them as a score line).
    for team in (box.home_team, box.away_team):
        sentences.append(rng.choice(_TEAM_SENTENCES).format(
            team=team, points=box.points_of(team)))
    for line in box.player_lines:
        sentences.append(rng.choice(_PLAYER_SENTENCES).format(
            name=line.name, team=line.team, points=line.points,
            rebounds=line.rebounds, assists=line.assists))
    sentences.append(rng.choice(_CLOSINGS))
    return " ".join(sentences)

"""Text substrate: report generation + simulated extractive QA (BART-sim)."""

from repro.text.qa import BartQASim, instantiate_template, split_sentences
from repro.text.reports import GameBoxScore, PlayerLine, generate_report

__all__ = [
    "BartQASim",
    "GameBoxScore",
    "PlayerLine",
    "generate_report",
    "instantiate_template",
    "split_sentences",
]

"""Simulated BART: extractive question answering over report texts.

The paper's TextQA operator is "based on BART" and takes *question
templates* that the operator instantiates per row ("How many points did
<name> score?" → "How many points did Heat score?").  This simulator answers
instantiated questions *extractively*: it locates the sentence(s) mentioning
the asked-about entity and pulls the requested statistic out of the surface
text.  It never sees the structured box score.

Returns ``None`` when the text simply does not contain the answer — the
no-answer behaviour real extractive QA models exhibit.
"""

from __future__ import annotations

import re

from repro.errors import OperatorError

_SENTENCE_SPLIT_RE = re.compile(r"(?<=[.!?])\s+")

#: statistic keyword → regex capturing "<number> <keyword>"
_STAT_WORDS = {
    "points": re.compile(r"(\d+)\s+points?\b", re.IGNORECASE),
    "rebounds": re.compile(r"(\d+)\s+rebounds?\b", re.IGNORECASE),
    "assists": re.compile(r"(\d+)\s+assists?\b", re.IGNORECASE),
}

_QUESTION_RES = {
    "stat": re.compile(
        r"how many (?P<stat>points|rebounds|assists)\s+(?:did|does|has)\s+"
        r"(?:the\s+)?(?P<entity>.+?)\s+"
        r"(?:score|scored|grab|grabbed|have|had|get|got|record|recorded|"
        r"hand out|handed out|dish|dished)\??$",
        re.IGNORECASE),
    "win": re.compile(
        r"did\s+(?:the\s+)?(?P<entity>.+?)\s+win(?:\s+the\s+game)?\??$",
        re.IGNORECASE),
    "lose": re.compile(
        r"did\s+(?:the\s+)?(?P<entity>.+?)\s+lose(?:\s+the\s+game)?\??$",
        re.IGNORECASE),
    "who_won": re.compile(r"(?:who|which team) won(?:\s+the\s+game)?\??$",
                          re.IGNORECASE),
    "who_lost": re.compile(r"(?:who|which team) lost(?:\s+the\s+game)?\??$",
                           re.IGNORECASE),
}

_SCORELINE_RE = re.compile(
    r"the\s+(?P<first>[\w .'-]+?)\s+(?:defeated|beat)\s+the\s+"
    r"(?P<second>[\w .'-]+?)\s+(?P<fp>\d+)\s*-\s*(?P<sp>\d+)",
    re.IGNORECASE)
_LOST_TO_RE = re.compile(
    r"the\s+(?P<first>[\w .'-]+?)\s+lost to\s+the\s+"
    r"(?P<second>[\w .'-]+?)\s+(?P<fp>\d+)\s*-\s*(?P<sp>\d+)",
    re.IGNORECASE)


def split_sentences(text: str) -> list[str]:
    return [s.strip() for s in _SENTENCE_SPLIT_RE.split(text) if s.strip()]


def instantiate_template(template: str, row: dict[str, object]) -> str:
    """Replace ``<column>`` placeholders in a question template."""
    def replace(match: re.Match[str]) -> str:
        column = match.group(1)
        if column not in row:
            raise OperatorError(
                f"question template references unknown column <{column}>",
                operator="Text Question Answering")
        return str(row[column])

    return re.sub(r"<([A-Za-z_][A-Za-z0-9_]*)>", replace, template)


class BartQASim:
    """Extractive QA over one report text."""

    def answer(self, text: str, question: str) -> object:
        """Answer *question* from *text*; ``None`` when not extractable."""
        question = question.strip()
        if not question:
            raise OperatorError("empty TextQA question",
                                operator="Text Question Answering")

        match = _QUESTION_RES["stat"].search(question)
        if match:
            return self._answer_stat(text, match.group("entity"),
                                     match.group("stat").lower())
        match = _QUESTION_RES["win"].search(question)
        if match:
            return self._answer_win(text, match.group("entity"), want_win=True)
        match = _QUESTION_RES["lose"].search(question)
        if match:
            return self._answer_win(text, match.group("entity"),
                                    want_win=False)
        if _QUESTION_RES["who_won"].search(question):
            outcome = self._game_outcome(text)
            return outcome[0] if outcome else None
        if _QUESTION_RES["who_lost"].search(question):
            outcome = self._game_outcome(text)
            return outcome[1] if outcome else None
        raise OperatorError(
            f"TextQA does not understand question {question!r}",
            operator="Text Question Answering")

    # ------------------------------------------------------------------

    def _answer_stat(self, text: str, entity: str, stat: str) -> object:
        entity = entity.strip()
        pattern = _STAT_WORDS[stat]
        for sentence in split_sentences(text):
            if entity.lower() not in sentence.lower():
                continue
            found = pattern.search(sentence)
            if found:
                return int(found.group(1))
        if stat == "points":
            # Fall back to the score line of the opening sentence.
            outcome = self._game_outcome(text)
            if outcome is not None:
                winner, loser, winner_points, loser_points = (
                    outcome[0], outcome[1], outcome[2], outcome[3])
                if entity.lower() in winner.lower():
                    return winner_points
                if entity.lower() in loser.lower():
                    return loser_points
        return None

    def _answer_win(self, text: str, entity: str, want_win: bool) -> object:
        outcome = self._game_outcome(text)
        if outcome is None:
            return None
        winner, loser = outcome[0], outcome[1]
        entity = entity.strip().lower()
        if entity in winner.lower():
            return "yes" if want_win else "no"
        if entity in loser.lower():
            return "no" if want_win else "yes"
        return None

    def _game_outcome(self, text: str) -> tuple[str, str, int, int] | None:
        """(winner, loser, winner_points, loser_points) from the score line."""
        match = _SCORELINE_RE.search(text)
        if match:
            return (match.group("first").strip(), match.group("second").strip(),
                    int(match.group("fp")), int(match.group("sp")))
        match = _LOST_TO_RE.search(text)
        if match:
            # "The A lost to the B <ap> - <bp>": A is the loser.
            return (match.group("second").strip(), match.group("first").strip(),
                    int(match.group("sp")), int(match.group("fp")))
        return None

"""repro.cachenet — the shared cache tier.

A stdlib-only cache server plus client-side drop-in caches, so every
lane, process, and replica shares one warm set of plans and modality
answers instead of re-paying warm-up per process.  See
:mod:`repro.cachenet.protocol` for the wire contract,
:mod:`repro.cachenet.server` for the tier itself, and
:mod:`repro.cachenet.client` for ``Session(cache_url=...)``'s plumbing.
"""

from repro.cachenet.client import (CacheClient, RemoteAnswerCache,
                                   RemotePlanCache)
from repro.cachenet.protocol import (PROTOCOL_NAME, PROTOCOL_VERSION,
                                     CacheNetError, CacheProtocolError,
                                     CacheUnavailable, FrameError,
                                     parse_cache_url)
from repro.cachenet.server import CacheTierServer

__all__ = [
    "CacheClient",
    "CacheNetError",
    "CacheProtocolError",
    "CacheTierServer",
    "CacheUnavailable",
    "FrameError",
    "PROTOCOL_NAME",
    "PROTOCOL_VERSION",
    "RemoteAnswerCache",
    "RemotePlanCache",
    "parse_cache_url",
]

"""The cachenet wire protocol: length-prefixed JSON frames.

One frame is a 4-byte big-endian length followed by that many bytes of
UTF-8 JSON.  Every payload the tier moves — logical plans, modality
answers — is already losslessly JSON-serializable (the PR 3 plan IR,
:func:`~repro.data.datatypes.encode_scalar`), so the protocol never needs
a binary encoding; the framing only exists so a stream socket carries
discrete messages.

A connection is a strict request/response sequence initiated by the
client, and the first request MUST be ``hello`` carrying
:data:`PROTOCOL_VERSION` — the server refuses every other operation until
the handshake succeeds, and refuses the handshake itself on a version
mismatch, so an old client talking to a new server (or vice versa) fails
with one clear error instead of corrupt cache traffic.

Operations (the ``op`` field of a request):

=============  ========================================================
``hello``      version handshake; must be first on every connection
``get``        one lookup: ``space`` + ``ns`` + ``key`` → hit/value
``put``        one insert: ``space`` + ``ns`` + ``key`` + ``value``
``mget``       batched ``get`` over ``keys`` (one round trip)
``mput``       batched ``put`` over ``entries``
``invalidate`` drop a namespace (plan space) or a whole space
``stats``      the server's counter snapshot (entries, hits, misses, …)
``flush``      persist both spaces to the configured files now
=============  ========================================================

Additive fields (version-compatible, ignored by peers that predate
them): any non-``hello`` request MAY carry a ``trace`` object —
``{"trace_id": <32 hex>, "span_id": <16 hex>}``, the caller's
:class:`~repro.obs.TraceContext` — so the server can attribute its
handling to the caller's distributed trace; any non-``hello`` reply MAY
carry ``server_ms``, the server-side handling time of that request,
which clients fold into their ``cachenet:<op>`` spans.

Spaces mirror the two process-local caches: ``plan`` entries are
namespaced by the lake fingerprint (the same fingerprint
:class:`~repro.core.batch.PlanCache` keys on, so invalidating a changed
lake's namespace drops exactly its plans), while ``answer`` keys are
per-object content fingerprints and therefore self-invalidating — a
changed object produces a different key, so stale entries can never hit.
"""

from __future__ import annotations

import json
import socket
import struct

from repro.errors import ReproError

#: Bumped on any incompatible change to the frame or message shapes.
#: Client and server compare this in the ``hello`` handshake and refuse
#: to talk across a mismatch.
PROTOCOL_VERSION = 1

#: Identifies the protocol family in the handshake (guards against a
#: cachenet client accidentally pointed at some other JSON service).
PROTOCOL_NAME = "repro-cachenet"

#: The two cache spaces the tier serves.
SPACES = ("plan", "answer")

#: Hard bound on one frame; a 32 MiB frame is already far beyond any
#: legitimate plan or answer payload, so anything bigger is a framing
#: error (or garbage traffic), not data.
MAX_FRAME_BYTES = 32 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class CacheNetError(ReproError):
    """Base class for every cachenet failure."""


class CacheUnavailable(CacheNetError):
    """The tier could not be reached (down, timed out, connection lost).

    Recoverable by design: clients catch this and degrade to local-only
    operation, so an unreachable tier slows warm-up but never fails a
    query.
    """


class CacheProtocolError(CacheNetError):
    """The peer speaks a different protocol (or version).

    Deliberately *not* recoverable by degradation — a version mismatch is
    a deployment error that must surface, not be silently absorbed as
    cache misses.
    """


class FrameError(CacheNetError):
    """A frame violated the length-prefixed JSON contract."""


def write_frame(sock: socket.socket, payload: dict) -> None:
    """Send one JSON frame over *sock*."""
    data = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(data) > MAX_FRAME_BYTES:
        raise FrameError(f"frame of {len(data)} bytes exceeds the "
                         f"{MAX_FRAME_BYTES}-byte protocol limit")
    sock.sendall(_LENGTH.pack(len(data)) + data)


def _read_exactly(sock: socket.socket, count: int) -> bytes | None:
    """*count* bytes from *sock*; ``None`` on EOF at a frame boundary."""
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 65536))
        if not chunk:
            if chunks:
                raise FrameError("connection closed mid-frame")
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket) -> dict | None:
    """Read one JSON frame; ``None`` when the peer closed cleanly."""
    header = _read_exactly(sock, _LENGTH.size)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame of {length} bytes exceeds the "
                         f"{MAX_FRAME_BYTES}-byte protocol limit")
    body = _read_exactly(sock, length)
    if body is None:
        raise FrameError("connection closed between header and body")
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise FrameError(f"frame must be a JSON object, got "
                         f"{type(payload).__name__}")
    return payload


def hello_request() -> dict:
    """The handshake frame a client opens every connection with."""
    return {"op": "hello", "protocol": PROTOCOL_NAME,
            "version": PROTOCOL_VERSION}


def check_hello_reply(reply: dict, url: str) -> None:
    """Validate a server's handshake reply; raises on any mismatch."""
    if not reply.get("ok"):
        raise CacheProtocolError(
            f"cache server at {url} rejected the handshake: "
            f"{reply.get('error', 'no reason given')}")
    if (reply.get("protocol") != PROTOCOL_NAME
            or reply.get("version") != PROTOCOL_VERSION):
        raise CacheProtocolError(
            f"cache server at {url} speaks "
            f"{reply.get('protocol')!r} v{reply.get('version')!r}, this "
            f"client speaks {PROTOCOL_NAME!r} v{PROTOCOL_VERSION}; "
            f"upgrade the older side")


def parse_cache_url(url: str) -> tuple[str, object]:
    """``(family, address)`` for a cachenet URL.

    Accepted forms: ``unix:///path/to.sock``, ``tcp://host:port``, and
    the bare ``host:port`` shorthand (TCP).  TCP hosts are hostnames,
    IPv4 literals, or *bracketed* IPv6 literals (``tcp://[::1]:9009``);
    an unbracketed host containing ``:`` is rejected rather than
    mis-split into garbage.  Returns ``("unix", path)`` or
    ``("tcp", (host, port))``.
    """
    original = url
    if url.startswith("unix://"):
        path = url[len("unix://"):]
        if not path:
            raise ValueError(f"cache url {original!r} names no socket "
                             f"path")
        return "unix", path
    if url.startswith("tcp://"):
        url = url[len("tcp://"):]
    if url.startswith("["):
        host, bracket, rest = url[1:].partition("]")
        if not bracket or not host or not rest.startswith(":"):
            raise ValueError(
                f"cache url {original!r}: a bracketed IPv6 host must "
                f"look like [host]:port")
        port_text = rest[1:]
    else:
        host, sep, port_text = url.rpartition(":")
        if not sep or not host:
            raise ValueError(
                f"cache url {original!r} is not unix:///path, "
                f"tcp://host:port, or host:port")
        if ":" in host:
            raise ValueError(
                f"cache url {original!r}: IPv6 hosts must be bracketed "
                f"([host]:port)")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"cache url port {port_text!r} is not an "
                         f"integer") from None
    return "tcp", (host, port)

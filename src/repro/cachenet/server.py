"""The shared cache tier server (``repro cache-server``).

One :class:`CacheTierServer` holds the fleet's warm state: a ``plan``
space and an ``answer`` space, stored in the very same
:class:`~repro.core.batch.PlanCache` / :class:`~repro.core.answer_cache.
AnswerCache` structures every process already uses locally — which is
what makes file persistence free (``--plan-file`` / ``--answer-file``
write the exact ``repro-plan-cache/v1`` / ``repro-answer-cache/v1``
formats, so a tier snapshot and a ``--plan-cache-file`` from any session
are interchangeable).  Values are validated on the way in: a ``put`` into
the plan space round-trips through
:meth:`~repro.core.plan.LogicalPlan.from_dict`, so a corrupt payload is
rejected at the wire instead of poisoning every future replica.

The server is deliberately stdlib-threads-plus-sockets: one daemon
thread per connection over :mod:`socketserver`, one strict
request/response loop per thread (see :mod:`repro.cachenet.protocol`),
all state behind the caches' own locks.  Requests are a few hundred
bytes of JSON and the store operations are dict lookups, so fan-in from
M servers × N lanes is bounded by socket throughput, not compute.

Run it standalone::

    repro cache-server --bind tcp://127.0.0.1:9009 \
        --plan-file tier-plans.json --answer-file tier-answers.json

or embed it (tests, benchmarks)::

    server = CacheTierServer(bind="tcp://127.0.0.1:0").start()
    session = Session("artwork", cache_url=server.url)
"""

from __future__ import annotations

import argparse
import signal
import socket
import socketserver
import threading
import time
from pathlib import Path

from repro.cachenet.protocol import (PROTOCOL_NAME, PROTOCOL_VERSION,
                                     FrameError, parse_cache_url,
                                     read_frame, write_frame)
from repro.core.answer_cache import AnswerCache
from repro.core.batch import PlanCache
from repro.core.plan import LogicalPlan
from repro.data.datatypes import decode_scalar, encode_scalar

DEFAULT_PLAN_CAPACITY = 4096
DEFAULT_ANSWER_CAPACITY = 65536


class _ConnectionHandler(socketserver.BaseRequestHandler):
    """One client connection: handshake first, then request/response."""

    def handle(self) -> None:  # noqa: D102 - socketserver contract
        tier: CacheTierServer = self.server.tier  # type: ignore[attr-defined]
        tier._count("connections_total")
        with tier._connections_lock:
            tier._open_connections.add(self.request)
        try:
            self._serve_requests(tier)
        finally:
            with tier._connections_lock:
                tier._open_connections.discard(self.request)

    def _serve_requests(self, tier: "CacheTierServer") -> None:
        handshook = False
        while True:
            try:
                request = read_frame(self.request)
            except FrameError:
                return  # garbage traffic; drop the connection
            except OSError:
                return  # socket severed under us (server stopping)
            if request is None:
                return
            tier._count("requests_total")
            op = request.get("op")
            # Distributed-trace propagation: callers may attach their
            # TraceContext as a "trace" field; the server counts traced
            # requests (stats stays wall-clock free) and reports its own
            # handling time back so client-side cachenet spans can split
            # wire time from server time.
            if isinstance(request.get("trace"), dict):
                tier._count("traced_requests_total")
            if op == "hello":
                reply = tier._handle_hello(request)
                handshook = reply.get("ok", False)
            elif not handshook:
                reply = {"ok": False, "error": "handshake required: send "
                                               "'hello' first"}
            else:
                started = time.perf_counter()
                reply = tier._dispatch(op, request)
                reply["server_ms"] = round(
                    (time.perf_counter() - started) * 1000.0, 3)
            try:
                write_frame(self.request, reply)
            except OSError:
                return


class _ThreadingTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class _ThreadingTCP6Server(_ThreadingTCPServer):
    address_family = socket.AF_INET6


if hasattr(socketserver, "UnixStreamServer"):
    class _ThreadingUnixServer(socketserver.ThreadingMixIn,
                               socketserver.UnixStreamServer):
        daemon_threads = True
else:  # pragma: no cover - platforms without AF_UNIX
    _ThreadingUnixServer = None


class CacheTierServer:
    """The shared plan/answer cache tier behind a socket.

    *bind* is a cachenet URL (``tcp://host:port``, port 0 for ephemeral,
    or ``unix:///path.sock``).  *plan_file* / *answer_file* enable
    persistence: loaded at construction when present, written by the
    ``flush`` operation, and written again on :meth:`stop` — in the
    standard cache-file formats, atomically (temp file + ``os.replace``).
    """

    def __init__(self, bind: str = "tcp://127.0.0.1:9009",
                 plan_capacity: int = DEFAULT_PLAN_CAPACITY,
                 answer_capacity: int = DEFAULT_ANSWER_CAPACITY,
                 plan_file: str | None = None,
                 answer_file: str | None = None,
                 quiet: bool = True):
        self.bind = bind
        self.plan_file = plan_file
        self.answer_file = answer_file
        self.quiet = quiet
        self.plans = (PlanCache.load(plan_file)
                      if plan_file and Path(plan_file).exists()
                      else PlanCache(plan_capacity))
        self.answers = (AnswerCache.load(answer_file)
                        if answer_file and Path(answer_file).exists()
                        else AnswerCache(answer_capacity))
        self._counters: dict[str, int] = {}
        self._counter_lock = threading.Lock()
        self._server: socketserver.BaseServer | None = None
        self._thread: threading.Thread | None = None
        self._unix_path: str | None = None
        self._stopped = threading.Event()
        self._open_connections: set = set()
        self._connections_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "CacheTierServer":
        """Bind and serve on a background thread; returns ``self``."""
        family, address = parse_cache_url(self.bind)
        if family == "unix":
            if _ThreadingUnixServer is None:  # pragma: no cover
                raise OSError("this platform has no AF_UNIX sockets; "
                              "use a tcp:// bind")
            path = Path(address)
            if path.exists():
                path.unlink()  # stale socket from a killed predecessor
            self._server = _ThreadingUnixServer(str(path),
                                                _ConnectionHandler)
            self._unix_path = str(path)
        else:
            host = address[0]
            server_cls = (_ThreadingTCP6Server if ":" in host
                          else _ThreadingTCPServer)
            self._server = server_cls(address, _ConnectionHandler)
        self._server.tier = self  # type: ignore[attr-defined]
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        name="repro-cachenet",
                                        daemon=True)
        self._thread.start()
        self._say(f"cachenet serving on {self.url} "
                  f"[plan_capacity={self.plans.capacity} "
                  f"answer_capacity={self.answers.capacity} "
                  f"plans={len(self.plans)} answers={len(self.answers)}]")
        return self

    @property
    def url(self) -> str:
        """A cachenet URL clients can actually dial.

        Wildcard binds (``0.0.0.0`` / ``::``) are rendered as the
        matching loopback — a client cannot connect to a wildcard —
        and IPv6 hosts come back bracketed, so the value always
        round-trips through :func:`parse_cache_url`.
        """
        if self._unix_path is not None:
            return f"unix://{self._unix_path}"
        if self._server is not None:
            host, port = self._server.server_address[:2]
            if host in ("0.0.0.0", ""):
                host = "127.0.0.1"
            elif host == "::":
                host = "::1"
            if ":" in host:
                host = f"[{host}]"
            return f"tcp://{host}:{port}"
        return self.bind

    def stop(self) -> None:
        """Flush (when persistence is configured) and stop serving."""
        if self._stopped.is_set():
            return
        self._stopped.set()
        if self.plan_file or self.answer_file:
            self.flush()
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
        # Sever established connections too, so a stopped server looks
        # exactly like a dead process to its clients (handler threads
        # would otherwise keep serving already-open sockets forever).
        with self._connections_lock:
            open_connections = list(self._open_connections)
        for connection in open_connections:
            try:
                connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                connection.close()
            except OSError:
                pass
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        if self._unix_path is not None:
            Path(self._unix_path).unlink(missing_ok=True)

    def flush(self) -> tuple[int, int]:
        """Persist both spaces; returns ``(plans, answers)`` written."""
        self._count("flushes_total")
        plans_written = answers_written = 0
        if self.plan_file:
            plans_written = self.plans.save(self.plan_file)
        if self.answer_file:
            answers_written = self.answers.save(self.answer_file)
        self._say(f"flushed {plans_written} plans -> {self.plan_file}, "
                  f"{answers_written} answers -> {self.answer_file}")
        return plans_written, answers_written

    # ------------------------------------------------------------------
    # Request dispatch (called from connection-handler threads)
    # ------------------------------------------------------------------

    def _handle_hello(self, request: dict) -> dict:
        if (request.get("protocol") != PROTOCOL_NAME
                or request.get("version") != PROTOCOL_VERSION):
            return {"ok": False, "protocol": PROTOCOL_NAME,
                    "version": PROTOCOL_VERSION,
                    "error": f"protocol mismatch: server speaks "
                             f"{PROTOCOL_NAME} v{PROTOCOL_VERSION}, "
                             f"client sent {request.get('protocol')!r} "
                             f"v{request.get('version')!r}; upgrade the "
                             f"older side"}
        return {"ok": True, "protocol": PROTOCOL_NAME,
                "version": PROTOCOL_VERSION}

    def _dispatch(self, op: object, request: dict) -> dict:
        try:
            if op == "get":
                return self._handle_get(request)
            if op == "put":
                return self._handle_put(request)
            if op == "mget":
                return {"ok": True,
                        "results": [self._handle_get({**request, **item})
                                    for item in request.get("keys", [])]}
            if op == "mput":
                for item in request.get("entries", []):
                    self._handle_put({**request, **item})
                return {"ok": True,
                        "stored": len(request.get("entries", []))}
            if op == "invalidate":
                return self._handle_invalidate(request)
            if op == "stats":
                return {"ok": True, "stats": self.stats()}
            if op == "flush":
                plans, answers = self.flush()
                return {"ok": True, "plans": plans, "answers": answers}
            return {"ok": False, "error": f"unknown op {op!r}"}
        except Exception as exc:  # noqa: BLE001 - reply, don't die
            # A malformed request must answer, not kill the connection:
            # whatever plan/scalar validation raises (KeyError,
            # AttributeError, a ReproError subclass, ...) becomes an
            # error reply instead of a dropped socket the client would
            # burn retries re-dialing.
            return {"ok": False,
                    "error": f"bad {op} request: "
                             f"{type(exc).__name__}: {exc}"}

    def _handle_get(self, request: dict) -> dict:
        space = request["space"]
        if space == "plan":
            plan = self.plans.get((request["key"], request["ns"]))
            if plan is None:
                return {"ok": True, "hit": False}
            return {"ok": True, "hit": True, "value": plan.to_dict()}
        if space == "answer":
            fingerprint, question, answer_type = request["key"]
            answer = self.answers.get((fingerprint, question, answer_type))
            if answer is AnswerCache.MISS:
                return {"ok": True, "hit": False}
            return {"ok": True, "hit": True,
                    "value": encode_scalar(answer)}
        raise ValueError(f"unknown space {space!r}")

    def _handle_put(self, request: dict) -> dict:
        space = request["space"]
        if space == "plan":
            # from_dict round-trip: validation at the wire, and the GET
            # path serves a canonical re-encoding, never raw client bytes.
            plan = LogicalPlan.from_dict(request["value"])
            self.plans.put((request["key"], request["ns"]), plan)
            return {"ok": True}
        if space == "answer":
            fingerprint, question, answer_type = request["key"]
            self.answers.put((fingerprint, question, answer_type),
                             decode_scalar(request["value"]))
            return {"ok": True}
        raise ValueError(f"unknown space {space!r}")

    def _handle_invalidate(self, request: dict) -> dict:
        space = request["space"]
        self._count("invalidations_total")
        if space == "plan":
            ns = request.get("ns")
            dropped = self.plans.drop_fingerprint(ns)
            return {"ok": True, "dropped": dropped}
        if space == "answer":
            dropped = len(self.answers)
            self.answers.clear()
            return {"ok": True, "dropped": dropped}
        raise ValueError(f"unknown space {space!r}")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Counter snapshot: per-space entries/hits/misses/evictions plus
        server-level request counters.  Deterministically ordered and
        wall-clock free, so two identical runs snapshot identically."""
        plan_hits, plan_misses, plan_evictions = self.plans.snapshot()
        ans_hits, ans_misses, ans_evictions = self.answers.snapshot()
        with self._counter_lock:
            counters = {name: self._counters[name]
                        for name in sorted(self._counters)}
        return {
            "protocol": f"{PROTOCOL_NAME}/{PROTOCOL_VERSION}",
            "plan": {"entries": len(self.plans),
                     "capacity": self.plans.capacity,
                     "hits": plan_hits, "misses": plan_misses,
                     "evictions": plan_evictions},
            "answer": {"entries": len(self.answers),
                       "capacity": self.answers.capacity,
                       "hits": ans_hits, "misses": ans_misses,
                       "evictions": ans_evictions},
            **counters,
        }

    def _count(self, name: str) -> None:
        with self._counter_lock:
            self._counters[name] = self._counters.get(name, 0) + 1

    def _say(self, message: str) -> None:
        if not self.quiet:
            print(f"[cachenet] {message}", flush=True)


# ----------------------------------------------------------------------
# CLI (``repro cache-server``)
# ----------------------------------------------------------------------

def build_arg_parser() -> argparse.ArgumentParser:
    from repro.cliargs import positive_int
    parser = argparse.ArgumentParser(
        prog="repro cache-server",
        description="Serve the shared plan/answer cache tier every lane, "
                    "process, and replica can warm from "
                    "(length-prefixed-JSON protocol; see docs/caching.md).")
    parser.add_argument("--bind", default="tcp://127.0.0.1:9009",
                        help="bind address: tcp://host:port (port 0 is "
                             "ephemeral) or unix:///path.sock "
                             "(default: tcp://127.0.0.1:9009)")
    parser.add_argument("--plan-capacity", type=positive_int,
                        default=DEFAULT_PLAN_CAPACITY,
                        help=f"LRU bound of the plan space (default: "
                             f"{DEFAULT_PLAN_CAPACITY})")
    parser.add_argument("--answer-capacity", type=positive_int,
                        default=DEFAULT_ANSWER_CAPACITY,
                        help=f"LRU bound of the answer space (default: "
                             f"{DEFAULT_ANSWER_CAPACITY})")
    parser.add_argument("--plan-file", metavar="PATH", default=None,
                        help="plan-space persistence file (standard "
                             "repro-plan-cache/v1 format): loaded at boot "
                             "if present, written on 'flush' and SIGTERM")
    parser.add_argument("--answer-file", metavar="PATH", default=None,
                        help="answer-space persistence file (standard "
                             "repro-answer-cache/v1 format): loaded at "
                             "boot if present, written on 'flush' and "
                             "SIGTERM")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_arg_parser().parse_args(argv)
    server = CacheTierServer(
        bind=args.bind, plan_capacity=args.plan_capacity,
        answer_capacity=args.answer_capacity, plan_file=args.plan_file,
        answer_file=args.answer_file, quiet=False)
    server.start()
    done = threading.Event()

    def _shutdown(signum: int, _frame: object) -> None:
        print(f"[cachenet] signal {signum}: flushing and stopping",
              flush=True)
        done.set()

    signal.signal(signal.SIGTERM, _shutdown)
    signal.signal(signal.SIGINT, _shutdown)
    done.wait()
    server.stop()
    print("[cachenet] stopped", flush=True)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Client side of the cache tier: RPC plumbing + drop-in caches.

:class:`CacheClient` owns one socket to a :class:`~repro.cachenet.server.
CacheTierServer` — lazy connect, version handshake, bounded connect and
request timeouts, retry-with-backoff, and a cooldown "down" state so a
dead server costs one failed connect per cooldown window instead of one
per lookup.  Transport failures surface as
:class:`~repro.cachenet.protocol.CacheUnavailable`; a protocol/version
mismatch surfaces as :class:`~repro.cachenet.protocol.CacheProtocolError`
and is deliberately *not* retried or absorbed (see the protocol module).

:class:`RemotePlanCache` and :class:`RemoteAnswerCache` subclass the
process-local caches, so everything that takes a ``PlanCache`` /
``AnswerCache`` — the engine, ``execute_batch``, worker lanes, ``save``
persistence — takes them unchanged.  The inherited LRU acts as a local
write-through front: a ``get`` that hits locally never touches the wire;
a local miss asks the tier and installs the reply locally; a ``put``
installs locally then forwards best-effort.  When the tier is
unreachable both degrade to plain local caches, counting each degraded
operation in ``cachenet_fallbacks`` — a down server slows warm-up, it
never fails a query.
"""

from __future__ import annotations

import socket
import threading
import time

from repro.cachenet.protocol import (CacheUnavailable, FrameError,
                                     check_hello_reply, hello_request,
                                     parse_cache_url, read_frame,
                                     write_frame)
from repro.core.answer_cache import MISS, AnswerCache, AnswerKey
from repro.core.batch import PlanCache
from repro.core.plan import LogicalPlan
from repro.data.datatypes import decode_scalar, encode_scalar
from repro.obs.context import current_trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import StageTrace


class CacheClient:
    """One connection to the cache tier, shared by both remote caches.

    Thread-safe: the strict request/response protocol is serialized
    under one lock, so any number of engine threads may share a client.
    All timeouts are bounded; *retries* transport failures are absorbed
    with *backoff* sleeps in between, after which the client enters a
    *down_cooldown*-second down state in which every call fails fast
    with :class:`CacheUnavailable` (no connect attempts) — then the next
    call probes again.
    """

    def __init__(self, url: str, connect_timeout: float = 0.5,
                 request_timeout: float = 2.0, retries: int = 2,
                 backoff: float = 0.05, down_cooldown: float = 1.0,
                 metrics: MetricsRegistry | None = None):
        self.url = url
        self.connect_timeout = connect_timeout
        self.request_timeout = request_timeout
        self.retries = retries
        self.backoff = backoff
        self.down_cooldown = down_cooldown
        self.metrics = metrics
        self._family, self._address = parse_cache_url(url)
        self._lock = threading.RLock()
        self._sock: socket.socket | None = None
        self._down_until = 0.0
        self._closed = False

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def _connect(self,
                 request_timeout: float | None = None) -> socket.socket:
        if self._family == "unix":
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.connect_timeout)
            try:
                sock.connect(self._address)
            except OSError:
                sock.close()
                raise
        else:
            # create_connection resolves hostnames and handles IPv4 and
            # IPv6 literals alike (cleaning up after itself on failure).
            sock = socket.create_connection(
                self._address, timeout=self.connect_timeout)
        sock.settimeout(request_timeout if request_timeout is not None
                        else self.request_timeout)
        try:
            write_frame(sock, hello_request())
            reply = read_frame(sock)
        except (OSError, FrameError):
            sock.close()
            raise
        if reply is None:
            sock.close()
            raise ConnectionError(f"cache server at {self.url} closed the "
                                  f"connection during the handshake")
        try:
            check_hello_reply(reply, self.url)  # CacheProtocolError is
        except Exception:                       # terminal: don't retry it
            sock.close()
            self._closed = True
            raise
        return sock

    def _drop_socket(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def request(self, payload: dict, *, timeout: float | None = None,
                retries: int | None = None) -> dict:
        """One RPC round trip; retries transport failures, never protocol
        errors.  Raises :class:`CacheUnavailable` when the tier cannot be
        reached (including while in the post-failure down state).

        The down/closed checks run *before* the socket lock, and the
        backoff sleeps run *outside* it, so while one thread probes a
        dead server its peers fail fast in parallel instead of queueing
        behind the probe; a reconnect attempt additionally pre-marks the
        client down (cleared on success) so even threads that raced past
        the entry check bail out on their next call.

        *timeout*/*retries* override the per-request socket timeout and
        retry count for this one call — the bounded-scrape path
        (:meth:`~repro.session.Session.cachenet_stats`) uses them so a
        hung server can never stall a ``/metrics`` scrape for the full
        default budget.

        When a distributed trace is active on this thread
        (:func:`~repro.obs.context.current_trace`), the request carries
        the trace as a ``trace`` field and the completed round trip is
        recorded as a ``cachenet:<op>`` span in that query's telemetry.
        """
        if self._closed:
            raise CacheUnavailable(
                f"cache client for {self.url} is closed")
        if time.monotonic() < self._down_until:
            raise CacheUnavailable(
                f"cache server at {self.url} is down (cooling off)")
        op = payload.get("op")
        active = current_trace() if op and op != "hello" else None
        if active is not None:
            payload = {**payload, "trace": active.context.to_dict()}
        attempts = (self.retries if retries is None else retries) + 1
        last_error: Exception | None = None
        for attempt in range(attempts):
            if attempt:
                time.sleep(self.backoff * attempt)
            with self._lock:
                if self._closed:
                    raise CacheUnavailable(
                        f"cache client for {self.url} is closed")
                try:
                    if self._sock is None:
                        # Probing: concurrent callers see the down mark
                        # and fail fast while this thread reconnects.
                        self._down_until = (time.monotonic()
                                            + self.down_cooldown)
                        self._sock = self._connect(timeout)
                        self._down_until = 0.0
                    self._sock.settimeout(
                        timeout if timeout is not None
                        else self.request_timeout)
                    started = time.perf_counter()
                    try:
                        write_frame(self._sock, payload)
                    except FrameError as exc:
                        # Raised by the local size check before any bytes
                        # hit the wire: the payload itself violates the
                        # protocol, so no retry can succeed and the
                        # (healthy) connection is worth keeping.
                        raise CacheUnavailable(
                            f"request to {self.url} exceeds the protocol "
                            f"frame limit: {exc}") from exc
                    reply = read_frame(self._sock)
                    if reply is None:
                        raise ConnectionError(
                            f"cache server at {self.url} closed the "
                            f"connection mid-request")
                    elapsed = time.perf_counter() - started
                    if self.metrics is not None:
                        self.metrics.observe("cachenet_rpc_latency",
                                             elapsed)
                    if active is not None:
                        self._record_rpc_span(active, op, elapsed, reply)
                    return reply
                except (OSError, FrameError, ConnectionError) as exc:
                    last_error = exc
                    self._drop_socket()
                    if self.metrics is not None:
                        self.metrics.increment("cachenet_rpc_errors")
        self._down_until = time.monotonic() + self.down_cooldown
        raise CacheUnavailable(
            f"cache server at {self.url} unreachable after "
            f"{attempts} attempts: {last_error}") from last_error

    @staticmethod
    def _record_rpc_span(active, op: str, elapsed: float,
                         reply: dict) -> None:
        """One ``cachenet:<op>`` child span into the active query's
        telemetry.  These spans are locality-dependent (they exist only
        when the local front cache missed) and are dropped from the
        canonical cross-backend form, so wall-clock notes are fine here.
        """
        notes: dict = {"op": op,
                       "trace_id": active.context.trace_id}
        server_ms = reply.get("server_ms")
        if isinstance(server_ms, (int, float)):
            notes["server_ms"] = server_ms
        try:
            active.telemetry.add_span(StageTrace(
                stage=f"cachenet:{op}",
                duration_ms=elapsed * 1000.0, notes=notes))
        except Exception:  # noqa: BLE001 - tracing must never fail an RPC
            pass

    def ensure_connected(self) -> None:
        """Probe the tier now (connect + handshake).

        Raises :class:`CacheUnavailable` when the server is down and
        :class:`~repro.cachenet.protocol.CacheProtocolError` on a version
        mismatch — the session uses this to distinguish "degrade quietly"
        from "fail loudly" at construction time.
        """
        self.request({"op": "stats"})

    def close(self) -> None:
        with self._lock:
            self._drop_socket()
            self._closed = True

    # ------------------------------------------------------------------
    # Typed operations
    # ------------------------------------------------------------------

    def get_plan(self, ns: str, query: str) -> dict | None:
        """The tier's plan dict for (*ns*, *query*), or ``None``."""
        reply = self.request({"op": "get", "space": "plan", "ns": ns,
                              "key": query})
        return reply.get("value") if reply.get("hit") else None

    def put_plan(self, ns: str, query: str, plan_dict: dict) -> None:
        self.request({"op": "put", "space": "plan", "ns": ns,
                      "key": query, "value": plan_dict})

    def get_answer(self, key: AnswerKey) -> tuple[bool, object]:
        """``(hit, decoded answer)`` for *key* from the answer space."""
        reply = self.request({"op": "get", "space": "answer",
                              "key": list(key)})
        if not reply.get("hit"):
            return False, None
        return True, decode_scalar(reply.get("value"))

    def put_answer(self, key: AnswerKey, answer: object) -> None:
        self.request({"op": "put", "space": "answer", "key": list(key),
                      "value": encode_scalar(answer)})

    def mget(self, space: str, keys: list, ns: str | None = None) -> list:
        request = {"op": "mget", "space": space,
                   "keys": [{"key": key} for key in keys]}
        if ns is not None:
            request["ns"] = ns
        return self.request(request).get("results", [])

    def mput(self, space: str, entries: list[dict],
             ns: str | None = None) -> int:
        request = {"op": "mput", "space": space, "entries": entries}
        if ns is not None:
            request["ns"] = ns
        return self.request(request).get("stored", 0)

    def invalidate_plans(self, ns: str) -> int:
        """Drop the tier's plans for lake namespace *ns*; returns count."""
        reply = self.request({"op": "invalidate", "space": "plan",
                              "ns": ns})
        return reply.get("dropped", 0)

    def stats(self, timeout: float | None = None,
              retries: int | None = None) -> dict:
        """The server's own STATS snapshot (entries, hits, counters).

        *timeout*/*retries* bound this one call — metrics scrapes pass a
        small budget so a hung server degrades the scrape instead of
        stalling it.
        """
        reply = self.request({"op": "stats"}, timeout=timeout,
                             retries=retries)
        return reply.get("stats", {})

    def flush(self) -> dict:
        """Ask the server to persist both spaces now."""
        return self.request({"op": "flush"})


class _RemoteCacheMixin:
    """Shared bookkeeping for the two remote drop-ins."""

    _client: CacheClient
    _metrics: MetricsRegistry | None

    def _metric(self, name: str) -> None:
        if self._metrics is not None:
            self._metrics.increment(name)

    @property
    def client(self) -> CacheClient:
        return self._client


class RemotePlanCache(_RemoteCacheMixin, PlanCache):
    """A :class:`PlanCache` backed by the shared tier.

    Keys stay ``(query, lake fingerprint)``; the fingerprint doubles as
    the tier namespace, so invalidating a changed lake drops exactly its
    plans.  Plans fetched from the tier re-enter through
    :meth:`LogicalPlan.from_dict` — the wire carries dicts, the cache
    holds validated IR.
    """

    def __init__(self, client: CacheClient, capacity: int = 128,
                 metrics: MetricsRegistry | None = None):
        super().__init__(capacity)
        self._client = client
        self._metrics = metrics

    def _local_put(self, key: tuple[str, str], plan: LogicalPlan) -> None:
        """Plain LRU insert: no remote forwarding, no hit/miss counting
        (used to install tier replies without echoing them back)."""
        with self._lock:
            self._entries[key] = plan
            self._entries.move_to_end(key)
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def get(self, key: tuple[str, str]) -> LogicalPlan | None:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._hits += 1
                return self._entries[key]
        query, fingerprint = key
        try:
            value = self._client.get_plan(ns=fingerprint, query=query)
        except CacheUnavailable:
            self._metric("cachenet_fallbacks")
            value = None
        else:
            self._metric("cachenet_hits" if value is not None
                         else "cachenet_misses")
        if value is not None:
            plan = LogicalPlan.from_dict(value)
            self._local_put(key, plan)
            with self._lock:
                self._hits += 1
            return plan
        with self._lock:
            self._misses += 1
        return None

    def put(self, key: tuple[str, str], plan: LogicalPlan) -> None:
        self._local_put(key, plan)
        query, fingerprint = key
        try:
            self._client.put_plan(ns=fingerprint, query=query,
                                  plan_dict=plan.to_dict())
        except CacheUnavailable:
            self._metric("cachenet_fallbacks")


class RemoteAnswerCache(_RemoteCacheMixin, AnswerCache):
    """An :class:`AnswerCache` backed by the shared tier.

    Keys are ``(object content fingerprint, question, answer type)`` —
    self-invalidating, so the tier needs no answer-space invalidation
    protocol: changed content produces new keys.  Values cross the wire
    through :func:`encode_scalar`/:func:`decode_scalar`, the same codec
    the file persistence uses.
    """

    def __init__(self, client: CacheClient, capacity: int = 65536,
                 metrics: MetricsRegistry | None = None):
        super().__init__(capacity)
        self._client = client
        self._metrics = metrics

    def _local_put(self, key: AnswerKey, answer: object) -> None:
        """Plain LRU insert; see :meth:`RemotePlanCache._local_put`."""
        with self._lock:
            self._entries[key] = answer
            self._entries.move_to_end(key)
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def get(self, key: AnswerKey) -> object:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._hits += 1
                return self._entries[key]
        try:
            hit, answer = self._client.get_answer(key)
        except CacheUnavailable:
            self._metric("cachenet_fallbacks")
            hit, answer = False, None
        else:
            self._metric("cachenet_hits" if hit else "cachenet_misses")
        if hit:
            self._local_put(key, answer)
            with self._lock:
                self._hits += 1
            return answer
        with self._lock:
            self._misses += 1
        return MISS

    def put(self, key: AnswerKey, answer: object) -> None:
        self._local_put(key, answer)
        try:
            self._client.put_answer(key, answer)
        except CacheUnavailable:
            self._metric("cachenet_fallbacks")

"""Shared argparse value validators for the ``repro`` CLI and subcommands."""

from __future__ import annotations

import argparse


def positive_int(text: str) -> int:
    value = int(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {text!r}")
    return value


def positive_float(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"must be a positive number, got {text!r}")
    return value

"""Shared argparse value validators for the ``repro`` CLI and subcommands."""

from __future__ import annotations

import argparse


def positive_int(text: str) -> int:
    value = int(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {text!r}")
    return value


def positive_float(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"must be a positive number, got {text!r}")
    return value


def backend_name(text: str) -> str:
    """One registered execution-backend name (``repro.exec``)."""
    from repro.exec import backend_names
    if text not in backend_names():
        raise argparse.ArgumentTypeError(
            f"unknown backend {text!r}; available: "
            f"{', '.join(backend_names())}")
    return text


def backend_list(text: str) -> tuple[str, ...]:
    """Comma-separated execution-backend names, each validated."""
    names = tuple(backend_name(part.strip())
                  for part in text.split(",") if part.strip())
    if not names:
        raise argparse.ArgumentTypeError(
            f"no backend names in {text!r}")
    return names

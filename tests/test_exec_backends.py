"""The execution-backend subsystem: registry, parity, and plan shipping.

The contract under test is the one the backend matrix advertises:
serial, thread, and process backends produce identical results for the
same workload — :meth:`BatchReport.canonical_results` byte-identical
under ``json.dumps`` — and differ only in where the work runs.
"""

import json

import pytest

from repro.benchmarks.workloads import workload, workload_datasets
from repro.core.batch import BatchReport
from repro.core.plan import ERROR_PHASES, ErrorEvent
from repro.datasets import LakeSpec, load_lake
from repro.exec import (BackendError, ProcessBackend, SerialBackend,
                        ThreadBackend, backend_names, create_backend)
from repro.session import Session


def canonical(report: BatchReport) -> str:
    return json.dumps(report.canonical_results(), sort_keys=True)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------


def test_registry_has_builtin_backends():
    assert set(backend_names()) >= {"serial", "thread", "process"}


def test_create_backend_instances():
    assert isinstance(create_backend("serial"), SerialBackend)
    assert isinstance(create_backend("thread"), ThreadBackend)
    assert isinstance(create_backend("process"), ProcessBackend)


def test_create_backend_unknown_name_lists_available():
    with pytest.raises(BackendError) as excinfo:
        create_backend("quantum")
    message = str(excinfo.value)
    assert "quantum" in message
    for name in backend_names():
        assert name in message


def test_session_rejects_non_backend_object():
    session = Session("rotowire")
    with pytest.raises(TypeError):
        session.batch(["How many players are taller than 200?"],
                      backend=object())


# ----------------------------------------------------------------------
# Cross-backend parity (the acceptance contract)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("dataset", workload_datasets())
def test_backends_produce_identical_results(dataset):
    queries = workload(dataset, repeats=2)
    reports = {}
    for backend, workers in (("serial", 1), ("thread", 3), ("process", 3)):
        with Session(load_lake(dataset)) as session:
            reports[backend] = session.batch(queries, workers=workers,
                                             backend=backend)
    assert reports["serial"].num_errors == 0
    payload = canonical(reports["serial"])
    assert canonical(reports["thread"]) == payload
    assert canonical(reports["process"]) == payload
    assert reports["serial"].backend == "serial"
    assert reports["thread"].backend == "thread"
    assert reports["process"].backend == "process"


def test_default_backend_follows_worker_count(rotowire_lake):
    session = Session(rotowire_lake)
    queries = ["How many players are taller than 200?"]
    assert session.batch(queries).backend == "serial"
    assert session.batch(queries, workers=2).backend == "thread"


def test_explicit_backend_instance_is_used(rotowire_lake):
    backend = ThreadBackend()
    report = Session(rotowire_lake).batch(
        ["How many players are taller than 200?"], workers=1,
        backend=backend)
    assert report.backend == "thread"


# ----------------------------------------------------------------------
# Process backend specifics
# ----------------------------------------------------------------------


def test_process_backend_needs_lake_spec(rotowire_lake):
    # Lakes assembled by hand (the conftest fixtures use as_lake())
    # carry no generation recipe, so workers could not rebuild them.
    assert rotowire_lake.spec is None
    session = Session(rotowire_lake)
    with pytest.raises(BackendError) as excinfo:
        session.batch(["How many players are taller than 200?"],
                      backend="process")
    assert "load_lake" in str(excinfo.value)


def test_process_backend_ships_plans_both_ways():
    queries = workload("rotowire", repeats=1)
    with Session("rotowire") as session:
        # Cold process batch: every plan is synthesized in a worker, yet
        # the parent cache ends up warm (fresh plans ship back).
        assert len(session.plan_cache) == 0
        cold = session.batch(queries, workers=2, backend="process")
        assert cold.num_errors == 0
        assert len(session.plan_cache) == len(set(queries))

    with Session("rotowire") as warm_session:
        # Pre-warm the parent cache in-process, then batch over fresh
        # worker lanes: the shipped plans mean no worker ever plans.
        warm_session.batch(queries, backend="serial")
        report = warm_session.batch(queries, workers=2, backend="process")
        assert report.num_errors == 0
        assert report.cache_misses == 0
        assert all(stat.plan_cache_hit for stat in report.stats)


def test_process_backend_ships_answers_both_ways():
    query = "How many paintings are depicting a sword?"
    with Session("artwork") as session:
        # Cold process batch: inference happens in a worker, yet the
        # fresh answers land in the parent cache (shipped back).
        assert len(session.answer_cache) == 0
        session.batch([query], workers=1, backend="process")
        parent_answers = len(session.answer_cache)
        assert parent_answers > 0

        # A session pre-warmed with those answers (the restart path:
        # --answer-cache-file) ships them into fresh worker lanes, so no
        # worker re-runs inference.
        with Session("artwork",
                     answer_cache=session.answer_cache) as restarted:
            report = restarted.batch([query], workers=1, backend="process")
    assert report.num_errors == 0
    assert report.answer_misses == 0
    assert report.answer_hits > 0


def test_process_worker_lanes_stay_warm_across_batches():
    queries = workload("rotowire", repeats=1)
    with Session("rotowire") as session:
        cold = session.batch(queries, workers=2, backend="process")
        warm = session.batch(queries, workers=2, backend="process")
    assert cold.num_errors == warm.num_errors == 0
    # Deterministic query->lane affinity: the warm pass must behave like
    # a serial warm pass (100% plan hits, zero answer misses).
    assert warm.cache_misses == 0
    assert warm.answer_misses == 0
    assert warm.answer_hits > 0


def test_shared_backend_rebuilds_lanes_for_same_shaped_lake():
    # Two seeds of one dataset share a *shape* fingerprint (plans
    # transfer) but differ in content; a backend reused across sessions
    # must rebuild its lanes, never serve answers about the first lake.
    query = "Who is the tallest player?"
    backend = ProcessBackend()
    try:
        answers = {}
        for seed in (1, 2):
            with Session(load_lake("rotowire", seed=seed)) as session:
                serial = session.query(query)
                report = session.batch([query], workers=1, backend=backend)
                assert report.num_errors == 0
                assert report.results[0].value == serial.value
                answers[seed] = serial.value
        assert answers[1] != answers[2]  # the lakes genuinely differ
    finally:
        backend.close()


def test_session_close_is_idempotent():
    session = Session("rotowire")
    session.batch(["How many players are taller than 200?"],
                  backend="process")
    session.close()
    session.close()
    # The session stays usable after close (lanes are rebuilt lazily).
    report = session.batch(["How many players are taller than 200?"],
                           backend="process")
    assert report.num_errors == 0
    session.close()


# ----------------------------------------------------------------------
# Worker runtime, driven in-process (the pipe contract itself)
# ----------------------------------------------------------------------


def make_worker_payload(session: Session, plans=()) -> dict:
    return {
        "lake_spec": session.lake.spec.to_dict(),
        "content_fingerprint": session.lake.content_fingerprint(),
        "brain": session.brain,
        "config": session.config,
        "planner": None,
        "mapper": None,
        "executor": None,
        "plan_cache_capacity": 128,
        "answer_cache_capacity": 1024,
        "plans": list(plans),
        "answers": [],
    }


def test_worker_runtime_roundtrip(monkeypatch):
    from repro.exec import procworker
    monkeypatch.setattr(procworker, "_STATE", {})
    session = Session("rotowire")
    query = "How many players are taller than 200?"
    procworker.initialize_worker(make_worker_payload(session))

    payload = procworker.run_worker_query(query)
    assert payload["ok"]
    assert payload["fresh_plan"] is not None  # synthesized, ships back
    assert payload["plan_delta"][1] == 1      # one miss
    result = json.loads(json.dumps(payload["result"]))  # JSON-shaped
    assert result["kind"] == "value"
    assert result["value"] == session.query(query).value

    warm = procworker.run_worker_query(query)
    assert warm["fresh_plan"] is None         # served from the local cache
    assert warm["plan_delta"][0] == 1         # one hit


def test_worker_initializer_seeds_shipped_plans(monkeypatch):
    from repro.exec import procworker
    monkeypatch.setattr(procworker, "_STATE", {})
    query = "How many players are taller than 200?"
    session = Session("rotowire")
    plan = session.query(query).trace.logical_plan
    procworker.initialize_worker(make_worker_payload(
        session, plans=[{"query": query, "plan": plan.to_dict()}]))
    payload = procworker.run_worker_query(query)
    assert payload["ok"]
    assert payload["fresh_plan"] is None      # never planned: shipped plan
    assert payload["plan_delta"][0] == 1


def test_worker_initializer_rejects_fingerprint_mismatch(monkeypatch):
    from repro.exec import procworker
    monkeypatch.setattr(procworker, "_STATE", {})
    session = Session("rotowire")
    payload = make_worker_payload(session)
    payload["content_fingerprint"] = "not-the-real-lake"
    with pytest.raises(RuntimeError) as excinfo:
        procworker.initialize_worker(payload)
    assert "not deterministic" in str(excinfo.value)


def test_worker_crash_payload_shape(monkeypatch):
    from _poison import POISON_MARKER, PoisonPlanner
    from repro.exec import procworker
    from repro.llm.brain import SimulatedBrain
    monkeypatch.setattr(procworker, "_STATE", {})
    session = Session("rotowire", planner=PoisonPlanner(SimulatedBrain()))
    payload = make_worker_payload(session)
    payload["planner"] = session.planner
    procworker.initialize_worker(payload)
    crash = procworker.run_worker_query(f"{POISON_MARKER} anything")
    assert not crash["ok"]
    assert "poisoned query" in crash["error"]
    assert "RuntimeError" in crash["error"]
    assert "traceback" in crash


# ----------------------------------------------------------------------
# LakeSpec
# ----------------------------------------------------------------------


def test_lake_spec_roundtrip_and_deterministic_build():
    spec = LakeSpec(dataset="rotowire", seed=3, scale=0.5)
    assert LakeSpec.from_dict(spec.to_dict()) == spec
    assert spec.build().fingerprint() == spec.build().fingerprint()


def test_load_lake_attaches_spec():
    lake = load_lake("artwork", seed=5, scale=0.25)
    assert lake.spec == LakeSpec(dataset="artwork", seed=5, scale=0.25)
    assert lake.spec.build().fingerprint() == lake.fingerprint()


# ----------------------------------------------------------------------
# Worker error events in the plan IR
# ----------------------------------------------------------------------


def test_worker_failure_event_shape():
    assert "worker" in ERROR_PHASES
    event = ErrorEvent.worker_failure("lane 0 died")
    assert event.phase == "worker"
    assert event.step_index is None
    assert not event.recovered
    assert ErrorEvent.from_dict(event.to_dict()) == event

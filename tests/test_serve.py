"""The query service end-to-end: submit/poll/stream over real sockets,
admission control, failure paths, and graceful drain.

Each test boots a real server (:class:`~repro.serve.app.ServerHandle`,
ephemeral port) over the session-scoped rotowire lake and talks plain
``http.client`` — no test doubles between the suite and the wire
format.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading
import time

import pytest

from repro.llm.brain import SimulatedBrain
from repro.serve.app import ServeConfig, ServerHandle
from repro.session import Session

POLL_S = 0.01
DEADLINE_S = 30.0


@pytest.fixture
def serve(rotowire_lake):
    """Factory fixture: boot a server with given knobs, drain at teardown."""
    handles = []

    def boot(session: Session | None = None, **config) -> ServerHandle:
        config.setdefault("port", 0)
        handle = ServerHandle(session or Session(rotowire_lake),
                              ServeConfig(**config)).start()
        handles.append(handle)
        return handle

    yield boot
    for handle in handles:
        if not handle.server._stopped.is_set():
            handle.drain(timeout=60)


class Client:
    """Minimal keep-alive JSON client for the tests."""

    def __init__(self, handle: ServerHandle, token: str = "test"):
        self.conn = http.client.HTTPConnection("127.0.0.1", handle.port,
                                               timeout=30)
        self.token = token

    def request(self, method: str, path: str, body: dict | None = None):
        self.conn.request(
            method, path,
            body=json.dumps(body) if body is not None else None,
            headers={"x-api-token": self.token})
        response = self.conn.getresponse()
        text = response.read().decode("utf-8")
        return (response.status, dict(response.getheaders()),
                json.loads(text) if text.strip() else {})

    def poll_done(self, job_id: str) -> dict:
        deadline = time.perf_counter() + DEADLINE_S
        while time.perf_counter() < deadline:
            status, _, body = self.request("GET", f"/queries/{job_id}")
            assert status == 200
            if body["status"] in ("done", "cancelled"):
                return body
            time.sleep(POLL_S)
        raise AssertionError(f"job {job_id} did not finish in {DEADLINE_S}s")

    def close(self) -> None:
        self.conn.close()


def test_submit_poll_roundtrip_matches_direct_query(serve, rotowire_lake):
    handle = serve()
    client = Client(handle)
    status, _, body = client.request(
        "POST", "/queries", {"query": "How many players are taller than 200?"})
    assert status == 202
    assert body["status"] == "queued"
    assert body["links"]["self"] == f"/queries/{body['id']}"
    done = client.poll_done(body["id"])
    assert done["ok"] is True
    assert done["result"]["kind"] == "value"
    expected = Session(rotowire_lake).query(
        "How many players are taller than 200?")
    assert done["result"]["value"] == expected.to_dict()["value"]
    # the polled result is the full lossless IR, trace included
    assert done["result"]["trace"]["telemetry"]["spans"]
    client.close()


def test_event_stream_carries_lifecycle_and_spans(serve):
    handle = serve()
    client = Client(handle)
    _, _, body = client.request(
        "POST", "/queries", {"query": "Who is the tallest player?"})
    client.poll_done(body["id"])
    # Stream after completion: the full log replays, then the stream ends.
    stream = http.client.HTTPConnection("127.0.0.1", handle.port, timeout=30)
    stream.request("GET", f"/queries/{body['id']}/events")
    response = stream.getresponse()
    assert response.status == 200
    assert response.getheader("Content-Type") == "application/x-ndjson"
    events = [json.loads(line)
              for line in response.read().decode("utf-8").splitlines()]
    kinds = [event["event"] for event in events]
    assert kinds[0] == "queued" and kinds[1] == "started"
    assert kinds[-1] == "done"
    stages = [event["span"]["stage"] for event in events
              if event["event"] == "span"]
    assert "planning" in stages
    assert any(stage.startswith("operator:") for stage in stages)
    stream.close()
    client.close()


def test_event_stream_is_live_during_execution(serve, rotowire_lake):
    # A slow brain keeps the query running while the stream is attached,
    # so at least the early spans must arrive before the job finishes.
    session = Session(rotowire_lake,
                      brain=SimulatedBrain(latency_seconds=0.15))
    handle = serve(session, workers=1)
    client = Client(handle)
    _, _, body = client.request(
        "POST", "/queries", {"query": "Who is the tallest player?"})
    stream = http.client.HTTPConnection("127.0.0.1", handle.port, timeout=30)
    stream.request("GET", f"/queries/{body['id']}/events")
    response = stream.getresponse()
    first = json.loads(response.readline())
    assert first["event"] == "queued"
    # Reading incrementally: a span line arrives while still running.
    saw_span_live = False
    while True:
        event = json.loads(response.readline())
        if event["event"] == "span":
            status, _, polled = client.request(
                "GET", f"/queries/{body['id']}")
            saw_span_live = saw_span_live or polled["status"] == "running"
        if event["event"] == "done":
            break
    assert saw_span_live
    stream.close()
    client.close()


def test_full_queue_rejects_with_429_and_retry_after(serve, rotowire_lake):
    session = Session(rotowire_lake,
                      brain=SimulatedBrain(latency_seconds=0.2))
    handle = serve(session, workers=1, queue_depth=1, per_client_limit=10,
                   retry_after_s=2.0)
    client = Client(handle)
    # Occupy the single worker + fill the queue slot, then overflow.
    responses = [client.request(
        "POST", "/queries", {"query": "Who is the tallest player?"})
        for _ in range(6)]
    statuses = [status for status, _, _ in responses]
    assert 202 in statuses and 429 in statuses
    rejected = [(headers, body) for status, headers, body in responses
                if status == 429]
    for headers, body in rejected:
        assert headers["Retry-After"] == "2"
        assert body["error"] in ("queue_full", "client_limit")
    # No 5xx, and every accepted job resolves.
    assert all(status in (202, 429) for status in statuses)
    for status, _, body in responses:
        if status == 202:
            client.poll_done(body["id"])
    metrics = json.loads(json.dumps(
        client.request("GET", "/metrics")[2]))
    assert metrics["counters"]["serve_admission_rejections_total"] == len(
        rejected)
    client.close()


def test_per_client_limits_are_isolated_between_clients(serve,
                                                        rotowire_lake):
    session = Session(rotowire_lake,
                      brain=SimulatedBrain(latency_seconds=0.2))
    handle = serve(session, workers=1, queue_depth=10, per_client_limit=1)
    alice, bob = Client(handle, "alice"), Client(handle, "bob")
    status_a1, _, body_a1 = alice.request(
        "POST", "/queries", {"query": "Who is the tallest player?"})
    status_a2, _, body_a2 = alice.request(
        "POST", "/queries", {"query": "Who is the tallest player?"})
    # Alice is at her limit; Bob is not affected by Alice's occupancy.
    status_b, _, body_b = bob.request(
        "POST", "/queries", {"query": "Who is the tallest player?"})
    assert status_a1 == 202
    assert status_a2 == 429 and body_a2["error"] == "client_limit"
    assert status_b == 202
    alice.poll_done(body_a1["id"])
    bob.poll_done(body_b["id"])
    # With her job resolved, Alice is admitted again.
    status_a3, _, body_a3 = alice.request(
        "POST", "/queries", {"query": "Who is the tallest player?"})
    assert status_a3 == 202
    alice.poll_done(body_a3["id"])
    alice.close()
    bob.close()


def test_job_timeout_resolves_with_worker_error_event(serve, rotowire_lake):
    session = Session(rotowire_lake,
                      brain=SimulatedBrain(latency_seconds=0.5))
    # Server default is generous; the request tightens its own budget
    # (a requested timeout can only tighten, never loosen the default).
    handle = serve(session, workers=1, job_timeout_s=30.0)
    client = Client(handle)
    _, _, body = client.request(
        "POST", "/queries",
        {"query": "Who is the tallest player?", "timeout_s": 0.05})
    done = client.poll_done(body["id"])
    assert done["ok"] is False
    assert done["result"]["kind"] == "error"
    errors = done["result"]["trace"]["errors"]
    assert len(errors) == 1
    assert errors[0]["phase"] == "worker"
    assert "timed out" in errors[0]["message"]
    assert errors[0]["worker_id"] == 0
    # The worker lane was replaced: a follow-up on the default budget
    # still succeeds even though the timed-out engine was abandoned.
    _, _, retry = client.request(
        "POST", "/queries", {"query": "Who is the tallest player?"})
    assert client.poll_done(retry["id"])["ok"] is True
    metrics = client.request("GET", "/metrics")[2]
    assert metrics["counters"]["serve_job_timeouts_total"] == 1
    client.close()


def test_cancel_queued_job_and_cancel_conflicts(serve, rotowire_lake):
    session = Session(rotowire_lake,
                      brain=SimulatedBrain(latency_seconds=0.3))
    handle = serve(session, workers=1, queue_depth=10)
    client = Client(handle)
    _, _, running = client.request(
        "POST", "/queries", {"query": "Who is the tallest player?"})
    _, _, queued = client.request(
        "POST", "/queries", {"query": "Who is the tallest player?"})
    status, _, body = client.request("DELETE", f"/queries/{queued['id']}")
    assert status == 200 and body["status"] == "cancelled"
    done = client.poll_done(queued["id"])
    assert done["status"] == "cancelled"
    finished = client.poll_done(running["id"])
    assert finished["ok"] is True
    # Finished jobs can no longer be cancelled.
    status, _, body = client.request("DELETE", f"/queries/{running['id']}")
    assert status == 409
    assert client.request("DELETE", "/queries/nope")[0] == 404
    client.close()


def test_graceful_drain_finishes_inflight_and_flushes_caches(
        serve, rotowire_lake, tmp_path):
    plan_file = tmp_path / "plans.json"
    answer_file = tmp_path / "answers.json"
    session = Session(rotowire_lake,
                      brain=SimulatedBrain(latency_seconds=0.1))
    handle = serve(session, workers=2,
                   plan_cache_file=str(plan_file),
                   answer_cache_file=str(answer_file))
    client = Client(handle)
    submitted = [client.request(
        "POST", "/queries", {"query": "How many players are taller than 200?"})
        for _ in range(3)]
    assert all(status == 202 for status, _, _ in submitted)
    drained = handle.drain(timeout=60)
    assert drained is True
    # Drain stopped admission but resolved everything already accepted,
    # and the caches hit their persistence files.
    assert plan_file.exists() and answer_file.exists()
    plans = json.loads(plan_file.read_text())
    assert plans["entries"]
    manager = handle.server.jobs
    assert all(job.finished for job in manager.jobs())
    assert all(job.status == "done" for job in manager.jobs())
    client.close()


def test_draining_server_rejects_submits_with_503(serve, rotowire_lake):
    handle = serve(Session(rotowire_lake))
    client = Client(handle)
    handle.server.jobs.admission.start_draining()
    status, _, body = client.request(
        "POST", "/queries", {"query": "Who is the tallest player?"})
    assert status == 503 and body["error"] == "draining"
    status, _, body = client.request("GET", "/healthz")
    assert status == 200 and body["status"] == "draining"
    client.close()


def test_concurrent_submits_from_two_clients_all_resolve(serve,
                                                         rotowire_lake):
    handle = serve(Session(rotowire_lake), workers=2, queue_depth=32,
                   per_client_limit=4)
    results: dict[str, list] = {"a": [], "b": []}

    def hammer(token: str) -> None:
        client = Client(handle, token)
        for _ in range(4):
            status, _, body = client.request(
                "POST", "/queries",
                {"query": "How many players are taller than 200?"})
            assert status in (202, 429)
            if status == 202:
                results[token].append(client.poll_done(body["id"]))
        client.close()

    threads = [threading.Thread(target=hammer, args=(token,))
               for token in ("a", "b")]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    finished = results["a"] + results["b"]
    assert finished
    assert all(done["ok"] for done in finished)
    values = {done["result"]["value"] for done in finished}
    assert len(values) == 1  # every client saw the same answer


def test_http_errors_and_validation(serve):
    handle = serve()
    client = Client(handle)
    assert client.request("GET", "/nope")[0] == 404
    assert client.request("PUT", "/queries/abc")[0] == 405
    status, _, body = client.request("POST", "/queries", {"query": ""})
    assert status == 400
    status, _, body = client.request("POST", "/queries",
                                     {"query": "x", "bogus": 1})
    assert status == 400 and "bogus" in body["detail"]
    status, _, body = client.request(
        "POST", "/queries", {"query": "x", "timeout_s": -1})
    assert status == 400
    # Raw garbage body
    client.conn.request("POST", "/queries", body=b"not json",
                        headers={"Content-Type": "application/json"})
    response = client.conn.getresponse()
    response.read()
    assert response.status == 400
    client.close()


def test_metrics_endpoint_matches_render_snapshot(serve, rotowire_lake):
    from repro.obs import render_snapshot
    session = Session(rotowire_lake)
    handle = serve(session)
    client = Client(handle)
    _, _, body = client.request(
        "POST", "/queries", {"query": "Who is the tallest player?"})
    client.poll_done(body["id"])
    raw = http.client.HTTPConnection("127.0.0.1", handle.port, timeout=30)
    raw.request("GET", "/metrics")
    text = raw.getresponse().read().decode("utf-8")
    # Byte-identical to the shared helper over the same registry state.
    assert text == render_snapshot(session.metrics())
    snapshot = json.loads(text)
    assert snapshot["counters"]["queries_total"] == 1
    assert "serve_queue_wait" in snapshot["histograms"]
    assert "serve_job_latency" in snapshot["histograms"]
    raw.close()
    client.close()


def test_shutdown_flushes_caches_exactly_once(serve, rotowire_lake,
                                              tmp_path, capsys):
    """Every shutdown path converges on one flush: a drain racing a
    signal (or a second explicit drain) must not save the caches twice.
    """
    plan_file = tmp_path / "plans.json"
    session = Session(rotowire_lake)
    handle = serve(session, plan_cache_file=str(plan_file))
    client = Client(handle)
    _, _, body = client.request(
        "POST", "/queries", {"query": "How many players are taller than 200?"})
    client.poll_done(body["id"])
    client.close()

    saves = []
    original = Session.save_plan_cache

    def counting_save(self, path):
        saves.append(path)
        return original(self, path)

    Session.save_plan_cache = counting_save
    try:
        assert handle.drain(timeout=60) is True
        # A racing signal handler lands here after the drain already
        # flushed; the once-guard absorbs it.
        handle.server._flush_caches()
        handle.server._flush_caches()
    finally:
        Session.save_plan_cache = original
    assert saves == [str(plan_file)]
    assert plan_file.exists()
    # The flush log names the entry count and destination.
    out = capsys.readouterr().out
    assert f"flushed 1 plan-cache entries -> {plan_file}" in out


def test_racing_drains_converge_without_deadlock(serve, rotowire_lake,
                                                 tmp_path):
    """Two drains in flight at once — SIGTERM and SIGINT both firing, or
    an explicit drain racing a signal.  The loser must wait for the
    winner without holding the drain lock, or the winner's cache flush
    (which runs on an executor thread) deadlocks against it and the
    server never stops."""
    plan_file = tmp_path / "plans.json"
    session = Session(rotowire_lake)
    handle = serve(session, plan_cache_file=str(plan_file))
    client = Client(handle)
    _, _, body = client.request(
        "POST", "/queries", {"query": "How many players are taller than 200?"})
    client.poll_done(body["id"])
    client.close()

    loop = handle._loop
    first = asyncio.run_coroutine_threadsafe(
        handle.server.drain_and_stop(), loop)
    second = asyncio.run_coroutine_threadsafe(
        handle.server.drain_and_stop(), loop)
    assert first.result(timeout=30) is True
    assert second.result(timeout=30) is True
    assert handle.server._stopped.is_set()
    assert plan_file.exists()  # the one flush still happened


def test_serve_with_cache_tier_shares_warmth(serve, rotowire_lake):
    """A server built with cache_url pulls plans another session left in
    the tier, and /metrics exposes both client counters and the server's
    own STATS block."""
    from repro.cachenet import CacheTierServer
    tier = CacheTierServer(bind="tcp://127.0.0.1:0").start()
    try:
        query = "How many players are taller than 200?"
        with Session(rotowire_lake, cache_url=tier.url) as producer:
            producer.query(query)
        session = Session(rotowire_lake, cache_url=tier.url)
        handle = serve(session)
        client = Client(handle)
        _, _, body = client.request("POST", "/queries", {"query": query})
        done = client.poll_done(body["id"])
        assert done["ok"] is True
        raw = http.client.HTTPConnection("127.0.0.1", handle.port,
                                         timeout=30)
        raw.request("GET", "/metrics")
        snapshot = json.loads(raw.getresponse().read().decode("utf-8"))
        assert snapshot["counters"]["cachenet_hits"] >= 1
        assert snapshot["cachenet_server"]["plan"]["entries"] >= 1
        raw.close()
        client.close()
    finally:
        tier.stop()

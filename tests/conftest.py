"""Shared fixtures: generated datasets are session-scoped (generation and
image rendering are the expensive part of the suite)."""

import pytest

from repro.datasets import generate_artwork_dataset, generate_rotowire_dataset


@pytest.fixture(scope="session")
def rotowire_dataset():
    return generate_rotowire_dataset()


@pytest.fixture(scope="session")
def artwork_dataset():
    return generate_artwork_dataset()


@pytest.fixture(scope="session")
def rotowire_lake(rotowire_dataset):
    return rotowire_dataset.as_lake()


@pytest.fixture(scope="session")
def artwork_lake(artwork_dataset):
    return artwork_dataset.as_lake()

"""Tests for the command-line entry point."""

import pytest

from repro.cli import main, read_batch_file


def test_cli_single_value_query(capsys):
    code = main(["--dataset", "rotowire",
                 "--query", "How many players are taller than 200?"])
    assert code == 0
    assert "value:" in capsys.readouterr().out


def test_cli_plot_query_renders_ascii(capsys):
    code = main(["--dataset", "rotowire", "--trace",
                 "--query", "Plot the average height of players "
                            "per position."])
    assert code == 0
    out = capsys.readouterr().out
    assert "[bar]" in out
    assert "step 1:" in out  # --trace prints the physical plan


def test_cli_error_exit_code(capsys):
    code = main(["--dataset", "rotowire", "--query", "levitate please"])
    assert code == 1
    assert "error:" in capsys.readouterr().out


def test_cli_batch_mode(tmp_path, capsys):
    batch = tmp_path / "queries.txt"
    batch.write_text("# smoke batch\n"
                     "How many players are taller than 200?\n"
                     "\n"
                     "How many players are taller than 200?\n",
                     encoding="utf-8")
    code = main(["--dataset", "rotowire", "--batch", str(batch)])
    assert code == 0
    out = capsys.readouterr().out
    assert "plan cache: 1 hits, 1 misses" in out


def test_cli_batch_mode_parallel(tmp_path, capsys):
    batch = tmp_path / "queries.txt"
    batch.write_text("How many players are taller than 200?\n"
                     "Who is the tallest player?\n"
                     "How many players are taller than 200?\n",
                     encoding="utf-8")
    code = main(["--dataset", "rotowire", "--batch", str(batch),
                 "--workers", "2"])
    assert code == 0
    out = capsys.readouterr().out
    assert "2 worker(s)" in out
    assert "serial-equivalent" in out


def test_cli_scale_flag(capsys):
    code = main(["--dataset", "rotowire", "--scale", "0.2",
                 "--query", "How many players are taller than 200?"])
    assert code == 0
    assert "value:" in capsys.readouterr().out


def test_cli_bench_subcommand(tmp_path, capsys):
    output = tmp_path / "BENCH_parallel.json"
    code = main(["bench", "--dataset", "artwork", "--scale", "0.25",
                 "--workers", "1,2", "--repeats", "1",
                 "--llm-latency-ms", "0", "--output", str(output)])
    assert code == 0
    assert output.exists()
    out = capsys.readouterr().out
    assert "warm speedup at 2 workers" in out
    assert "workers=1" in out


def test_cli_empty_batch_file(tmp_path, capsys):
    batch = tmp_path / "empty.txt"
    batch.write_text("# nothing here\n", encoding="utf-8")
    code = main(["--dataset", "rotowire", "--batch", str(batch)])
    assert code == 2
    assert "no queries found" in capsys.readouterr().err


def test_read_batch_file_skips_comments_and_blanks(tmp_path):
    batch = tmp_path / "queries.txt"
    batch.write_text("# a comment\n\nquery one\n  query two  \n",
                     encoding="utf-8")
    assert read_batch_file(str(batch)) == ["query one", "query two"]


def test_cli_requires_query_or_batch(capsys):
    with pytest.raises(SystemExit):
        main(["--dataset", "rotowire"])

"""Tests for the command-line entry point (subcommand syntax)."""

import json

import pytest

import repro
from repro.cli import main, read_batch_file


def test_cli_single_value_query(capsys):
    code = main(["query", "--dataset", "rotowire",
                 "How many players are taller than 200?"])
    assert code == 0
    assert "value:" in capsys.readouterr().out


def test_cli_plot_query_renders_ascii(capsys):
    code = main(["query", "--dataset", "rotowire", "--trace",
                 "Plot the average height of players per position."])
    assert code == 0
    out = capsys.readouterr().out
    assert "[bar]" in out
    assert "step 1:" in out  # --trace prints the physical plan


def test_cli_error_exit_code(capsys):
    code = main(["query", "--dataset", "rotowire", "levitate please"])
    assert code == 1
    assert "error:" in capsys.readouterr().out


def test_cli_batch_mode(tmp_path, capsys):
    batch = tmp_path / "queries.txt"
    batch.write_text("# smoke batch\n"
                     "How many players are taller than 200?\n"
                     "\n"
                     "How many players are taller than 200?\n",
                     encoding="utf-8")
    code = main(["batch", "--dataset", "rotowire", str(batch)])
    assert code == 0
    out = capsys.readouterr().out
    assert "plan cache: 1 hits, 1 misses" in out


def test_cli_batch_mode_parallel(tmp_path, capsys):
    batch = tmp_path / "queries.txt"
    batch.write_text("How many players are taller than 200?\n"
                     "Who is the tallest player?\n"
                     "How many players are taller than 200?\n",
                     encoding="utf-8")
    code = main(["batch", "--dataset", "rotowire", str(batch),
                 "--workers", "2"])
    assert code == 0
    out = capsys.readouterr().out
    assert "2 worker(s)" in out
    assert "serial-equivalent" in out


def test_cli_batch_backend_flag(tmp_path, capsys):
    batch = tmp_path / "queries.txt"
    batch.write_text("How many players are taller than 200?\n"
                     "Who is the tallest player?\n", encoding="utf-8")
    code = main(["batch", "--dataset", "rotowire", str(batch),
                 "--workers", "2", "--backend", "process"])
    assert code == 0
    out = capsys.readouterr().out
    assert "process backend" in out
    assert "2 queries (2 ok, 0 errors)" in out


def test_cli_batch_rejects_unknown_backend(tmp_path, capsys):
    batch = tmp_path / "queries.txt"
    batch.write_text("whatever\n", encoding="utf-8")
    with pytest.raises(SystemExit) as excinfo:
        main(["batch", "--dataset", "rotowire", str(batch),
              "--backend", "quantum"])
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert "unknown backend" in err
    assert "process" in err


def test_cli_scale_flag(capsys):
    code = main(["query", "--dataset", "rotowire", "--scale", "0.2",
                 "How many players are taller than 200?"])
    assert code == 0
    assert "value:" in capsys.readouterr().out


def test_cli_bench_subcommand(tmp_path, capsys):
    output = tmp_path / "BENCH_parallel.json"
    code = main(["bench", "--dataset", "artwork", "--scale", "0.25",
                 "--workers", "1,2", "--repeats", "1",
                 "--llm-latency-ms", "0", "--output", str(output)])
    assert code == 0
    assert output.exists()
    out = capsys.readouterr().out
    assert "warm speedup at 2 workers" in out
    assert "thread x1" in out


def test_cli_empty_batch_file(tmp_path, capsys):
    batch = tmp_path / "empty.txt"
    batch.write_text("# nothing here\n", encoding="utf-8")
    code = main(["batch", "--dataset", "rotowire", str(batch)])
    assert code == 2
    assert "no queries found" in capsys.readouterr().err


def test_read_batch_file_skips_comments_and_blanks(tmp_path):
    batch = tmp_path / "queries.txt"
    batch.write_text("# a comment\n\nquery one\n  query two  \n",
                     encoding="utf-8")
    assert read_batch_file(str(batch)) == ["query one", "query two"]


def test_cli_query_requires_query_argument(capsys):
    with pytest.raises(SystemExit):
        main(["query", "--dataset", "rotowire"])


def test_cli_no_arguments_prints_usage(capsys):
    code = main([])
    assert code == 0
    out = capsys.readouterr().out
    assert "usage: repro" in out
    assert "query" in out and "batch" in out and "bench" in out


def test_cli_version_flag(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    assert f"repro {repro.__version__}" in capsys.readouterr().out


def test_cli_plan_cache_file_second_run_is_all_hits(tmp_path, capsys):
    batch = tmp_path / "queries.txt"
    batch.write_text("How many players are taller than 200?\n"
                     "Who is the tallest player?\n",
                     encoding="utf-8")
    cache_file = tmp_path / "plans.json"
    argv = ["batch", "--dataset", "rotowire", str(batch),
            "--plan-cache-file", str(cache_file)]

    assert main(argv) == 0
    first = capsys.readouterr().out
    assert "plan cache: 0 hits, 2 misses" in first
    assert cache_file.exists()
    payload = json.loads(cache_file.read_text(encoding="utf-8"))
    assert len(payload["entries"]) == 2

    # The second run rehydrates the cache: 100% plan-cache hits.
    assert main(argv) == 0
    second = capsys.readouterr().out
    assert "plan cache: 2 hits, 0 misses" in second
    assert "hit rate 100%" in second


def test_cli_plan_cache_file_on_single_query(tmp_path, capsys):
    cache_file = tmp_path / "plans.json"
    argv = ["query", "--dataset", "rotowire",
            "--plan-cache-file", str(cache_file),
            "How many players are taller than 200?"]
    assert main(argv) == 0
    assert cache_file.exists()
    capsys.readouterr()
    assert main(argv) == 0  # second run loads the file and still answers
    assert "value:" in capsys.readouterr().out

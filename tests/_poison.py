"""Failure-injection planners for process-backend tests.

These live in an importable module (not inline in a test) because the
process backend pickles the session's planner into each worker
initializer — classes defined inside a test function cannot cross that
boundary.  Each planner wraps the default prompt planner and misbehaves
only for queries carrying its marker, so the rest of a workload runs
normally.
"""

from __future__ import annotations

import os
import time

from repro.core.interfaces import PromptPlanner

POISON_MARKER = "POISON"
EXIT_MARKER = "HARD-EXIT"
SLEEP_MARKER = "SLOW"


class PoisonPlanner(PromptPlanner):
    """Raises a non-Repro exception for queries containing the marker.

    The crash happens wherever the planner runs — worker *and* parent —
    modelling a genuinely poisoned query (the in-parent fallback must
    fail too, without killing the batch).
    """

    def plan(self, lake, query, hints, transcript, **kwargs):
        if POISON_MARKER in query:
            raise RuntimeError(f"poisoned query: {query!r}")
        return super().plan(lake, query, hints, transcript, **kwargs)


class WorkerOnlyPoisonPlanner(PromptPlanner):
    """Crashes only in a process whose pid differs from *parent_pid*.

    Models a worker-environment failure (OOM kill, corrupted worker
    state): the worker crashes, the in-parent fallback succeeds.
    """

    def __init__(self, model, parent_pid: int):
        super().__init__(model)
        self.parent_pid = parent_pid

    def plan(self, lake, query, hints, transcript, **kwargs):
        if POISON_MARKER in query and os.getpid() != self.parent_pid:
            raise RuntimeError(f"worker-only crash: {query!r}")
        return super().plan(lake, query, hints, transcript, **kwargs)


class HardExitPlanner(PromptPlanner):
    """Kills the worker process outright for marked queries.

    ``os._exit`` bypasses all exception handling, so the pool breaks
    (BrokenProcessPool) — the strongest crash the backend must survive.
    """

    def __init__(self, model, parent_pid: int):
        super().__init__(model)
        self.parent_pid = parent_pid

    def plan(self, lake, query, hints, transcript, **kwargs):
        if EXIT_MARKER in query and os.getpid() != self.parent_pid:
            os._exit(13)
        return super().plan(lake, query, hints, transcript, **kwargs)


class SleepyPlanner(PromptPlanner):
    """Sleeps far past any reasonable timeout for marked worker queries."""

    def __init__(self, model, parent_pid: int, seconds: float = 30.0):
        super().__init__(model)
        self.parent_pid = parent_pid
        self.seconds = seconds

    def plan(self, lake, query, hints, transcript, **kwargs):
        if SLEEP_MARKER in query and os.getpid() != self.parent_pid:
            time.sleep(self.seconds)
        return super().plan(lake, query, hints, transcript, **kwargs)

"""Streaming, sharded lake generation and lazy image decode.

The contract: generation feeds seeded row streams through bounded
ingestion shards and defers every raster, so a stress-scale artwork lake
costs megabytes, not gigabytes — while staying fingerprint-identical to
the eager, one-shot generation it replaced (old caches key on those
fingerprints).
"""

import tracemalloc

import pytest

from repro.data.schema import ColumnSpec, Schema
from repro.data.datatypes import DataType
from repro.data.table import Table
from repro.datasets import load_lake
from repro.datasets.artwork import generate_artwork_dataset
from repro.datasets.rotowire import generate_rotowire_dataset
from repro.datasets.streaming import ShardedTableBuilder
from repro.vision import LazyImage, build_scene, render_scene


# ----------------------------------------------------------------------
# ShardedTableBuilder
# ----------------------------------------------------------------------


def make_schema() -> Schema:
    return Schema([ColumnSpec("n", DataType.INTEGER),
                   ColumnSpec("s", DataType.STRING)])


def test_builder_rejects_non_positive_shard_rows():
    with pytest.raises(ValueError):
        ShardedTableBuilder(make_schema(), shard_rows=0)


def test_builder_empty_finish_is_empty_table():
    table = ShardedTableBuilder(make_schema()).finish()
    assert table.num_rows == 0
    assert table.column_names == ["n", "s"]


def test_builder_matches_from_rows_for_every_shard_size():
    rows = [(i, f"row-{i}") for i in range(25)]
    expected = Table.from_rows(make_schema(), rows)
    for shard_rows in (1, 2, 7, 25, 1000):
        builder = ShardedTableBuilder(make_schema(), shard_rows=shard_rows)
        for row in rows:
            builder.add(row)
        table = builder.finish()
        assert table.equals(expected)
        assert table.fingerprint() == expected.fingerprint()


# ----------------------------------------------------------------------
# Sharded generation == one-shot generation, fingerprint for fingerprint
# ----------------------------------------------------------------------


def test_artwork_sharded_equals_one_shot():
    sharded = generate_artwork_dataset(scale=2, shard_rows=7)
    one_shot = generate_artwork_dataset(scale=2, shard_rows=10 ** 6)
    assert sharded.metadata.fingerprint() == one_shot.metadata.fingerprint()
    assert sharded.images.fingerprint() == one_shot.images.fingerprint()


def test_rotowire_sharded_equals_one_shot():
    sharded = generate_rotowire_dataset(scale=2, shard_rows=5)
    one_shot = generate_rotowire_dataset(scale=2, shard_rows=10 ** 6)
    for name in ("teams", "players", "teams_to_games", "players_to_games",
                 "game_reports"):
        assert (getattr(sharded, name).fingerprint()
                == getattr(one_shot, name).fingerprint()), name


def test_shard_size_is_not_part_of_the_lake_spec():
    # shard_rows is a memory knob, not a generation parameter: the spec
    # (dataset, seed, scale) alone must keep rebuilding identical lakes.
    lake = load_lake("rotowire", scale=0.2)
    assert lake.spec.build().fingerprint() == lake.fingerprint()


# ----------------------------------------------------------------------
# Lazy image decode
# ----------------------------------------------------------------------


def make_scene():
    return build_scene({"sword": 2, "dog": 1}, seed=99, width=32, height=32)


def test_lazy_image_matches_eager_render():
    scene = make_scene()
    lazy = LazyImage(scene, path="img/1.png")
    eager = render_scene(scene, path="img/1.png")
    assert not lazy.rendered
    assert (lazy.width, lazy.height) == (eager.width, eager.height)
    assert not lazy.rendered          # size comes from the scene spec
    assert lazy == eager              # forces the render
    assert lazy.rendered
    assert lazy.to_dict() == eager.to_dict()


def test_lazy_image_fingerprint_never_caches_the_raster():
    scene = make_scene()
    lazy = LazyImage(scene, path="img/1.png")
    eager = render_scene(scene, path="img/1.png")
    assert lazy.fingerprint() == eager.fingerprint()
    assert not lazy.rendered          # transient render, digest kept
    assert lazy.fingerprint() == eager.fingerprint()  # memoized


def test_artwork_lake_defers_rendering_through_fingerprints():
    lake = load_lake("artwork", scale=0.5)
    images = lake.sources["painting_images"].table
    lake.fingerprint()
    lake.content_fingerprint()
    stored = images.column("image")
    assert all(isinstance(image, LazyImage) for image in stored)
    assert not any(image.rendered for image in stored)
    # First pixel access renders exactly that image.
    assert stored[0].pixels.shape == (64, 64, 3)
    assert stored[0].rendered and not stored[1].rendered


# ----------------------------------------------------------------------
# Scale-500 memory budget
# ----------------------------------------------------------------------


def test_scale_500_artwork_generation_stays_in_budget():
    # 60,000 paintings.  Eager rasters alone would be
    # 60000 * 64*64*3 B ≈ 737 MB; the streaming generator holds scene
    # specs + typed columns and measured ~130 MB traced peak.  The 320 MB
    # budget leaves headroom for allocator variance while still failing
    # fast if images ever render eagerly again.
    tracemalloc.start()
    try:
        lake = load_lake("artwork", scale=500)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    metadata = lake.sources["paintings_metadata"].table
    images = lake.sources["painting_images"].table
    assert metadata.num_rows == images.num_rows == 60_000
    assert not any(image.rendered for image in images.iter_column("image"))
    budget = 320 * 1024 * 1024
    assert peak < budget, f"traced peak {peak / 1e6:.0f} MB over budget"

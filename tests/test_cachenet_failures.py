"""Cache-tier failure paths: a broken tier must never break a query.

Three contracts, each against real sockets:

- server down at session construction → silent degrade to local caches,
  counted in ``cachenet_fallbacks``;
- server dies mid-run → retry, then fall back, and the run's canonical
  results stay byte-identical to a local-only run;
- protocol-version mismatch → loud :class:`CacheProtocolError` at
  construction (a deployment error is not a transient).
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.benchmarks.workloads import workload
from repro.cachenet import (CacheClient, CacheProtocolError,
                            CacheTierServer, CacheUnavailable,
                            RemoteAnswerCache, RemotePlanCache)
from repro.llm.brain import SimulatedBrain
from repro.session import Session

#: A TCP port with nothing listening (discard-protocol port; closed on
#: any sane test host, and connection-refused is instant on loopback).
DEAD_URL = "tcp://127.0.0.1:9"


def canonical(report) -> str:
    return json.dumps(report.canonical_results(), sort_keys=True)


def impatient(session: Session) -> Session:
    """Tighten the session's tier client so failures cost milliseconds."""
    client = session._cache_client
    client.retries = 0
    client.connect_timeout = 0.2
    client.request_timeout = 0.5
    client.down_cooldown = 30.0  # stay down for the rest of the test
    return session


def test_server_down_at_construction_degrades_and_counts(artwork_lake):
    session = impatient(Session(artwork_lake, cache_url=DEAD_URL))
    # The session still built the remote drop-ins (the tier may come up
    # later) and the failed probe was counted, not raised.
    assert isinstance(session.plan_cache, RemotePlanCache)
    assert isinstance(session.answer_cache, RemoteAnswerCache)
    assert session.metrics()["counters"]["cachenet_fallbacks"] >= 1
    assert session.cachenet_stats() is None
    result = session.query("How many paintings are there?")
    assert result.ok
    fallbacks = session.metrics()["counters"]["cachenet_fallbacks"]
    assert fallbacks >= 2  # the probe plus at least one degraded lookup
    session.close()


def test_server_death_mid_run_keeps_results_byte_identical(artwork_lake):
    queries = workload("artwork")[:4]
    with Session(artwork_lake) as local_session:
        baseline = canonical(local_session.batch(queries))

    server = CacheTierServer(bind="tcp://127.0.0.1:0").start()
    try:
        # A fleet member warms the tier so the victim really uses it.
        with Session(artwork_lake, cache_url=server.url) as producer:
            producer.batch(queries)

        # A touch of planner latency keeps the batch in flight long
        # enough that the timer genuinely fires mid-run.
        victim = impatient(Session(
            artwork_lake, cache_url=server.url,
            brain=SimulatedBrain(latency_seconds=0.02)))
        killer = threading.Timer(0.05, server.stop)
        killer.start()
        try:
            report = victim.batch(queries)
        finally:
            killer.cancel()
        assert canonical(report) == baseline
        assert report.num_errors == 0
        victim.close()
    finally:
        server.stop()


def test_client_fails_fast_during_cooldown():
    server = CacheTierServer(bind="tcp://127.0.0.1:0").start()
    client = CacheClient(server.url, retries=0, connect_timeout=0.2,
                         request_timeout=0.5, down_cooldown=30.0)
    client.ensure_connected()
    server.stop()
    with pytest.raises(CacheUnavailable):
        client.request({"op": "stats"})
    # Inside the cooldown window nothing touches the network at all.
    started = time.perf_counter()
    with pytest.raises(CacheUnavailable, match="cooling off"):
        client.request({"op": "stats"})
    assert time.perf_counter() - started < 0.05
    client.close()


def test_peers_fail_fast_while_one_thread_probes():
    """While one thread runs the reconnection probe (connect attempts
    plus backoff sleeps), the other threads sharing the client must fail
    fast instead of serializing behind the probe's lock."""
    client = CacheClient(DEAD_URL, retries=2, backoff=0.3,
                         connect_timeout=0.2, down_cooldown=30.0)

    def probe() -> None:
        try:
            client.request({"op": "stats"})
        except CacheUnavailable:
            pass

    prober = threading.Thread(target=probe)
    prober.start()
    time.sleep(0.15)  # the probe marked the client down and is backing off
    started = time.perf_counter()
    with pytest.raises(CacheUnavailable, match="cooling off"):
        client.request({"op": "stats"})
    assert time.perf_counter() - started < 0.1
    prober.join()
    client.close()


def test_remote_caches_degrade_to_local_when_tier_dies():
    server = CacheTierServer(bind="tcp://127.0.0.1:0").start()
    client = CacheClient(server.url, retries=0, connect_timeout=0.2,
                         request_timeout=0.5, down_cooldown=30.0)
    cache = RemoteAnswerCache(client, capacity=8)
    cache.put(("fp", "warm", "int"), 1)
    server.stop()
    client._drop_socket()
    # Locally-fronted entries keep answering; new traffic degrades to
    # plain local LRU semantics.
    assert cache.get(("fp", "warm", "int")) == 1
    cache.put(("fp", "late", "int"), 2)
    assert cache.get(("fp", "late", "int")) == 2
    client.close()


def test_protocol_mismatch_fails_session_construction(artwork_lake,
                                                      monkeypatch):
    server = CacheTierServer(bind="tcp://127.0.0.1:0").start()
    try:
        import repro.cachenet.client as client_module
        monkeypatch.setattr(
            client_module, "hello_request",
            lambda: {"op": "hello", "protocol": "repro-cachenet",
                     "version": 999})
        with pytest.raises(CacheProtocolError, match="upgrade the older"):
            Session(artwork_lake, cache_url=server.url)
    finally:
        server.stop()

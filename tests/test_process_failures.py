"""Process-backend failure paths: crashes, broken pools, timeouts.

The recovery contract: any worker failure records a ``phase="worker"``
:class:`ErrorEvent`, never kills the batch, and every other query still
completes in submission order.  Where the query itself is healthy the
in-parent fallback answers it (event ``recovered=True``); where the
query is poisoned everywhere the result is an error result with both
events on its trace.
"""

import os

import pytest

from _poison import (EXIT_MARKER, POISON_MARKER, SLEEP_MARKER,
                     HardExitPlanner, PoisonPlanner, SleepyPlanner,
                     WorkerOnlyPoisonPlanner)
from repro.exec import ProcessBackend
from repro.llm.brain import SimulatedBrain
from repro.session import Session

HEALTHY = [
    "How many players are taller than 200?",
    "Who is the tallest player?",
    "List the names of players taller than 200.",
]


def worker_events(result):
    return [e for e in result.trace.errors if e.phase == "worker"]


def test_poisoned_query_does_not_kill_the_pool():
    queries = [HEALTHY[0], f"{POISON_MARKER} everything", *HEALTHY[1:]]
    with Session("rotowire",
                 planner=PoisonPlanner(SimulatedBrain())) as session:
        report = session.batch(queries, workers=2, backend="process")

        # Submission order is preserved across the failure.
        assert [stat.query for stat in report.stats] == queries
        assert [r.trace.query for r in report.results] == queries

        poisoned = report.results[1]
        assert not poisoned.ok
        events = worker_events(poisoned)
        assert len(events) == 1
        assert "poisoned query" in events[0].message
        # The fallback hit the same poison in the parent: not recovered.
        assert not events[0].recovered
        assert report.num_errors == 1
        assert report.num_ok == len(HEALTHY)

        # The pool survived: re-running the identical workload reuses the
        # warm lanes (affinity is first-occurrence-relative, so the same
        # workload maps to the same lanes and their kept plan caches).
        again = session.batch(queries, workers=2, backend="process")
        assert again.num_errors == 1
        assert again.num_ok == len(HEALTHY)
        assert again.cache_hits >= len(HEALTHY)


def test_worker_only_crash_falls_back_to_parent():
    queries = [HEALTHY[0], f"{HEALTHY[1]} {POISON_MARKER}", HEALTHY[2]]
    planner = WorkerOnlyPoisonPlanner(SimulatedBrain(), os.getpid())
    with Session("rotowire", planner=planner) as session:
        report = session.batch(queries, workers=2, backend="process")
    # The parent's planner is healthy for this query, so the fallback
    # answers it and the batch finishes clean.
    assert report.num_errors == 0
    rescued = report.results[1]
    assert rescued.ok
    events = worker_events(rescued)
    assert len(events) == 1
    assert "worker-only crash" in events[0].message
    assert events[0].recovered
    # Order preserved; untouched queries unaffected.
    assert [r.trace.query for r in report.results] == queries
    assert report.results[0].ok and report.results[2].ok


def test_worker_only_crash_recovered_result_matches_healthy_run():
    query = f"{HEALTHY[0]} {POISON_MARKER}"
    planner = WorkerOnlyPoisonPlanner(SimulatedBrain(), os.getpid())
    with Session("rotowire", planner=planner) as session:
        report = session.batch([query], workers=1, backend="process")
        healthy = Session("rotowire").query(HEALTHY[0])
    result = report.results[0]
    # The fallback runs the full in-parent engine, so the rescued result
    # carries a real answer plus the worker event prepended to its trace.
    assert result.trace.errors[0].phase == "worker"
    assert result.trace.errors[0].recovered
    assert result.ok
    assert result.value == healthy.value


def test_hard_worker_exit_breaks_pool_but_not_the_batch():
    queries = [HEALTHY[0], f"{HEALTHY[1]} {EXIT_MARKER}", HEALTHY[2]]
    planner = HardExitPlanner(SimulatedBrain(), os.getpid())
    with Session("rotowire", planner=planner) as session:
        report = session.batch(queries, workers=2, backend="process")

        assert [r.trace.query for r in report.results] == queries
        crashed = report.results[1]
        events = worker_events(crashed)
        assert len(events) == 1
        assert "worker crashed" in events[0].message
        assert events[0].recovered  # parent ran it fine (marker is junk
        # for the parser only inside plan(), which never raised here)

        # Lanes were torn down and rebuild lazily: next batch succeeds.
        again = session.batch(HEALTHY, workers=2, backend="process")
        assert again.num_errors == 0


def test_query_timeout_kills_lane_and_falls_back():
    queries = [HEALTHY[0], f"{HEALTHY[1]} {SLEEP_MARKER}", HEALTHY[2]]
    planner = SleepyPlanner(SimulatedBrain(), os.getpid(), seconds=30.0)
    backend = ProcessBackend(timeout=2.0)
    with Session("rotowire", planner=planner) as session:
        try:
            report = session.batch(queries, workers=2, backend=backend)
        finally:
            backend.close()
    assert [r.trace.query for r in report.results] == queries
    slow = report.results[1]
    events = worker_events(slow)
    assert len(events) == 1
    assert "timed out" in events[0].message
    assert events[0].recovered
    assert report.results[0].ok and report.results[2].ok


def test_process_backend_close_is_idempotent():
    backend = ProcessBackend()
    backend.close()
    backend.close()


@pytest.mark.parametrize("start_method", ["fork", "spawn"])
def test_start_methods_answer_correctly(start_method):
    import multiprocessing
    if start_method not in multiprocessing.get_all_start_methods():
        pytest.skip(f"{start_method} unavailable on this platform")
    backend = ProcessBackend(start_method=start_method)
    with Session("rotowire") as session:
        serial = session.batch([HEALTHY[0]], backend="serial")
        try:
            report = session.batch([HEALTHY[0]], workers=1, backend=backend)
        finally:
            backend.close()
    assert report.num_errors == 0
    assert report.results[0].value == serial.results[0].value

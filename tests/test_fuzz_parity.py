"""Differential fuzzer parity: three engines, three lanes, zero drift.

The CI anchor for the columnar rewrite: 200 seeded random queries per
run, every one executed under the sqlite bridge (reference), the
columnar engine, and the native ops, then the whole run repeated under
thread and process lanes — all byte-identical.  A randomized soak rides
along in CI (see ci.sh) with its seed printed, so any failure lands
back here as a pinned regression.
"""

import json

import pytest

from repro.datasets import load_lake
from repro.relational import colexec
from repro.relational.sqlexec import run_sql
from repro.testing.fuzz import (ENGINES, LANES, QueryGenerator,
                                execute_three_ways, generate_queries,
                                run_fuzz)

PINNED_SEED = 7
QUERY_COUNT = 200


@pytest.fixture(scope="module")
def report():
    return run_fuzz(PINNED_SEED, QUERY_COUNT, lanes=LANES)


def test_fixed_seed_run_is_clean(report):
    assert len(report.queries) == QUERY_COUNT
    assert report.mismatches == []
    assert report.lane_mismatches == []
    assert report.ok


def test_generator_stays_inside_the_supported_envelope(report):
    # Every generated query must execute in-process: a query colexec
    # declines falls back to the bridge in production and proves nothing
    # about the columnar engine, so the generator may not emit one.
    assert report.unsupported == []
    for entry in report.canonical_results():
        assert set(entry["engines"]) == set(ENGINES)
        reference = entry["engines"]["sqlite"]
        for engine in ("columnar", "native"):
            assert entry["engines"][engine] == reference, entry["sql"]


def test_generator_covers_every_shape_and_dataset(report):
    shapes = {query.shape for query in report.queries}
    assert shapes == {"filter", "aggregate", "group", "join", "distinct"}
    assert {query.dataset for query in report.queries} == {"artwork",
                                                          "rotowire"}


def test_query_generation_is_deterministic():
    lakes = {name: load_lake(name) for name in ("artwork", "rotowire")}
    first = generate_queries(11, 40, lakes=lakes)
    second = generate_queries(11, 40, lakes=lakes)
    assert first == second
    # A different seed draws a different stream.
    assert generate_queries(12, 40, lakes=lakes) != first


def test_generated_sql_round_trips_through_json(report):
    # Canonical entries are what the lane-parity check serializes; they
    # must stay JSON-stable (no floats reprs drifting through dumps).
    dumped = json.dumps(report.canonical_results(), sort_keys=True)
    assert json.loads(dumped) == report.canonical_results()


# ----------------------------------------------------------------------
# The fuzzer-found planner regression, pinned
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def rotowire_tables():
    lake = load_lake("rotowire")
    return {name: source.table for name, source in lake.sources.items()}


def test_join_where_on_right_side_columns_is_declined(rotowire_tables):
    # Found by the soak (seed=500242479): with a WHERE over right-table
    # columns sqlite's planner flips the scan to the right table,
    # reordering the result.  colexec must decline rather than guess.
    sql = ("SELECT * FROM teams JOIN teams_to_games USING (name) "
           "WHERE game_id >= 1")
    for engine in ("columnar", "native"):
        with pytest.raises(colexec.UnsupportedSQL):
            colexec.execute(sql, rotowire_tables, engine=engine)


def test_join_where_on_left_side_columns_matches_sqlite(rotowire_tables):
    # Left-side (and merged-key) predicates keep sqlite on the
    # FROM-order plan colexec replicates, so these stay in-process.
    for sql in (
        "SELECT * FROM teams JOIN teams_to_games USING (name) "
        "WHERE founded >= 0",
        "SELECT * FROM teams JOIN teams_to_games USING (name) "
        "WHERE name LIKE 'H%'",
    ):
        reference = run_sql(sql, rotowire_tables)
        for engine in ("columnar", "native"):
            result = colexec.execute(sql, rotowire_tables, engine=engine)
            assert (result.fingerprint() == reference.fingerprint()), (
                engine, sql)


def test_execute_three_ways_flags_declined_queries(rotowire_tables):
    from repro.testing.fuzz import FuzzQuery
    query = FuzzQuery(
        "rotowire",
        "SELECT * FROM teams JOIN teams_to_games USING (name) "
        "WHERE game_id >= 1",
        ("teams", "teams_to_games"), "join")
    entry, reason = execute_three_ways(query, rotowire_tables)
    assert reason is not None and "right-side" in reason
    assert "unsupported" in entry["engines"]["columnar"]
    assert "fingerprint" in entry["engines"]["sqlite"]


def test_generator_never_emits_right_side_join_predicates():
    # The generator contract backing the envelope test above: USING-join
    # WHERE clauses reference only left-table (or merged-key) columns.
    lakes = {name: load_lake(name) for name in ("artwork", "rotowire")}
    generator = QueryGenerator(lakes, seed=3)
    joins = [q for q in (generator.generate() for _ in range(400))
             if q.shape == "join" and " WHERE " in q.sql]
    assert joins, "expected some join queries with predicates"
    for query in joins:
        left = query.tables[0]
        right = query.tables[1]
        where = query.sql.split(" WHERE ", 1)[1]
        left_columns = set(
            lakes[query.dataset].sources[left].table.column_names)
        right_only = set(
            lakes[query.dataset].sources[right].table.column_names
        ) - left_columns
        for column in right_only:
            assert column not in where, query.sql


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def test_repro_fuzz_cli_runs_a_pinned_seed(capsys):
    from repro.cli import main
    assert main(["fuzz", "--seed", "7", "--count", "25",
                 "--strict-unsupported"]) == 0
    out = capsys.readouterr().out
    assert "seed=7" in out
    assert "parity mismatches : 0" in out

"""Tests for the native relational engine (ops + expressions) and the
dense-retrieval stack — previously only exercised indirectly."""

import pytest

from repro.data import ColumnSpec, DataType, Schema, Table
from repro.errors import (ExpressionError, RetrievalError, SchemaError,
                          UnknownColumnError)
from repro.relational import (evaluate_predicate, group_aggregate, join,
                              normalize_aggregate, parse_expression, select,
                              sort)
from repro.relational.ops import distinct, limit, project, rename, union_all
from repro.retrieval import HashEmbedder, VectorIndex, tokenize


def _players() -> Table:
    schema = Schema([
        ColumnSpec("name", DataType.STRING),
        ColumnSpec("team", DataType.STRING),
        ColumnSpec("height", DataType.INTEGER),
    ])
    return Table.from_rows(schema, [
        ["Ann", "Heat", 201],
        ["Bob", "Heat", 188],
        ["Cyd", "Bulls", 210],
        ["Dee", "Bulls", None],
    ])


def _teams() -> Table:
    schema = Schema([
        ColumnSpec("team", DataType.STRING),
        ColumnSpec("city", DataType.STRING),
    ])
    return Table.from_rows(schema, [["Heat", "Miami"],
                                    ["Bulls", "Chicago"]])


# ----------------------------------------------------------------------
# expressions
# ----------------------------------------------------------------------


def test_comparisons_and_boolean_operators():
    row = {"height": 201, "team": "Heat"}
    assert evaluate_predicate("height > 200 AND team = 'Heat'", row)
    assert not evaluate_predicate("height > 200 AND team = 'Bulls'", row)
    assert evaluate_predicate("height < 100 OR NOT team = 'Bulls'", row)
    assert evaluate_predicate("(height >= 201) AND (height <= 201)", row)
    assert evaluate_predicate("height != 200", row)


def test_null_like_in_between():
    assert evaluate_predicate("x IS NULL", {"x": None})
    assert evaluate_predicate("x IS NOT NULL", {"x": 1})
    assert evaluate_predicate("name LIKE 'An%'", {"name": "Ann"})
    assert not evaluate_predicate("name NOT LIKE 'An%'", {"name": "Ann"})
    assert evaluate_predicate("team IN ('Heat', 'Bulls')", {"team": "Heat"})
    assert evaluate_predicate("h BETWEEN 180 AND 210", {"h": 201})
    assert not evaluate_predicate("h BETWEEN 180 AND 200", {"h": 201})


def test_column_references_can_be_qualified():
    expr = parse_expression("p.height > 200")
    assert expr.evaluate({"height": 205})
    assert expr.evaluate({"p.height": 205})
    assert expr.referenced_columns() == {"height"}  # bare name


def test_expression_errors():
    with pytest.raises(ExpressionError):
        parse_expression("height >")
    with pytest.raises(ExpressionError):
        parse_expression("height ~ 3")
    with pytest.raises(ExpressionError):
        evaluate_predicate("missing = 1", {"present": 1})


# ----------------------------------------------------------------------
# relational ops
# ----------------------------------------------------------------------


def test_select_and_project():
    tall = select(_players(), "height > 200")
    assert tall.column("name") == ["Ann", "Cyd"]
    assert project(tall, ["name"]).column_names == ["name"]
    with pytest.raises(UnknownColumnError):
        select(_players(), "wingspan > 2")


def test_join_inner_and_left():
    inner = join(_players(), _teams(), "team", "team")
    assert inner.num_rows == 4
    assert inner.column("city") == ["Miami", "Miami", "Chicago", "Chicago"]

    lonely = Table.from_rows(
        Schema([ColumnSpec("team", DataType.STRING)]), [["Vapor"]])
    left = join(lonely, _teams(), "team", "team", how="left")
    assert left.num_rows == 1 and left.column("city") == [None]
    with pytest.raises(SchemaError):
        join(_players(), _teams(), "team", "team", how="cross")


def test_group_aggregate_count_and_avg():
    result = group_aggregate(
        _players(), ["team"],
        [("count", "*", "players"), ("avg", "height", "avg_height")])
    assert result.column("team") == ["Heat", "Bulls"]
    assert result.column("players") == [2, 2]
    assert result.column("avg_height") == [194.5, 210.0]  # None skipped


def test_group_aggregate_whole_table_and_min_max():
    result = group_aggregate(
        _players(), [],
        [("min", "height", "shortest"), ("max", "height", "tallest"),
         ("sum", "height", "total"), ("count_distinct", "team", "teams")])
    assert result.num_rows == 1
    assert result.row(0) == {"shortest": 188, "tallest": 210,
                             "total": 599, "teams": 2}


def test_normalize_aggregate_synonyms():
    assert normalize_aggregate("Number") == "count"
    assert normalize_aggregate("earliest") == "min"
    assert normalize_aggregate("total") == "sum"
    with pytest.raises(ExpressionError):
        normalize_aggregate("median-ish")


def test_sort_limit_distinct_rename_union():
    by_height = sort(_players(), ["height"])
    assert by_height.column("name") == ["Bob", "Ann", "Cyd", "Dee"]  # None last
    tallest_first = sort(_players(), ["height"], descending=True)
    assert tallest_first.column("name")[-3:] == ["Cyd", "Ann", "Bob"]
    assert limit(by_height, 2).num_rows == 2
    assert distinct(_players(), ["team"]).column("team") == ["Heat", "Bulls"]
    renamed = rename(_players(), {"height": "height_cm"})
    assert "height_cm" in renamed.column_names
    doubled = union_all(_players(), _players())
    assert doubled.num_rows == 8


# ----------------------------------------------------------------------
# retrieval
# ----------------------------------------------------------------------


def test_tokenize_drops_stopwords():
    assert tokenize("How many paintings are in the museum?") == \
        ["paintings", "museum"]


def test_embedder_similarity_orders_related_texts():
    embedder = HashEmbedder(dim=512)
    related = embedder.similarity("paintings of the museum",
                                  "museum paintings and artists")
    unrelated = embedder.similarity("paintings of the museum",
                                    "basketball game score report")
    assert related > unrelated
    with pytest.raises(ValueError):
        HashEmbedder(dim=0)


def test_vector_index_top_k():
    index = VectorIndex()
    index.add("paintings", "metadata about paintings and artists")
    index.add("reports", "textual reports of basketball games")
    index.add("teams", "basketball teams and their cities")
    assert len(index) == 3
    hits = index.search("which artist painted the most paintings", k=2)
    assert hits[0].key == "paintings"
    assert len(hits) <= 2


def test_vector_index_empty_search_raises():
    with pytest.raises(RetrievalError):
        VectorIndex().search("anything")

"""Lossless JSON round-trips for the plan IR, results, and reports.

Every ``to_dict()`` must survive an actual ``json.dumps``/``loads`` cycle
(not just a dict copy) and reconstruct an *equal* object — tables, traces,
timings, plot specs, dates, and rendered images included.
"""

import datetime
import json

import numpy as np

from repro import Session
from repro.core.batch import BatchReport
from repro.core.plan import (ErrorEvent, LogicalPlan, LogicalStep,
                             Observation, PhysicalStep, PlanTrace,
                             QueryResult)
from repro.data.datatypes import DataType
from repro.data.table import Table
from repro.obs import QueryTelemetry, StageTrace
from repro.plotting.spec import PlotSpec
from repro.vision.image import Image


def roundtrip(obj):
    """Encode → JSON text → decode with the object's own from_dict."""
    data = json.loads(json.dumps(obj.to_dict()))
    return type(obj).from_dict(data)


def test_logical_plan_roundtrip():
    plan = LogicalPlan(
        steps=[LogicalStep(1, "Filter the players table.",
                           inputs=["players"], output="tall_players",
                           new_columns=[]),
               LogicalStep(2, "Count the rows.", inputs=["tall_players"],
                           output="result", new_columns=["count"])],
        thought="filter then aggregate")
    assert roundtrip(plan) == plan


def test_step_params_roundtrip_with_tagged_dates():
    """The params sidecar survives JSON with its typed date scalars."""
    step = LogicalStep(
        1, "Select only the rows of the 't' table where the 'inception' "
           "column is between DATE '1880-01-01' and DATE '1895-12-31'.",
        inputs=["t"], output="selected_table",
        params={"column": "inception", "op": "between",
                "low": datetime.date(1880, 1, 1),
                "high": datetime.date(1895, 12, 31)})
    back = roundtrip(step)
    assert back == step
    assert isinstance(back.params["low"], datetime.date)


def test_step_params_roundtrip_nested_measures():
    step = LogicalStep(
        1, "Group the 't' table by 'movement' and compute the min of "
           "'inception' and the max of 'inception' into the "
           "'min_inception' and 'max_inception' columns.",
        inputs=["t"], output="grouped_table",
        new_columns=["min_inception", "max_inception"],
        params={"by": "movement",
                "measures": [
                    {"agg": "min", "column": "inception",
                     "output": "min_inception"},
                    {"agg": "max", "column": "inception",
                     "output": "max_inception"}]})
    assert roundtrip(step) == step


def test_step_without_params_stays_backward_compatible():
    """Old serialized steps (no ``params`` key) still load, and empty
    params keep the rendered plan byte-identical to the old format."""
    data = {"index": 1, "description": "Count the rows.",
            "inputs": ["t"], "output": "result", "new_columns": ["count"]}
    step = LogicalStep.from_dict(data)
    assert step.params == {}
    assert "Params:" not in step.render()


def test_rendered_plan_roundtrips_params():
    """Params survive the render → parse_logical_plan text channel the
    planner actually communicates through."""
    from repro.core.parsing import parse_logical_plan
    plan = LogicalPlan(
        steps=[LogicalStep(
            1, "Join the 'players' and 'teams' tables on the 'team' and "
               "'name' columns.",
            inputs=["players", "teams"], output="joined_table",
            params={"left": "players", "right": "teams",
                    "left_on": "team", "right_on": "name"})],
        thought="join")
    assert parse_logical_plan(plan.render()) == plan


def test_trace_pieces_roundtrip():
    step = LogicalStep(1, "do it", inputs=["t"], output="out")
    physical = PhysicalStep(logical=step, operator="SQL",
                            arguments=["SELECT 1"], reasoning="trivial")
    observation = Observation(1, "produced 1 row")
    event = ErrorEvent("mapping", 1, "boom", recovered=True)
    assert roundtrip(physical) == physical
    assert roundtrip(observation) == observation
    assert roundtrip(event) == event
    telemetry = QueryTelemetry(
        spans=[StageTrace("planning", duration_ms=1.5, token_in=10,
                          token_out=2, cost_usd=0.00042),
               StageTrace("operator:SQL", duration_ms=0.5, step_index=1,
                          notes={"rows": 3})],
        counters={"plan_from_cache": 1, "plan_cache_hits": 1})
    trace = PlanTrace(query="q", logical_plan=LogicalPlan(steps=[step]),
                      physical_steps=[physical], observations=[observation],
                      errors=[event], replans=1,
                      timings={"total": 0.25, "planning": 0.1},
                      telemetry=telemetry)
    assert roundtrip(trace) == trace
    assert roundtrip(trace).telemetry.plan_cache_hit is True


def test_table_roundtrip_with_dates_and_nulls():
    table = Table.infer({
        "name": ["a", "b", None],
        "height": [200, None, 190],
        "share": [0.25, 0.5, 0.125],
        "active": [True, False, None],
        "born": [datetime.date(1990, 1, 2), None,
                 datetime.date(2000, 12, 31)],
    })
    restored = roundtrip(table)
    assert restored == table
    assert restored.dtype("born") is DataType.DATE
    assert restored.column("born")[0] == datetime.date(1990, 1, 2)
    assert type(restored.column("born")[0]) is datetime.date


def test_table_roundtrip_with_image_column():
    pixels = np.arange(4 * 3 * 3, dtype=np.uint8).reshape((4, 3, 3))
    image = Image(pixels, path="img/x.png")
    table = Table.infer(
        {"title": ["x"], "image": [image]},
        modality_types={"image": DataType.IMAGE})
    restored = roundtrip(table)
    assert restored == table
    restored_image = restored.column("image")[0]
    assert isinstance(restored_image, Image)
    assert restored_image.fingerprint() == image.fingerprint()


def test_plot_spec_roundtrip():
    spec = PlotSpec(kind="bar", x_label="century", y_label="count",
                    x_values=[15, 16, 17], y_values=[9, 12, 30],
                    title="paintings per century")
    assert roundtrip(spec) == spec


def test_query_result_value_roundtrip(rotowire_lake):
    result = Session(rotowire_lake).query(
        "How many players are taller than 200?")
    assert result.ok and result.kind == "value"
    restored = roundtrip(result)
    assert restored == result
    assert restored.value == result.value
    assert restored.trace.timings == result.trace.timings
    assert restored.trace.operators_used() == result.trace.operators_used()


def test_query_result_table_roundtrip(artwork_lake):
    result = Session(artwork_lake).query(
        "For each movement, how many paintings are there?")
    assert result.ok and result.kind == "table"
    restored = roundtrip(result)
    assert restored == result
    assert restored.table == result.table


def test_query_result_plot_roundtrip(artwork_lake):
    result = Session(artwork_lake).query(
        "Plot the number of paintings for each century.")
    assert result.ok and result.kind == "plot"
    restored = roundtrip(result)
    assert restored == result
    assert restored.plot.signature() == result.plot.signature()
    assert restored.plot.series() == result.plot.series()


def test_query_result_date_value_roundtrip(artwork_lake):
    result = Session(artwork_lake).query(
        "What is the earliest inception date of all paintings?")
    assert result.ok and result.kind == "value"
    restored = roundtrip(result)
    assert restored == result
    assert restored.value == result.value


def test_query_result_error_roundtrip(rotowire_lake):
    result = Session(rotowire_lake).query("please levitate the stadium")
    assert not result.ok
    restored = roundtrip(result)
    assert restored == result
    assert restored.error == result.error
    assert restored.trace.crashed


def test_batch_report_roundtrip(rotowire_lake):
    report = Session(rotowire_lake).batch(
        ["How many players are taller than 200?",
         "Plot the average height of players per position.",
         "How many players are taller than 200?"], workers=2)
    data = json.loads(json.dumps(report.to_dict(include_results=True)))
    restored = BatchReport.from_dict(data)
    assert restored == report


def test_batch_report_compact_dict_is_not_lossless(rotowire_lake):
    report = Session(rotowire_lake).batch(
        ["How many players are taller than 200?"])
    compact = report.to_dict()
    assert "results" not in compact
    try:
        BatchReport.from_dict(compact)
    except ValueError as exc:
        assert "include_results" in str(exc)
    else:  # pragma: no cover
        raise AssertionError("compact record must be rejected")


def test_query_result_without_trace_roundtrip():
    result = QueryResult(kind="value", value=7)
    assert roundtrip(result) == result

"""The deprecated entry points still work — and warn exactly once.

The rest of the suite runs with ``-W error::DeprecationWarning`` (see
``pyproject.toml``), so internal code can never route through these shims;
this module is the one place that exercises them, catching the warnings
with ``pytest.warns``.
"""

import pytest

from repro.cli import main
from repro.core.batch import BatchRunner, ParallelBatchRunner, QueryStats
from repro.core.engine import QueryEngine
from repro.core.plan import PlanTrace
from repro.session import Session

QUERY = "How many players are taller than 200?"
BATCH = [QUERY, "Who is the tallest player?", QUERY]


def _deprecations(record) -> list[str]:
    return [str(w.message) for w in record
            if issubclass(w.category, DeprecationWarning)]


def test_query_engine_warns_once_and_answers(rotowire_lake):
    with pytest.warns(DeprecationWarning) as record:
        engine = QueryEngine(rotowire_lake)
        result = engine.answer(QUERY)
    warnings = _deprecations(record)
    assert len(warnings) == 1
    assert "Session" in warnings[0]
    assert result.ok and result.kind == "value"
    trace = result.trace
    assert trace is not None and not trace.crashed
    assert len(trace.physical_steps) == len(trace.logical_plan)


def test_batch_runner_warns_once_and_runs(rotowire_lake):
    with pytest.warns(DeprecationWarning) as record:
        runner = BatchRunner(rotowire_lake, cache_size=16)
        report = runner.run(BATCH)
    assert len(_deprecations(record)) == 1
    assert report.num_queries == 3 and report.num_errors == 0
    assert report.cache_hits == 1 and report.cache_misses == 2


def test_parallel_batch_runner_warns_once_and_runs(rotowire_lake):
    with pytest.warns(DeprecationWarning) as record:
        runner = ParallelBatchRunner(rotowire_lake, workers=2)
        report = runner.run(BATCH)
    assert len(_deprecations(record)) == 1
    assert report.workers == 2
    assert report.num_queries == 3 and report.num_errors == 0


def test_legacy_cli_query_flags_warn_once_and_work(capsys):
    with pytest.warns(DeprecationWarning) as record:
        code = main(["--dataset", "rotowire", "--query", QUERY])
    warnings = _deprecations(record)
    assert len(warnings) == 1
    assert "subcommand" in warnings[0]
    assert code == 0
    assert "value:" in capsys.readouterr().out


def test_legacy_cli_batch_flags_warn_once_and_work(tmp_path, capsys):
    batch = tmp_path / "queries.txt"
    batch.write_text("\n".join(BATCH) + "\n", encoding="utf-8")
    with pytest.warns(DeprecationWarning) as record:
        code = main(["--dataset", "rotowire", "--batch", str(batch),
                     "--workers", "2"])
    assert len(_deprecations(record)) == 1
    assert code == 0
    out = capsys.readouterr().out
    assert "2 worker(s)" in out


def test_legacy_cli_requires_query_or_batch():
    with pytest.warns(DeprecationWarning):
        with pytest.raises(SystemExit):
            main(["--dataset", "rotowire"])


def test_plan_trace_plan_cache_hit_shim_reads_telemetry():
    trace = PlanTrace(query="q")
    trace.telemetry.mark_plan_cache(True)
    with pytest.warns(DeprecationWarning, match="telemetry.plan_cache_hit"):
        assert trace.plan_cache_hit is True


def test_plan_trace_plan_cache_hit_shim_writes_telemetry():
    trace = PlanTrace(query="q")
    with pytest.warns(DeprecationWarning, match="mark_plan_cache"):
        trace.plan_cache_hit = True
    assert trace.telemetry.plan_cache_hit is True
    with pytest.warns(DeprecationWarning):
        trace.plan_cache_hit = False
    assert trace.telemetry.plan_cache_hit is False


def test_query_stats_cache_hit_and_seconds_shims():
    stat = QueryStats(query="q", kind="value", ok=True,
                      plan_cache_hit=True, steps=2, total_seconds=1.25,
                      token_in=100, token_out=10, cost_usd=0.0036)
    with pytest.warns(DeprecationWarning, match="plan_cache_hit"):
        assert stat.cache_hit is True
    with pytest.warns(DeprecationWarning, match="total_seconds"):
        assert stat.seconds == 1.25
    # Serialized stats carry both spellings for old readers, and
    # from_dict accepts a pre-telemetry record.
    data = stat.to_dict()
    assert data["cache_hit"] is True and data["seconds"] == 1.25
    legacy = QueryStats.from_dict({"query": "q", "kind": "value",
                                   "ok": True, "cache_hit": True,
                                   "steps": 2, "seconds": 1.25})
    assert legacy.plan_cache_hit is True
    assert legacy.total_seconds == 1.25
    assert legacy.token_in == 0 and legacy.cost_usd == 0.0


def test_legacy_plan_cache_hit_key_loads_into_telemetry(rotowire_lake):
    # A result archived before telemetry existed has no "telemetry" key,
    # only the old boolean; from_dict rebuilds the counter state.
    result = Session(rotowire_lake).query(QUERY)
    data = result.to_dict()
    assert data["trace"]["plan_cache_hit"] is False
    del data["trace"]["telemetry"]
    data["trace"]["plan_cache_hit"] = True
    restored = type(result).from_dict(data)
    assert restored.telemetry.plan_cache_hit is True

"""Tests for CSV import/export of relational tables."""

from repro.data import DataType
from repro.data.csvio import (read_csv, read_csv_text, write_csv,
                              write_csv_text)

CSV_TEXT = ("name,height,active\n"
            "Ann,201,true\n"
            "Bob,,false\n")


def test_read_csv_text_infers_types():
    table = read_csv_text(CSV_TEXT)
    assert table.column_names == ["name", "height", "active"]
    assert table.column("height") == [201, None]
    assert table.column("active") == [True, False]
    assert table.dtype("height") is DataType.INTEGER
    assert table.dtype("active") is DataType.BOOLEAN


def test_read_csv_text_with_explicit_dtypes():
    table = read_csv_text(CSV_TEXT, dtypes={"height": DataType.FLOAT})
    assert table.dtype("height") is DataType.FLOAT
    assert table.column("height") == [201.0, None]


def test_read_csv_text_empty_input():
    table = read_csv_text("")
    assert table.num_rows == 0 and table.num_columns == 0


def test_round_trip_through_files(tmp_path):
    original = read_csv_text(CSV_TEXT)
    path = tmp_path / "players.csv"
    write_csv(original, path)
    again = read_csv(path)
    assert again.equals(original)


def test_write_csv_text_serializes_none_as_empty():
    text = write_csv_text(read_csv_text(CSV_TEXT))
    assert "Bob,,False" in text or "Bob,," in text
    assert text.splitlines()[0] == "name,height,active"

"""Atomic cache persistence: concurrent saves never corrupt the file.

``PlanCache.save`` and ``AnswerCache.save`` write through
:func:`repro.core.persist.atomic_write_text` — a temp file in the target
directory renamed into place with ``os.replace`` — so a reader (or the
cache-tier server flushing on a signal racing a drain) always sees a
complete, loadable file, never a half-written one.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.core.answer_cache import AnswerCache
from repro.core.batch import PlanCache
from repro.core.persist import atomic_write_text


def test_atomic_write_replaces_not_truncates(tmp_path):
    path = tmp_path / "out.json"
    path.write_text("old")
    atomic_write_text(path, "new")
    assert path.read_text() == "new"
    # No temp droppings left behind.
    assert [p.name for p in tmp_path.iterdir()] == ["out.json"]


def test_atomic_write_failure_leaves_target_and_no_droppings(tmp_path,
                                                             monkeypatch):
    path = tmp_path / "out.json"
    path.write_text("old")

    import repro.core.persist as persist

    def exploding_replace(src, dst):
        raise OSError("disk went away")

    monkeypatch.setattr(persist.os, "replace", exploding_replace)
    with pytest.raises(OSError, match="disk went away"):
        atomic_write_text(path, "new")
    assert path.read_text() == "old"
    assert [p.name for p in tmp_path.iterdir()] == ["out.json"]


def test_atomic_write_creates_parentless_relative_file(tmp_path,
                                                       monkeypatch):
    monkeypatch.chdir(tmp_path)
    atomic_write_text("bare.json", "content")
    assert (tmp_path / "bare.json").read_text() == "content"


@pytest.mark.parametrize("make_cache,loader", [
    (lambda i: _plan_cache(i), PlanCache.load),
    (lambda i: _answer_cache(i), AnswerCache.load),
])
def test_concurrent_saves_to_one_path_always_loadable(tmp_path, make_cache,
                                                      loader):
    """Eight threads hammer save() on one path; every snapshot a reader
    could observe is a complete file in the v1 format."""
    path = tmp_path / "cache.json"
    errors: list[Exception] = []
    start = threading.Barrier(8)

    def writer(worker_id: int) -> None:
        try:
            cache = make_cache(worker_id)
            start.wait()
            for _ in range(10):
                cache.save(path)
                # Read-your-races: whatever is on disk right now must
                # parse and load, whole, from some writer's snapshot.
                payload = json.loads(path.read_text(encoding="utf-8"))
                assert payload["entries"]
                assert len(loader(path)) >= 1
        except Exception as exc:  # noqa: BLE001 - surfaced in the assert
            errors.append(exc)

    threads = [threading.Thread(target=writer, args=(n,))
               for n in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    # The winning writer's file is complete; no temp files remain.
    assert len(loader(path)) >= 1
    assert [p.name for p in tmp_path.iterdir()] == ["cache.json"]


def _plan_cache(worker_id: int) -> PlanCache:
    from repro.core.plan import LogicalPlan
    cache = PlanCache(8)
    plan = LogicalPlan.from_dict({
        "thought": f"writer {worker_id}",
        "steps": [{"index": 0, "description": f"step {worker_id}",
                   "inputs": [], "output": "t", "new_columns": [],
                   "params": {}}],
    })
    cache.put((f"query {worker_id}", "fp"), plan)
    return cache


def _answer_cache(worker_id: int) -> AnswerCache:
    cache = AnswerCache(8)
    cache.put(("fp", f"question {worker_id}", "int"), worker_id)
    return cache

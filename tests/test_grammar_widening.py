"""The widened NL grammar: cross-table joins, multi-measure aggregates,
and typed date-range filters — answers checked against dataset ground
truth, plus the corner cases (missing join key with bounded-replanning
recovery, single-measure degeneracy, open-ended date ranges).
"""

from datetime import date

import pytest

from repro import Session
from repro.core.batch import PlanCache
from repro.core.parsing import PromptTable, parse_prompt_tables
from repro.core.plan import LogicalPlan, LogicalStep
from repro.datasets.rotowire import TEAMS, game_date
from repro.llm.brain import map_step, synthesize_plan
from repro.llm.nl import parse_query
from repro.operators import ExecutionContext, JoinOperator
from repro.errors import OperatorError


def _founded():
    return {row[0]: row[4] for row in TEAMS}


def _team_of(dataset):
    return dict(zip(dataset.players.column("name"),
                    dataset.players.column("team")))


# ----------------------------------------------------------------------
# Joins (players ⋈ teams on the cross-column key team = name)
# ----------------------------------------------------------------------


def test_join_average_height_by_conference(rotowire_dataset, rotowire_lake):
    result = Session(rotowire_lake).query(
        "What is the average height of players in the Eastern conference?")
    assert result.ok, result.error
    conference = {row[0]: row[2] for row in TEAMS}
    team_of = _team_of(rotowire_dataset)
    heights = [h for n, h in zip(rotowire_dataset.players.column("name"),
                                 rotowire_dataset.players.column("height_cm"))
               if conference[team_of[n]] == "Eastern"]
    assert result.value == pytest.approx(sum(heights) / len(heights))
    # The plan really joins on the cross-column key.
    joins = [s for s in result.trace.physical_steps
             if s.operator == "Join"]
    assert joins and joins[0].arguments[2:] == ["team", "name"]


def test_join_count_players_by_division(rotowire_dataset, rotowire_lake):
    result = Session(rotowire_lake).query(
        "How many players play for teams in the Atlantic division?")
    assert result.ok, result.error
    division = {row[0]: row[3] for row in TEAMS}
    team_of = _team_of(rotowire_dataset)
    expected = sum(1 for team in team_of.values()
                   if division[team] == "Atlantic")
    assert result.value == expected


def test_join_plot_players_per_division(rotowire_dataset, rotowire_lake):
    result = Session(rotowire_lake).query(
        "Plot the number of players for each division.")
    assert result.ok, result.error
    assert result.kind == "plot"
    assert sum(result.plot.y_values) == rotowire_dataset.players.num_rows


def test_join_reaches_text_through_subject_side(rotowire_dataset,
                                                rotowire_lake):
    """players ⋈ teams ⋈ players_to_games ⋈ game_reports + founded filter."""
    result = Session(rotowire_lake).query(
        "What is the average number of points scored by players on teams "
        "founded before 1970?")
    assert result.ok, result.error
    founded = _founded()
    team_of = _team_of(rotowire_dataset)
    points = [pts for (player, _gid), (pts, _reb, _ast)
              in rotowire_dataset.player_stats.items()
              if founded[team_of[player]] < 1970]
    assert result.value == pytest.approx(sum(points) / len(points))
    descriptions = [s.description
                    for s in result.trace.logical_plan.steps]
    # The join chain goes through the players side (player-level stats),
    # not the teams side (team-level stats).
    assert any("players_to_games" in d for d in descriptions)
    assert not any("teams_to_games" in d for d in descriptions)


def test_founded_until_filters_founding_year_not_game_dates(
        rotowire_dataset, rotowire_lake):
    """'founded until 1970' belongs to the founding-year grammar; it must
    never be read as a date-column filter (game dates are all 2018/19,
    which would silently yield 0)."""
    session = Session(rotowire_lake)
    until = session.query(
        "How many players play for teams founded until 1970?")
    assert until.ok, until.error
    founded = _founded()
    team_of = _team_of(rotowire_dataset)
    assert until.value == sum(1 for team in team_of.values()
                              if founded[team] <= 1970)
    assert until.value > 0


def test_interior_hop_joins_on_renamed_key():
    """A hop out of a cross-column-joined table must use the '_right'-
    renamed key, not the original column name (which now belongs to the
    other side)."""
    from repro.llm.brain import _Builder, _emit_joins

    tables = {
        "players": PromptTable(
            "players", 10, [("name", "str"), ("team", "str")],
            foreign_keys=[("team", "teams", "name")]),
        "teams": PromptTable(
            "teams", 5, [("name", "str"), ("division", "str")],
            foreign_keys=[("name", "standings", "team_name")]),
        "standings": PromptTable(
            "standings", 5, [("team_name", "str"), ("wins", "int")]),
    }
    builder = _Builder()
    _current, columns = _emit_joins(builder, ["players", "standings"],
                                    tables)
    second = builder.steps[1]
    # teams.name was renamed name_right by the first join; the second
    # hop must join standings on it, not on the players' 'name'.
    assert "'name_right' and 'team_name' columns" in second.description
    assert second.params["left_on"] == "name_right"
    assert "name_right" in columns


def test_cross_join_step_maps_to_join_operator():
    decision = map_step("Join the 'players' and 'teams' tables on the "
                        "'team' and 'name' columns.")
    assert decision.operator == "Join"
    assert decision.arguments == ["players", "teams", "team", "name"]


def test_join_operator_missing_key_names_available_columns(rotowire_lake):
    context = ExecutionContext(tables={
        name: rotowire_lake.table(name)
        for name in rotowire_lake.source_names})
    with pytest.raises(OperatorError) as excinfo:
        JoinOperator().run(context, ["players", "teams", "team", "nope"])
    message = str(excinfo.value)
    assert "nope" in message and "teams" in message
    assert "conference" in message  # the available columns are listed


def test_poisoned_join_plan_recovers_via_bounded_replanning(rotowire_lake):
    """A cached plan joining on a key missing on one side fails at
    execution; bounded replanning bypasses the cache and recovers."""
    query = ("What is the average height of players in the Eastern "
             "conference?")
    poisoned = LogicalPlan(steps=[
        LogicalStep(1, "Join the 'players' and 'teams' tables on the "
                       "'team' and 'founded_year' columns.",
                    inputs=["players", "teams"], output="joined_table"),
        LogicalStep(2, "Compute the avg of the 'height_cm' column of the "
                       "'joined_table' table into the 'avg_height_cm' "
                       "column.",
                    inputs=["joined_table"], output="result_table",
                    new_columns=["avg_height_cm"]),
    ], thought="poisoned")
    session = Session(rotowire_lake, plan_cache=PlanCache(8))
    fingerprint = rotowire_lake.fingerprint()
    session.plan_cache.put((query, fingerprint), poisoned)

    result = session.query(query)
    assert result.ok, result.error
    assert result.trace.replans == 1
    assert result.trace.errors and all(e.recovered
                                       for e in result.trace.errors)
    # The recovery synthesized the real cross-column join.
    assert any("'team' and 'name' columns" in s.description
               for s in result.trace.logical_plan.steps)


# ----------------------------------------------------------------------
# Multi-measure aggregates
# ----------------------------------------------------------------------


def test_multi_measure_scalar_year(artwork_dataset, artwork_lake):
    result = Session(artwork_lake).query(
        "What are the min, max and average year of impressionist "
        "paintings?")
    assert result.ok, result.error
    assert result.kind == "table"
    table = result.table
    assert table.num_rows == 1
    assert table.column_names == ["min_year", "max_year", "avg_year"]
    years = [int(i[:4]) for i, m
             in zip(artwork_dataset.metadata.column("inception"),
                    artwork_dataset.metadata.column("movement"))
             if m == "Impressionism"]
    assert table.column("min_year")[0] == min(years)
    assert table.column("max_year")[0] == max(years)
    assert table.column("avg_year")[0] == pytest.approx(
        sum(years) / len(years))


def test_multi_measure_grouped_inception(artwork_dataset, artwork_lake):
    result = Session(artwork_lake).query(
        "For each movement, what are the earliest and latest inception "
        "dates?")
    assert result.ok, result.error
    table = result.table
    assert table.column_names == ["movement", "min_inception",
                                  "max_inception"]
    by_movement: dict[str, list[str]] = {}
    for inception, movement in zip(
            artwork_dataset.metadata.column("inception"),
            artwork_dataset.metadata.column("movement")):
        by_movement.setdefault(movement, []).append(inception)
    for row in table.rows():
        inceptions = by_movement[row["movement"]]
        assert row["min_inception"] == min(inceptions)
        assert row["max_inception"] == max(inceptions)


def test_multi_measure_join_combo(rotowire_dataset, rotowire_lake):
    result = Session(rotowire_lake).query(
        "What are the minimum and maximum height of players in the "
        "Western conference?")
    assert result.ok, result.error
    conference = {row[0]: row[2] for row in TEAMS}
    team_of = _team_of(rotowire_dataset)
    heights = [h for n, h in zip(rotowire_dataset.players.column("name"),
                                 rotowire_dataset.players.column("height_cm"))
               if conference[team_of[n]] == "Western"]
    assert result.table.column("min_height_cm")[0] == min(heights)
    assert result.table.column("max_height_cm")[0] == max(heights)


def test_single_measure_degenerates_to_classic_plan(artwork_lake):
    """One aggregate keeps the exact single-measure step phrasing, so
    pre-existing plan caches and golden plans stay valid."""
    tables = parse_prompt_tables(artwork_lake.prompt_repr())
    multi = parse_query("What are the min and max year of all paintings?",
                        tables)
    single = parse_query("What is the max year of all paintings?", tables)
    assert len(multi.measures) == 2
    assert len(single.measures) == 1
    plan = synthesize_plan(single, tables)
    agg_steps = [s for s in plan.steps
                 if s.description.startswith("Compute the max")]
    assert agg_steps == [agg_steps[0]]
    assert (agg_steps[0].description
            == "Compute the max of the 'year' column of the "
               "'derived_table' table into the 'max_year' column.")


def test_multi_measure_steps_map_to_one_sql_statement():
    decision = map_step(
        "Compute the min of 'year', the max of 'year' and the avg of "
        "'year' of the 'derived_table' table into the 'min_year', "
        "'max_year' and 'avg_year' columns.")
    assert decision.operator == "SQL"
    sql = decision.arguments[0]
    assert 'MIN("year") AS "min_year"' in sql
    assert 'AVG("year") AS "avg_year"' in sql

    grouped = map_step(
        "Group the 't' table by 'movement' and compute the min of "
        "'inception' and the max of 'inception' into the 'min_inception' "
        "and 'max_inception' columns.")
    assert grouped.operator == "SQL"
    assert 'GROUP BY "movement"' in grouped.arguments[0]
    assert 'MAX("inception") AS "max_inception"' in grouped.arguments[0]


# ----------------------------------------------------------------------
# Date ranges
# ----------------------------------------------------------------------


def test_date_range_closed_artwork(artwork_dataset, artwork_lake):
    result = Session(artwork_lake).query(
        "How many paintings were created between 1880 and 1895?")
    assert result.ok, result.error
    inceptions = artwork_dataset.metadata.column("inception")
    expected = sum(1 for i in inceptions
                   if "1880-01-01" <= i <= "1895-12-31")
    assert result.value == expected


def test_date_range_month_rotowire(rotowire_dataset, rotowire_lake):
    result = Session(rotowire_lake).query(
        "How many games took place in November 2018?")
    assert result.ok, result.error
    expected = sum(
        1 for box in rotowire_dataset.box_scores
        if date(2018, 11, 1) <= game_date(box.game_id) <= date(2018, 11, 30))
    assert expected > 0  # the synthetic season covers November
    assert result.value == expected


@pytest.mark.parametrize("query,low,high", [
    ("How many paintings were created before March 1885?", None,
     "1885-02-28"),
    ("How many paintings were created since November 1885?", "1885-11-01",
     None),
    ("How many paintings were created until 1895?", None, "1895-12-31"),
    ("How many paintings were created after November 1885?", "1885-12-01",
     None),
])
def test_date_range_open_ends(artwork_dataset, artwork_lake, query, low,
                              high):
    result = Session(artwork_lake).query(query)
    assert result.ok, result.error
    inceptions = artwork_dataset.metadata.column("inception")
    expected = sum(1 for i in inceptions
                   if (low is None or i >= low)
                   and (high is None or i <= high))
    assert result.value == expected


def test_date_range_select_step_carries_typed_params(artwork_lake):
    tables = parse_prompt_tables(artwork_lake.prompt_repr())
    intent = parse_query(
        "How many paintings were created between 1880 and 1895?", tables)
    plan = synthesize_plan(intent, tables)
    select = next(s for s in plan.steps
                  if s.description.startswith("Select"))
    assert select.params["op"] == "between"
    assert select.params["low"] == date(1880, 1, 1)
    assert select.params["high"] == date(1895, 12, 31)
    assert "DATE '1880-01-01'" in select.description


def test_between_step_maps_to_sql_between():
    decision = map_step(
        "Select only the rows of the 't' table where the 'inception' "
        "column is between DATE '1880-01-01' and DATE '1895-12-31'.")
    assert decision.operator == "SQL"
    assert ("\"inception\" BETWEEN '1880-01-01' AND '1895-12-31'"
            in decision.arguments[0])

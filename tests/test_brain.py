"""Unit tests for the plan synthesizer and the simulated LLM."""

import pytest

from repro.core.parsing import (parse_logical_plan, parse_mapping_response,
                                parse_prompt_tables, parse_relevant_columns)
from repro.core.prompts import (build_discovery_prompt, build_mapping_prompt,
                                build_planning_prompt)
from repro.errors import LLMError
from repro.llm.brain import SimulatedBrain, map_step, synthesize_plan
from repro.llm.nl import parse_query
from repro.operators import all_cards


def _tables(lake):
    return parse_prompt_tables(lake.prompt_repr())


def test_synthesize_count_with_filter(rotowire_lake):
    tables = _tables(rotowire_lake)
    intent = parse_query("How many players are taller than 200?", tables)
    plan = synthesize_plan(intent, tables)
    descriptions = [step.description for step in plan]
    assert "height_cm" in descriptions[0]
    assert "Count the number of rows" in descriptions[1]


def test_synthesize_joins_to_reach_text(rotowire_lake):
    tables = _tables(rotowire_lake)
    intent = parse_query("How many games did the Heat win?", tables)
    plan = synthesize_plan(intent, tables)
    joined = [s for s in plan if s.description.startswith("Join")]
    # teams → teams_to_games → game_reports needs two joins.
    assert len(joined) == 2


def test_synthesize_unparseable_query_raises(rotowire_lake):
    tables = _tables(rotowire_lake)
    with pytest.raises(LLMError):
        parse_query("please levitate the stadium", tables)


def test_map_step_join_emits_sql_using():
    decision = map_step("Join the 'teams' and 'teams_to_games' tables on "
                        "the 'name' column.")
    assert decision.operator == "SQL"
    assert 'JOIN "teams_to_games" USING ("name")' in decision.arguments[0]


def test_map_step_select_quotes_string_values():
    decision = map_step("Select only the rows of the 't' table where the "
                        "'movement' column equals 'Art''s Best'.")
    assert decision.arguments == \
        ["SELECT * FROM \"t\" WHERE \"movement\" = 'Art''s Best'"]


def test_map_step_vqa_question():
    decision = map_step("Extract the number of swords depicted in the "
                        "'image' column of the 't' table into the "
                        "'num_sword' column.")
    assert decision.operator == "Visual Question Answering"
    assert decision.arguments[3] == "How many swords are depicted?"
    assert decision.arguments[4] == "int"


def test_map_step_unknown_description_raises():
    with pytest.raises(LLMError):
        map_step("Sing a song about the 'teams' table.")


def test_brain_planning_response_parses(artwork_lake):
    brain = SimulatedBrain()
    messages = build_planning_prompt(
        artwork_lake, "For each movement, how many paintings are there?", [])
    plan = parse_logical_plan(brain.complete(messages))
    assert len(plan) >= 1
    assert plan.thought


def test_brain_mapping_response_parses(rotowire_lake):
    brain = SimulatedBrain()
    step_text = ("Step 1: Count the number of rows of the 'teams' table "
                 "into the 'count' column.\n"
                 "Input: ['teams']\nOutput: result_table\n"
                 "New Columns: ['count']")
    messages = build_mapping_prompt(
        {"teams": rotowire_lake.table("teams")}, all_cards(), step_text,
        [], [])
    decision = parse_mapping_response(brain.complete(messages))
    assert decision.operator == "SQL"
    assert "COUNT(*)" in decision.arguments[0]


def test_brain_discovery_names_real_columns(rotowire_lake):
    brain = SimulatedBrain()
    messages = build_discovery_prompt(
        rotowire_lake, "How many players are taller than 200?")
    pairs = parse_relevant_columns(brain.complete(messages))
    assert ("players", "height_cm") in pairs

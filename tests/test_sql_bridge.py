"""Table fingerprints and the registration-memoizing sqlite bridge."""

import pytest

from repro.data.datatypes import DataType
from repro.errors import SQLExecutionError
from repro.data.schema import ColumnSpec, Schema
from repro.data.table import Table
from repro.relational.sqlexec import SQLBridge, run_sql
from repro.session import Session


def make_table(values):
    schema = Schema([ColumnSpec("n", DataType.INTEGER)])
    return Table(schema, {"n": values})


# ----------------------------------------------------------------------
# Table.fingerprint
# ----------------------------------------------------------------------


def test_fingerprint_is_content_based():
    assert make_table([1, 2, 3]).fingerprint() == \
        make_table([1, 2, 3]).fingerprint()
    assert make_table([1, 2, 3]).fingerprint() != \
        make_table([1, 2, 4]).fingerprint()


def test_fingerprint_distinguishes_dtype_and_name():
    ints = make_table([1, 2])
    floats = Table(Schema([ColumnSpec("n", DataType.FLOAT)]),
                   {"n": [1, 2]})
    renamed = ints.rename({"n": "m"})
    assert ints.fingerprint() != floats.fingerprint()
    assert ints.fingerprint() != renamed.fingerprint()


def test_fingerprint_covers_images(artwork_lake):
    images = artwork_lake.table("painting_images")
    assert images.fingerprint() == images.fingerprint()
    assert images.head(5).fingerprint() != images.head(6).fingerprint()


# ----------------------------------------------------------------------
# SQLBridge
# ----------------------------------------------------------------------


def test_bridge_registers_once_per_content():
    table = make_table([1, 2, 3])
    with SQLBridge() as bridge:
        first = bridge.execute("SELECT COUNT(*) AS c FROM t", {"t": table})
        second = bridge.execute("SELECT COUNT(*) AS c FROM t", {"t": table})
        assert bridge.registrations == 1
        assert bridge.reuses == 1
    assert first.column("c") == second.column("c") == [3]


def test_bridge_reregisters_on_content_change():
    with SQLBridge() as bridge:
        bridge.execute("SELECT COUNT(*) AS c FROM t",
                       {"t": make_table([1, 2])})
        changed = bridge.execute("SELECT COUNT(*) AS c FROM t",
                                 {"t": make_table([1, 2, 3])})
        assert bridge.registrations == 2
    assert changed.column("c") == [3]


def test_bridge_prunes_stale_names():
    with SQLBridge() as bridge:
        bridge.execute("SELECT * FROM t1", {"t1": make_table([1])})
        # A later query whose context no longer binds t1 must not be able
        # to read the stale registration.
        with pytest.raises(SQLExecutionError):
            bridge.execute("SELECT * FROM t1",
                           {"other": make_table([2])},
                           known={"other": make_table([2])})


def test_bridge_matches_one_shot_run_sql(rotowire_lake):
    sql = ("SELECT name, height_cm FROM players "
           "WHERE height_cm > 200 ORDER BY height_cm DESC")
    tables = {"players": rotowire_lake.table("players")}
    with SQLBridge() as bridge:
        bridged = bridge.execute(sql, tables)
    assert bridged == run_sql(sql, tables)


def test_engine_reuses_registrations_across_batch():
    # Pin the sqlite engine: under the default columnar engine supported
    # statements run in-process and never touch the bridge.
    from repro.core.engine import EngineConfig
    queries = ["How many players are taller than 200?"] * 3
    with Session("rotowire",
                 config=EngineConfig(relational_engine="sqlite")) as session:
        report = session.batch(queries)
        assert report.num_errors == 0
        bridge = session.engine_pool(1)[0].sql_bridge
        # Three identical queries -> the lake table is copied into sqlite
        # once; the other SQL steps reuse the registration.
        assert bridge.registrations >= 1
        assert bridge.reuses >= 2

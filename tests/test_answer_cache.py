"""Tests for the answer cache: unit behaviour, fingerprints, and the
VQA / TextQA / Image Select integration through the engine."""

import threading

import numpy as np
import pytest

from repro import Session
from repro.core.answer_cache import MISS, AnswerCache, text_fingerprint
from repro.core.engine import Engine
from repro.vision.image import Image


def test_get_returns_miss_sentinel_not_none():
    cache = AnswerCache(capacity=4)
    assert cache.get(("fp", "q", "int")) is MISS
    cache.put(("fp", "q", "int"), None)  # None is a legitimate answer
    assert cache.get(("fp", "q", "int")) is None
    assert cache.hits == 1 and cache.misses == 1


def test_hit_miss_eviction_accounting():
    cache = AnswerCache(capacity=2)
    cache.put(("a", "q", "int"), 1)
    cache.put(("b", "q", "int"), 2)
    assert cache.get(("a", "q", "int")) == 1     # refresh "a"
    cache.put(("c", "q", "int"), 3)              # evicts "b"
    assert cache.evictions == 1
    assert ("b", "q", "int") not in cache
    assert cache.get(("b", "q", "int")) is MISS
    assert cache.hit_rate == 0.5
    assert len(cache) == 2
    cache.clear()
    assert len(cache) == 0
    assert cache.snapshot() == (1, 1, 1)


def test_rejects_non_positive_capacity():
    with pytest.raises(ValueError):
        AnswerCache(capacity=0)


def test_keys_distinguish_question_and_answer_type():
    cache = AnswerCache()
    cache.put(("fp", "how many dogs?", "int"), 2)
    assert cache.get(("fp", "how many dogs?", "str")) is MISS
    assert cache.get(("fp", "how many cats?", "int")) is MISS
    assert cache.get(("fp", "how many dogs?", "int")) == 2


def test_image_fingerprint_is_content_addressed():
    pixels = np.zeros((4, 4, 3), dtype=np.uint8)
    a = Image(pixels, path="img/1.png")
    b = Image(pixels.copy(), path="img/1.png")
    assert a.fingerprint() == b.fingerprint()
    assert a.fingerprint() is a._fingerprint  # memoized
    different_pixels = pixels.copy()
    different_pixels[0, 0, 0] = 255
    assert Image(different_pixels, "img/1.png").fingerprint() \
        != a.fingerprint()
    assert Image(pixels, "img/2.png").fingerprint() != a.fingerprint()


def test_text_fingerprint_is_content_addressed():
    assert text_fingerprint("abc") == text_fingerprint("abc")
    assert text_fingerprint("abc") != text_fingerprint("abd")


def test_concurrent_hammering_keeps_counters_consistent():
    cache = AnswerCache(capacity=16)
    rounds = 200

    def hammer(worker: int) -> None:
        for i in range(rounds):
            key = (f"fp{i % 24}", "q", "int")
            if cache.get(key) is MISS:
                cache.put(key, i)

    threads = [threading.Thread(target=hammer, args=(w,)) for w in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert cache.hits + cache.misses == 8 * rounds
    assert len(cache) <= 16


def _run_twice(lake, query):
    """Run *query* twice through one session sharing one answer cache."""
    cache = AnswerCache()
    session = Session(lake, answer_cache=cache)
    first = session.query(query)
    assert first.ok, first.error
    hits_0, misses_0, _ = cache.snapshot()
    second = session.query(query)
    assert second.ok, second.error
    hits_1, misses_1, _ = cache.snapshot()
    return first, second, (hits_0, misses_0), (hits_1, misses_1)


def test_visual_qa_answers_are_memoized(artwork_lake):
    first, second, (hits_0, misses_0), (hits_1, misses_1) = _run_twice(
        artwork_lake, "How many paintings are depicting a sword?")
    assert hits_0 == 0 and misses_0 > 0   # cold: every image probed
    assert misses_1 == misses_0           # warm: no new inference
    assert hits_1 == misses_0             # ... every probe served cached
    assert first.value == second.value


def test_image_select_is_memoized(artwork_lake):
    first, second, (hits_0, misses_0), (hits_1, misses_1) = _run_twice(
        artwork_lake, "List the titles of paintings depicting a crown.")
    assert hits_0 == 0 and misses_0 > 0
    assert misses_1 == misses_0
    assert hits_1 == misses_0
    assert first.table.equals(second.table)


def test_text_qa_answers_are_memoized(rotowire_lake):
    first, second, (hits_0, misses_0), (hits_1, misses_1) = _run_twice(
        rotowire_lake, "Plot the total number of points scored by each team.")
    assert hits_0 == 0 and misses_0 > 0   # cold: every report probed
    assert misses_1 == misses_0
    assert hits_1 == misses_0
    assert first.plot.y_values == second.plot.y_values


def test_cached_answers_match_uncached_run(artwork_lake):
    query = "How many paintings are depicting a sword?"
    uncached = Engine(artwork_lake).query(query)
    cached = Session(artwork_lake,
                     answer_cache=AnswerCache()).query(query)
    assert uncached.ok and cached.ok
    assert uncached.value == cached.value


def test_engine_without_cache_has_no_cache_side_effects(rotowire_lake):
    engine = Engine(rotowire_lake)
    assert engine.answer_cache is None
    result = engine.query("How many games did the Heat win?")
    assert result.ok

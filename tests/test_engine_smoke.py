"""End-to-end smoke tests: the engine answers real queries on both lakes.

Each dataset is exercised with at least one value-, one table-, and one
plot-kind query; where ground truth is cheap to compute we also check the
answer, not just the shape.
"""

import pytest

from repro import EngineConfig, Session
from repro.core.prompts import PLANNING_MARKER
from repro.errors import LLMError
from repro.llm.brain import SimulatedBrain

ROTOWIRE_QUERIES = [
    ("How many players are taller than 200?", "value"),
    ("How many games did the Heat win?", "value"),
    ("List the names of players taller than 200.", "table"),
    ("Who is the tallest player?", "value"),
    ("Plot the average height of players per position.", "plot"),
    ("Plot the total number of points scored by each team.", "plot"),
]

ARTWORK_QUERIES = [
    ("How many paintings belong to the 'Impressionism' movement?", "value"),
    ("What is the earliest inception date of all paintings?", "value"),
    ("How many paintings are depicting a sword?", "value"),
    ("For each movement, how many paintings are there?", "table"),
    ("List the titles of paintings of the 'Baroque' movement.", "table"),
    ("Plot the number of paintings for each century.", "plot"),
]


def _assert_trace_shape(result):
    trace = result.trace
    assert trace is not None
    assert trace.logical_plan is not None and len(trace.logical_plan) >= 1
    assert len(trace.physical_steps) == len(trace.logical_plan)
    assert len(trace.observations) == len(trace.physical_steps)
    assert not trace.crashed
    assert trace.operators_used()
    for phase in ("discovery", "planning", "mapping", "execution", "total"):
        assert trace.timings.get(phase, 0.0) >= 0.0
    assert "total" in trace.timings


@pytest.mark.parametrize("query,kind", ROTOWIRE_QUERIES)
def test_rotowire_end_to_end(rotowire_lake, query, kind):
    result = Session(rotowire_lake).query(query)
    assert result.ok, result.error
    assert result.kind == kind
    _assert_trace_shape(result)


@pytest.mark.parametrize("query,kind", ARTWORK_QUERIES)
def test_artwork_end_to_end(artwork_lake, query, kind):
    result = Session(artwork_lake).query(query)
    assert result.ok, result.error
    assert result.kind == kind
    _assert_trace_shape(result)


def test_value_answer_matches_ground_truth(rotowire_dataset, rotowire_lake):
    result = Session(rotowire_lake).query(
        "How many players are taller than 200?")
    expected = sum(1 for height in
                   rotowire_dataset.players.column("height_cm")
                   if height > 200)
    assert result.value == expected


def test_text_answer_matches_ground_truth(rotowire_dataset, rotowire_lake):
    result = Session(rotowire_lake).query(
        "How many games did the Heat win?")
    expected = sum(1 for box in rotowire_dataset.box_scores
                   if box.winner == "Heat")
    assert result.value == expected


def test_plot_covers_all_paintings(artwork_lake):
    result = Session(artwork_lake).query(
        "Plot the number of paintings for each century.")
    assert result.plot is not None
    assert result.plot.kind == "bar"
    assert sum(result.plot.y_values) == 120  # every painting in one bucket


def test_table_answer_shape(artwork_lake):
    result = Session(artwork_lake).query(
        "For each movement, how many paintings are there?")
    assert result.table is not None
    assert result.table.num_rows == 5  # one row per movement
    assert sum(result.table.column("count")) == 120


def test_unparseable_query_returns_error_result(rotowire_lake):
    result = Session(rotowire_lake).query("please levitate the stadium")
    assert not result.ok
    assert result.kind == "error"
    assert result.trace is not None and result.trace.crashed


class _OneBadPlanModel:
    """Delegates to SimulatedBrain but botches the first planning call."""

    name = "one-bad-plan"

    def __init__(self):
        self._brain = SimulatedBrain()
        self._bad_plans_left = 1

    def complete(self, messages):
        text = "\n\n".join(message.content for message in messages)
        if PLANNING_MARKER in text and self._bad_plans_left:
            self._bad_plans_left -= 1
            return ("Step 1: Count the number of rows of the "
                    "'missing_table' table into the 'count' column.\n"
                    "Input: ['missing_table']\n"
                    "Output: result_table\n"
                    "New Columns: ['count']\n"
                    "Step 2: Plan completed.")
        return self._brain.complete(messages)


def test_engine_recovers_via_replanning(rotowire_lake):
    session = Session(rotowire_lake, brain=_OneBadPlanModel())
    result = session.query("How many players are taller than 200?")
    assert result.ok, result.error
    assert result.trace.replans == 1
    assert result.trace.errors  # the failed attempt is on record
    assert not result.trace.crashed  # ... and marked recovered


class _BrokenModel:
    name = "broken"

    def complete(self, messages):
        raise LLMError("no brain today")


def test_engine_surfaces_planning_failure(rotowire_lake):
    session = Session(rotowire_lake, brain=_BrokenModel(),
                      config=EngineConfig(use_discovery=False))
    result = session.query("How many players are taller than 200?")
    assert not result.ok
    assert "no brain today" in result.error

"""Tests for scaled lake generation: cardinality and determinism."""

import numpy as np
import pytest

from repro.datasets import (generate_artwork_dataset,
                            generate_rotowire_dataset, load_lake)


def test_artwork_scale_multiplies_paintings():
    dataset = generate_artwork_dataset(scale=2)
    assert dataset.metadata.num_rows == 240
    assert dataset.images.num_rows == 240
    assert len(dataset.scenes) == 240


def test_rotowire_scale_multiplies_games():
    dataset = generate_rotowire_dataset(scale=2)
    assert dataset.game_reports.num_rows == 60
    assert len(dataset.box_scores) == 60


def test_fractional_scale_rounds_and_clamps():
    assert generate_artwork_dataset(scale=0.5).metadata.num_rows == 60
    assert generate_artwork_dataset(scale=0.001).metadata.num_rows == 1
    assert generate_rotowire_dataset(scale=0.1).game_reports.num_rows == 3


@pytest.mark.parametrize("generate",
                         [generate_artwork_dataset,
                          generate_rotowire_dataset])
def test_scale_rejects_non_positive(generate):
    with pytest.raises(ValueError):
        generate(scale=0)


def test_scaled_artwork_generation_is_deterministic():
    first = generate_artwork_dataset(seed=3, scale=2)
    second = generate_artwork_dataset(seed=3, scale=2)
    assert first.metadata.equals(second.metadata)
    assert first.as_lake().fingerprint() == second.as_lake().fingerprint()
    for mine, theirs in zip(first.images.column("image")[:5],
                            second.images.column("image")[:5]):
        assert np.array_equal(mine.pixels, theirs.pixels)
        assert mine.fingerprint() == theirs.fingerprint()


def test_scaled_rotowire_generation_is_deterministic():
    first = generate_rotowire_dataset(seed=5, scale=3)
    second = generate_rotowire_dataset(seed=5, scale=3)
    assert first.players.equals(second.players)
    assert first.game_reports.equals(second.game_reports)
    assert first.as_lake().fingerprint() == second.as_lake().fingerprint()


def test_scale_changes_lake_fingerprint():
    base = load_lake("artwork")
    scaled = load_lake("artwork", scale=2)
    assert base.fingerprint() != scaled.fingerprint()


def test_load_lake_passes_scale_through():
    lake = load_lake("rotowire", scale=2)
    assert lake.table("game_reports").num_rows == 60
